//! Cross-process distributed training: the same R = 4 job launched three
//! ways — on the deterministic in-process serial backend (the reference),
//! as four **OS processes** over a Unix-socket mesh (`Backend::Proc`), and
//! as four processes over a localhost **TCP** mesh (`Backend::Socket`) —
//! asserting the loss trajectories are bit-identical transport for
//! transport.
//!
//! The cross-process launchers re-exec this binary for ranks 1..R: a child
//! re-runs `main`, replays any earlier launch deterministically
//! in-process, and joins its world at the matching launch (see
//! `docs/DISTRIBUTED.md`). Each rank process runs its kernels under the
//! per-rank thread budget `max(1, cores / world)`, so rank parallelism
//! and kernel parallelism compose instead of contending.
//!
//! ```sh
//! cargo run --release --example cross_process_training
//! ```
//!
//! Env: `CGNN_ITERS` (training steps, default 20), `CGNN_ELEMS` (mesh
//! elements per axis, default 4).

use cgnn::prelude::*;

const SEED: u64 = 29;
const LR: f64 = 1e-3;
const RANKS: usize = 4;

fn main() {
    let iters: usize = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let elems: usize = std::env::var("CGNN_ELEMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let field = TaylorGreen::new(0.01);
    let mesh = BoxMesh::new((elems, elems, elems), 1, (1.0, 1.0, 1.0), false);
    let session = |backend: Backend| {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .ranks(RANKS)
            .exchange(HaloExchangeMode::NeighborAllToAll)
            .backend(backend)
            .model(GnnConfig::small())
            .seed(SEED)
            .learning_rate(LR)
            .build()
            .unwrap_or_else(|e| panic!("{} session: {e:?}", backend.label()))
    };

    // Reference: the serial backend single-steps all four ranks in this
    // process. (Child rank processes re-run this too before joining their
    // world — it is part of the deterministic replay.)
    let reference = session(Backend::Serial).train_autoencode(&field, 0.0, iters);

    // Four OS processes over a Unix-socket mesh. Only rank 0 (this
    // process) returns; ranks 1..4 are re-exec'd children.
    let proc = session(Backend::Proc).train_autoencode(&field, 0.0, iters);
    assert_eq!(
        proc[0], reference[0],
        "cross-process trajectory must be bit-identical to the serial reference"
    );

    // Four processes over a localhost TCP mesh (rank-0 rendezvous).
    let socket = session(Backend::Socket).train_autoencode(&field, 0.0, iters);
    assert_eq!(
        socket[0], reference[0],
        "TCP-mesh trajectory must be bit-identical to the serial reference"
    );

    println!(
        "R={RANKS} x {iters} steps on {elems}^3 elements ({} nodes/rank avg)",
        mesh.num_global_nodes() / RANKS
    );
    for (label, hist) in [
        ("serial (reference)", &reference[0]),
        ("proc   (UDS mesh)", &proc[0]),
        ("socket (TCP mesh)", &socket[0]),
    ] {
        println!(
            "{label}: first {:.8e} -> final {:.8e}",
            hist[0],
            hist[iters - 1]
        );
    }
    println!(
        "\nall three transports produced bit-identical trajectories \
         ({iters} steps, {RANKS} ranks)"
    );
}
