//! Consistency demonstration (paper Fig. 6, left): evaluate a randomly
//! initialized GNN + consistent loss on the same mesh partitioned onto
//! R = 1..=32 thread-ranks, with and without halo exchanges. One `Session`
//! per configuration; the builder owns all wiring.
//!
//! The consistent formulation reproduces the R = 1 loss at every R; the
//! standard (no-exchange) formulation deviates, increasingly with R.
//!
//! ```sh
//! cargo run --release --example consistency_demo
//! ```

use cgnn::prelude::*;

const SEED: u64 = 123;

fn main() {
    // Paper: cubic domain of 32^3 elements at p = 1; we default to 12^3 to
    // stay fast on laptops (set CGNN_ELEMS=32 for the full-size run).
    let elems: usize = std::env::var("CGNN_ELEMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let mesh = BoxMesh::new((elems, elems, elems), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    println!(
        "mesh: {}^3 elements, {} unique nodes\n",
        elems,
        mesh.num_global_nodes()
    );
    let base = || {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .model(GnnConfig::small())
            .seed(SEED)
    };

    let reference = base()
        .build()
        .expect("R=1 session")
        .initial_loss(&field, 0.0);
    println!("R = 1 reference loss: {reference:.12e}\n");
    println!(
        "{:>5} {:>18} {:>18} {:>14} {:>14}",
        "R", "standard", "consistent", "std rel-err", "cons rel-err"
    );

    for r in [2usize, 4, 8, 16, 32] {
        if mesh.num_elements() < r {
            break;
        }
        // One wiring per R; swap only the exchange strategy between modes.
        let wired = base().ranks(r).build().expect("session");
        let mut losses = [0.0f64; 2];
        for (k, mode) in [HaloExchangeMode::None, HaloExchangeMode::NeighborAllToAll]
            .into_iter()
            .enumerate()
        {
            losses[k] = wired.with_exchange(mode).initial_loss(&field, 0.0);
        }
        println!(
            "{:>5} {:>18.10e} {:>18.10e} {:>14.3e} {:>14.3e}",
            r,
            losses[0],
            losses[1],
            (losses[0] - reference).abs() / reference,
            (losses[1] - reference).abs() / reference,
        );
    }
    println!("\nconsistent NMP reproduces the R = 1 loss at every R;");
    println!("standard NMP deviates, increasingly with the number of partitions.");
}
