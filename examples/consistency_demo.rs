//! Consistency demonstration (paper Fig. 6, left): evaluate a randomly
//! initialized GNN + consistent loss on the same mesh partitioned onto
//! R = 1..=32 thread-ranks, with and without halo exchanges.
//!
//! The consistent formulation reproduces the R = 1 loss at every R; the
//! standard (no-exchange) formulation deviates, increasingly with R.
//!
//! ```sh
//! cargo run --release --example consistency_demo
//! ```

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{
    consistent_mse, ConsistentGnn, GnnConfig, GraphIndices, HaloContext, HaloExchangeMode,
};
use cgnn::graph::{
    build_distributed_graph, build_global_graph, edge_features, node_velocity_features, LocalGraph,
};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::partition::{Partition, Strategy};
use cgnn::tensor::{Tape, Tensor};

fn eval_loss(g: &Arc<LocalGraph>, ctx: &HaloContext, field: &TaylorGreen) -> f64 {
    let (params, model) = ConsistentGnn::seeded(GnnConfig::small(), 123);
    let x_buf = node_velocity_features(g, field, 0.0);
    let e_buf = edge_features(g, &x_buf, 3);
    let idx = GraphIndices::from_graph(g);
    let mut tape = Tape::new();
    let bound = params.bind(&mut tape);
    let x = tape.leaf(Tensor::from_vec(g.n_local(), 3, x_buf.clone()));
    let e = tape.leaf(Tensor::from_vec(g.n_edges(), 7, e_buf));
    let y = model.forward(&mut tape, &bound, x, e, g, &idx, ctx);
    // Target = input, as in the paper's demonstration.
    let target = Tensor::from_vec(g.n_local(), 3, x_buf);
    let l = consistent_mse(&mut tape, y, &target, g, &idx.node_inv_degree, &ctx.comm);
    tape.value(l).item()
}

fn main() {
    // Paper: cubic domain of 32^3 elements at p = 1; we default to 12^3 to
    // stay fast on laptops (set CGNN_ELEMS=32 for the full-size run).
    let elems: usize = std::env::var("CGNN_ELEMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let mesh = BoxMesh::new((elems, elems, elems), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    println!(
        "mesh: {}^3 elements, {} unique nodes\n",
        elems,
        mesh.num_global_nodes()
    );

    let global = Arc::new(build_global_graph(&mesh));
    let g1 = Arc::clone(&global);
    let reference = World::run(1, move |comm| {
        let ctx = HaloContext::single(comm.clone());
        eval_loss(&g1, &ctx, &field)
    })[0];
    println!("R = 1 reference loss: {reference:.12e}\n");
    println!(
        "{:>5} {:>18} {:>18} {:>14} {:>14}",
        "R", "standard", "consistent", "std rel-err", "cons rel-err"
    );

    for r in [2usize, 4, 8, 16, 32] {
        if mesh.num_elements() < r {
            break;
        }
        let part = Partition::new(&mesh, r, Strategy::Block);
        let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
            build_distributed_graph(&mesh, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        let mut losses = [0.0f64; 2];
        for (k, mode) in [HaloExchangeMode::None, HaloExchangeMode::NeighborAllToAll]
            .into_iter()
            .enumerate()
        {
            let graphs = Arc::clone(&graphs);
            losses[k] = World::run(r, move |comm| {
                let g = Arc::clone(&graphs[comm.rank()]);
                let ctx = HaloContext::new(comm.clone(), &g, mode);
                eval_loss(&g, &ctx, &field)
            })[0];
        }
        println!(
            "{:>5} {:>18.10e} {:>18.10e} {:>14.3e} {:>14.3e}",
            r,
            losses[0],
            losses[1],
            (losses[0] - reference).abs() / reference,
            (losses[1] - reference).abs() / reference,
        );
    }
    println!("\nconsistent NMP reproduces the R = 1 loss at every R;");
    println!("standard NMP deviates, increasingly with the number of partitions.");
}
