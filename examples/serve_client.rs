//! Load-test client for the `cgnn-serve` inference plane.
//!
//! Two modes:
//!
//! * `CGNN_SERVE_ADDR` **set** — drive an already-running server (e.g. the
//!   `cgnn-serve` binary) at that address, retrying the first connection
//!   so it can be launched concurrently;
//! * unset — start an in-process server on an ephemeral port and drive
//!   that, so the example is self-contained.
//!
//! Either way: discover the frame size from `/info` response headers
//! (the vendored `serde_json` shim cannot parse bodies), fire
//! `CGNN_SERVE_BENCH_CLIENTS` concurrent keep-alive connections issuing
//! `CGNN_SERVE_BENCH_REQS` binary `/predict` requests each, then print
//! throughput, latency percentiles, and the server's own `/metrics`.
//!
//! ```sh
//! cargo run --release --example serve_client
//! # or, against a separately launched server:
//! CGNN_SERVE_ADDR=127.0.0.1:7878 cargo run --release -p cgnn-serve &
//! CGNN_SERVE_ADDR=127.0.0.1:7878 cargo run --release --example serve_client
//! ```

use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

use cgnn::core::config as knobs;
use cgnn::serve::http::encode_f64;
use cgnn::serve::{HttpClient, ServeConfig, Server};

fn main() {
    let clients = knobs::CGNN_SERVE_BENCH_CLIENTS.usize_or(4);
    let reqs = knobs::CGNN_SERVE_BENCH_REQS.usize_or(20);

    // External server when CGNN_SERVE_ADDR is set, self-contained
    // otherwise.
    let (addr, local_server) = match knobs::CGNN_SERVE_ADDR.lookup() {
        Some(spec) => {
            let addr = spec
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .unwrap_or_else(|| panic!("unresolvable CGNN_SERVE_ADDR: {spec}"));
            println!("driving external server at {addr}");
            (addr, None)
        }
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                elems: knobs::CGNN_SERVE_ELEMS.usize_or(2),
                ..ServeConfig::default()
            };
            let server = Server::start(config).expect("start in-process server");
            let addr = server.addr();
            println!("started in-process server at {addr}");
            (addr, Some(server))
        }
    };

    // Frame size from /info headers.
    let mut probe = HttpClient::connect_retry(addr, Duration::from_secs(15))
        .expect("server never became reachable");
    let info = probe.request("GET", "/info", &[]).expect("GET /info");
    assert_eq!(info.status, 200, "/info failed");
    let n_nodes: usize = info
        .header("x-n-nodes")
        .and_then(|v| v.parse().ok())
        .expect("/info carries X-N-Nodes");
    let node_feats: usize = info
        .header("x-node-feats")
        .and_then(|v| v.parse().ok())
        .expect("/info carries X-Node-Feats");
    println!(
        "serving {} nodes x {} features per frame ({} bytes), model step {}",
        n_nodes,
        node_feats,
        n_nodes * node_feats * 8,
        info.header("x-model-step").unwrap_or("?"),
    );

    // Closed-loop load: every client its own connection and frame.
    let t0 = Instant::now();
    let mut lats: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let x: Vec<f64> = (0..n_nodes * node_feats)
                        .map(|i| ((i + 13 * c) as f64 * 0.01).sin())
                        .collect();
                    let body = encode_f64(&x);
                    let mut client =
                        HttpClient::connect_retry(addr, Duration::from_secs(15)).expect("connect");
                    let mut lats = Vec::with_capacity(reqs);
                    for _ in 0..reqs {
                        let s = Instant::now();
                        let resp = client
                            .request("POST", "/predict", &body)
                            .expect("POST /predict");
                        assert_eq!(resp.status, 200, "predict rejected under load test");
                        assert_eq!(resp.body.len(), x.len() * 8, "short prediction frame");
                        lats.push(s.elapsed().as_micros() as u64);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    lats.sort_unstable();
    let pct = |q: f64| lats[((q * (lats.len() - 1) as f64).round() as usize).min(lats.len() - 1)];
    println!(
        "{} requests over {} connections in {:.2}s -> {:.1} req/s (p50 {}us, p99 {}us)",
        clients * reqs,
        clients,
        wall,
        (clients * reqs) as f64 / wall,
        pct(0.50),
        pct(0.99),
    );

    // Exercise the admin plane and show the server's own telemetry.
    let reload = probe
        .request("POST", "/admin/reload", &[])
        .expect("POST /admin/reload");
    println!(
        "reload: {}",
        String::from_utf8_lossy(&reload.body).trim_end()
    );
    let metrics = probe.request("GET", "/metrics", &[]).expect("GET /metrics");
    println!("metrics:\n{}", String::from_utf8_lossy(&metrics.body));

    if let Some(server) = local_server {
        server.shutdown();
    }
}
