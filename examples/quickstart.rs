//! Quickstart: build a spectral-element mesh, attach a multi-snapshot
//! Taylor-Green dataset, and train a consistent GNN for a few epochs on
//! one rank — all wiring done by the `Session` builder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cgnn::prelude::*;

fn main() {
    // A 4^3-element periodic box at polynomial order p = 3 (the mesh the
    // CFD solver would hand us), plus a snapshot stream: the Taylor-Green
    // velocity field autoencoded at four decay times, shuffled each epoch
    // and fed two snapshots per optimizer step.
    let mesh = BoxMesh::tgv_cube(4, 3);
    let field = TaylorGreen::new(0.01);
    let dataset = Dataset::tgv_autoencode(&mesh, &field, &[0.0, 0.1, 0.2, 0.3]).batch_size(2);
    let session = Session::builder()
        .mesh(mesh)
        .dataset(dataset)
        .model(GnnConfig::small())
        .seed(42)
        .learning_rate(1e-3)
        .build()
        .expect("valid session");

    let mesh = session.mesh();
    println!(
        "mesh: {} elements at p = {}, {} unique nodes ({} comm backend)",
        mesh.num_elements(),
        mesh.order(),
        mesh.num_global_nodes(),
        session.backend()
    );
    println!(
        "graph: {} nodes, {} directed edges",
        session.graph(0).n_local(),
        session.graph(0).n_edges()
    );
    let ds = session.dataset().expect("dataset configured");
    println!(
        "dataset: {} snapshot pairs, {} optimizer steps per epoch",
        ds.len(),
        ds.steps_per_epoch()
    );

    // Train the paper's "small" GNN configuration over the stream: each
    // epoch revisits every snapshot once, in a seeded shuffled order that
    // is identical on every rank and across every comm backend.
    let epochs = 25;
    let reports = session
        .run(|h| {
            if h.rank() == 0 {
                println!(
                    "model: {} trainable parameters\n",
                    h.trainer().model.num_scalars()
                );
            }
            h.train_epochs(epochs)
        })
        .pop()
        .expect("one rank's reports");

    for r in reports.iter().step_by(4) {
        println!("epoch {:>3}   mean loss {:.6e}", r.epoch, r.mean_loss());
    }
    let (first, last) = (&reports[0], &reports[reports.len() - 1]);
    println!(
        "mean epoch loss reduced by {:.1}x over {} epochs",
        first.mean_loss() / last.mean_loss(),
        reports.len()
    );
}
