//! Quickstart: build a spectral-element mesh, derive its graph, and train a
//! consistent GNN on one rank to autoencode a Taylor-Green velocity field.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloContext, RankData, Trainer};
use cgnn::graph::build_global_graph;
use cgnn::mesh::{BoxMesh, TaylorGreen};

fn main() {
    // 1. A 4^3-element periodic box at polynomial order p = 3: the mesh the
    //    CFD solver would hand us.
    let mesh = BoxMesh::tgv_cube(4, 3);
    println!(
        "mesh: {} elements at p = {}, {} unique nodes",
        mesh.num_elements(),
        mesh.order(),
        mesh.num_global_nodes()
    );

    // 2. The mesh-based graph: GLL quadrature points become nodes, lattice
    //    links become edges, coincident nodes are collapsed.
    let graph = Arc::new(build_global_graph(&mesh));
    println!(
        "graph: {} nodes, {} directed edges",
        graph.n_local(),
        graph.n_edges()
    );

    // 3. Node features: the Taylor-Green vortex velocity at t = 0.
    let field = TaylorGreen::new(0.01);

    // 4. Train the paper's "small" GNN configuration to reproduce its input
    //    (the autoencoding demonstration task of the paper's Sec. III-A).
    let history = World::run(1, |comm| {
        let ctx = HaloContext::single(comm.clone());
        let mut trainer = Trainer::new(GnnConfig::small(), 42, 1e-3, ctx);
        println!(
            "model: {} trainable parameters",
            trainer.model.num_scalars()
        );
        let data = RankData::tgv_autoencode(Arc::clone(&graph), &field, 0.0);
        trainer.train(&data, 100)
    })
    .pop()
    .expect("one history");

    for (i, l) in history.iter().enumerate() {
        if i % 10 == 0 || i == history.len() - 1 {
            println!("iteration {i:>4}   loss {l:.6e}");
        }
    }
    println!(
        "loss reduced by {:.1}x over {} iterations",
        history[0] / history[history.len() - 1],
        history.len()
    );
}
