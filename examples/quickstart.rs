//! Quickstart: build a spectral-element mesh and train a consistent GNN on
//! one rank to autoencode a Taylor-Green velocity field — all wiring done
//! by the `Session` builder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cgnn::prelude::*;

fn main() {
    // A 4^3-element periodic box at polynomial order p = 3 (the mesh the
    // CFD solver would hand us), wired through the builder: mesh -> graph
    // -> seeded model, un-partitioned (R = 1).
    let session = Session::builder()
        .mesh(BoxMesh::tgv_cube(4, 3))
        .model(GnnConfig::small())
        .seed(42)
        .learning_rate(1e-3)
        .build()
        .expect("valid session");

    let mesh = session.mesh();
    println!(
        "mesh: {} elements at p = {}, {} unique nodes ({} comm backend)",
        mesh.num_elements(),
        mesh.order(),
        mesh.num_global_nodes(),
        session.backend()
    );
    println!(
        "graph: {} nodes, {} directed edges",
        session.graph(0).n_local(),
        session.graph(0).n_edges()
    );

    // Node features: the Taylor-Green vortex velocity at t = 0. Train the
    // paper's "small" GNN configuration to reproduce its input (the
    // autoencoding demonstration task of the paper's Sec. III-A).
    let field = TaylorGreen::new(0.01);
    let history = session
        .run(|h| {
            if h.rank() == 0 {
                println!(
                    "model: {} trainable parameters",
                    h.trainer().model.num_scalars()
                );
            }
            let data = h.autoencode_data(&field, 0.0);
            h.train(&data, 100)
        })
        .pop()
        .expect("one history");

    for (i, l) in history.iter().enumerate() {
        if i % 10 == 0 || i == history.len() - 1 {
            println!("iteration {i:>4}   loss {l:.6e}");
        }
    }
    println!(
        "loss reduced by {:.1}x over {} iterations",
        history[0] / history[history.len() - 1],
        history.len()
    );
}
