//! Surrogate-modeling workflow (paper Fig. 1, end to end): the mini
//! spectral-element solver plays NekRS and generates a pair of velocity
//! snapshots; a distributed consistent GNN then learns the coarse
//! time-advancement map `u(t0) -> u(t1)` and is evaluated on held-out
//! prediction error at the nodes.
//!
//! ```sh
//! cargo run --release --example tgv_surrogate
//! ```

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloContext, HaloExchangeMode, RankData, Trainer};
use cgnn::graph::{build_distributed_graph, LocalGraph};
use cgnn::mesh::BoxMesh;
use cgnn::partition::{Partition, Strategy};
use cgnn::sem::SnapshotPair;

fn main() {
    // 1. "NekRS": diffuse the TGV velocity field on a 3^3-element p=4 box.
    let mesh = BoxMesh::tgv_cube(3, 4);
    println!(
        "generating data: diffusing TGV on {} nodes...",
        mesh.num_global_nodes()
    );
    let pair = Arc::new(SnapshotPair::tgv_diffusion(&mesh, 0.5, 5e-4, 100));

    // 2. Partition the mesh the same way the solver would.
    let ranks = 4;
    let part = Partition::new(&mesh, ranks, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );

    // 3. Train the forecasting GNN on R = 4 thread-ranks.
    let iters: usize = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let results = World::run(ranks, {
        let graphs = Arc::clone(&graphs);
        let pair = Arc::clone(&pair);
        move |comm| {
            let g = Arc::clone(&graphs[comm.rank()]);
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
            let mut trainer = Trainer::new(GnnConfig::small(), 11, 2e-3, ctx);
            let data = RankData::new(Arc::clone(&g), pair.rank_input(&g), pair.rank_target(&g));
            let history = trainer.train(&data, iters);
            // 4. Evaluate: per-node RMS prediction error vs the solver truth.
            let pred = trainer.predict(&data);
            let mut se = 0.0;
            for i in 0..g.n_local() {
                for c in 0..3 {
                    let d = pred.get(i, c) - data.target.get(i, c);
                    se += g.node_inv_degree[i] * d * d;
                }
            }
            (history, se, comm.all_reduce_scalar(se))
        }
    });

    let (history, _, global_se) = &results[0];
    println!("trained {} iterations on {} ranks", iters, ranks);
    for (i, l) in history.iter().enumerate() {
        if i % (iters / 10).max(1) == 0 {
            println!("  iteration {i:>4}  consistent loss {l:.6e}");
        }
    }
    let n = mesh.num_global_nodes() as f64;
    let rms = (global_se / (3.0 * n)).sqrt();
    // Scale of the target field for context.
    let target_rms = {
        let mut s = 0.0;
        let g = &graphs[0];
        for i in 0..g.n_local() {
            for c in 0..3 {
                let v = pair.rank_target(g)[i * 3 + c];
                s += v * v;
            }
        }
        (s / (3.0 * g.n_local() as f64)).sqrt()
    };
    println!("\nsurrogate RMS error: {rms:.4e}  (target field RMS {target_rms:.4e})");
    println!("relative error: {:.2}%", 100.0 * rms / target_rms);
}
