//! Surrogate-modeling workflow (paper Fig. 1, end to end): the mini
//! spectral-element solver plays NekRS and dumps a **stream** of velocity
//! snapshots from one continuous diffusion trajectory; a distributed
//! consistent GNN then learns the coarse time-advancement map
//! `u(t_k) -> u(t_{k+1})` over the whole stream with shuffled mini-batch
//! epochs, and is evaluated on held-out per-node prediction error.
//!
//! ```sh
//! cargo run --release --example tgv_surrogate
//! ```

use cgnn::prelude::*;

fn main() {
    // 1. "NekRS": diffuse the TGV velocity field on a 3^3-element p=4 box,
    //    capturing six consecutive snapshot pairs of one trajectory.
    let mesh = BoxMesh::tgv_cube(3, 4);
    println!(
        "generating data: diffusing TGV on {} nodes, 6 snapshot pairs...",
        mesh.num_global_nodes()
    );
    let stream = SnapshotStream::tgv_diffusion(&mesh, 0.5, 5e-4, 40, 6);

    // 2.+3. Partition the mesh the way the solver would and train the
    //    forecasting GNN on R = 4 thread-ranks: two pairs per optimizer
    //    step, order reshuffled each epoch (identically on every rank).
    let ranks = 4;
    let session = Session::builder()
        .mesh(mesh.clone())
        .partition(Strategy::Block)
        .ranks(ranks)
        .exchange(HaloExchangeMode::NeighborAllToAll)
        .dataset(Dataset::from_stream(stream).batch_size(2))
        .model(GnnConfig::small())
        .seed(11)
        .learning_rate(2e-3)
        .build()
        .expect("session");

    let epochs: u64 = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let results = session.run(move |h| {
        let reports = h.train_epochs(epochs);
        // 4. Evaluate: per-node RMS prediction error vs the solver truth,
        //    on the *last* pair of the stream (the latest physics).
        let data = h.dataset_sample(h.dataset_len().expect("dataset") - 1);
        let pred = h.predict(data);
        let g = h.graph();
        let mut se = 0.0;
        let mut target_sq = 0.0;
        for i in 0..g.n_local() {
            for c in 0..3 {
                let d = pred.get(i, c) - data.target.get(i, c);
                se += g.node_inv_degree[i] * d * d;
                target_sq += g.node_inv_degree[i] * data.target.get(i, c).powi(2);
            }
        }
        (
            reports,
            h.all_reduce_scalar(se),
            h.all_reduce_scalar(target_sq),
        )
    });

    let (reports, global_se, global_target_sq) = &results[0];
    println!(
        "trained {} epochs x {} steps on {} ranks",
        reports.len(),
        session.dataset().expect("dataset").steps_per_epoch(),
        ranks
    );
    for r in reports.iter().step_by((epochs as usize / 10).max(1)) {
        println!(
            "  epoch {:>4}  mean consistent loss {:.6e}",
            r.epoch,
            r.mean_loss()
        );
    }
    let n = mesh.num_global_nodes() as f64;
    let rms = (global_se / (3.0 * n)).sqrt();
    let target_rms = (global_target_sq / (3.0 * n)).sqrt();
    println!("\nsurrogate RMS error: {rms:.4e}  (target field RMS {target_rms:.4e})");
    println!("relative error: {:.2}%", 100.0 * rms / target_rms);
}
