//! Surrogate-modeling workflow (paper Fig. 1, end to end): the mini
//! spectral-element solver plays NekRS and generates a pair of velocity
//! snapshots; a distributed consistent GNN then learns the coarse
//! time-advancement map `u(t0) -> u(t1)` and is evaluated on held-out
//! prediction error at the nodes. The GNN side is one `Session` with
//! custom per-rank data plugged in through the rank handles.
//!
//! ```sh
//! cargo run --release --example tgv_surrogate
//! ```

use std::sync::Arc;

use cgnn::prelude::*;
use cgnn::sem::SnapshotPair;

fn main() {
    // 1. "NekRS": diffuse the TGV velocity field on a 3^3-element p=4 box.
    let mesh = BoxMesh::tgv_cube(3, 4);
    println!(
        "generating data: diffusing TGV on {} nodes...",
        mesh.num_global_nodes()
    );
    let pair = Arc::new(SnapshotPair::tgv_diffusion(&mesh, 0.5, 5e-4, 100));

    // 2.+3. Partition the mesh the way the solver would and train the
    //    forecasting GNN on R = 4 thread-ranks.
    let ranks = 4;
    let session = Session::builder()
        .mesh(mesh.clone())
        .partition(Strategy::Block)
        .ranks(ranks)
        .exchange(HaloExchangeMode::NeighborAllToAll)
        .model(GnnConfig::small())
        .seed(11)
        .learning_rate(2e-3)
        .build()
        .expect("session");

    let iters: usize = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let results = session.run({
        let pair = Arc::clone(&pair);
        move |h| {
            let data = h.data(pair.rank_input(h.graph()), pair.rank_target(h.graph()));
            let history = h.train(&data, iters);
            // 4. Evaluate: per-node RMS prediction error vs the solver truth.
            let pred = h.predict(&data);
            let g = h.graph();
            let mut se = 0.0;
            for i in 0..g.n_local() {
                for c in 0..3 {
                    let d = pred.get(i, c) - data.target.get(i, c);
                    se += g.node_inv_degree[i] * d * d;
                }
            }
            (history, h.all_reduce_scalar(se))
        }
    });

    let (history, global_se) = &results[0];
    println!("trained {} iterations on {} ranks", iters, ranks);
    for (i, l) in history.iter().enumerate() {
        if i % (iters / 10).max(1) == 0 {
            println!("  iteration {i:>4}  consistent loss {l:.6e}");
        }
    }
    let n = mesh.num_global_nodes() as f64;
    let rms = (global_se / (3.0 * n)).sqrt();
    // Scale of the target field for context.
    let target_rms = {
        let mut s = 0.0;
        let g = session.graph(0);
        for i in 0..g.n_local() {
            for c in 0..3 {
                let v = pair.rank_target(g)[i * 3 + c];
                s += v * v;
            }
        }
        (s / (3.0 * g.n_local() as f64)).sqrt()
    };
    println!("\nsurrogate RMS error: {rms:.4e}  (target field RMS {target_rms:.4e})");
    println!("relative error: {:.2}%", 100.0 * rms / target_rms);
}
