//! Distributed training demonstration (paper Fig. 6, right, widened to a
//! snapshot stream): train the same GNN (same seed, same dataset, same
//! shuffled batch order) four ways —
//!
//! * R = 1, un-partitioned (the target trajectory),
//! * R = 8 with consistent NMP layers (halo exchanges on),
//! * R = 8 with the **overlapped** consistent exchange — the same halos
//!   shipped through the non-blocking `isend`/`irecv` API end to end,
//! * R = 8 with standard NMP layers (halo exchanges off),
//!
//! and print the per-epoch mean-loss curves side by side. Every
//! configuration walks the identical mini-batch order (the epoch schedule
//! is a pure function of the seed, not of the rank count or backend), so
//! both consistent curves overlap the target to rounding precision — and
//! each other **exactly** — while the standard curve drifts.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use cgnn::prelude::*;

const SEED: u64 = 17;
const LR: f64 = 1e-3;

fn main() {
    let epochs: u64 = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let field = TaylorGreen::new(0.01);
    let mesh = BoxMesh::new((6, 6, 6), 2, (1.0, 1.0, 1.0), false);
    // Snapshot stream: the Taylor-Green field autoencoded at four decay
    // times, two snapshots per optimizer step, reshuffled every epoch.
    let times = [0.0, 0.15, 0.3, 0.45];
    let dataset = || Dataset::tgv_autoencode(&mesh, &field, &times).batch_size(2);
    println!(
        "mesh: 6^3 elements p=2, {} unique nodes; {} snapshots, {epochs} epochs\n",
        mesh.num_global_nodes(),
        times.len()
    );
    let base = || {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .dataset(dataset())
            .model(GnnConfig::small())
            .seed(SEED)
            .learning_rate(LR)
    };
    let epoch_means =
        |reports: Vec<EpochReport>| -> Vec<f64> { reports.iter().map(|r| r.mean_loss()).collect() };

    // Target: R = 1.
    let target = epoch_means(
        base()
            .build()
            .expect("R=1 session")
            .train_epochs(epochs)
            .pop()
            .expect("reports"),
    );

    // R = 8 — one wiring, three exchange strategies against it.
    let r8 = base().ranks(8).build().expect("R=8 session");
    let mut curves = Vec::new();
    for mode in [
        HaloExchangeMode::NeighborAllToAll,
        HaloExchangeMode::Overlapped,
        HaloExchangeMode::None,
    ] {
        curves.push(epoch_means(
            r8.with_exchange(mode)
                .train_epochs(epochs)
                .pop()
                .expect("reports"),
        ));
    }
    assert_eq!(
        curves[0], curves[1],
        "the non-blocking overlapped exchange must be bit-identical to N-A2A"
    );

    println!(
        "{:>5} {:>16} {:>16} {:>16} {:>16} {:>12}",
        "epoch", "target (R=1)", "consistent R=8", "Ovl-SR R=8", "standard R=8", "cons rel-dev"
    );
    let e = epochs as usize;
    for i in (0..e).step_by((e / 12).max(1)) {
        println!(
            "{:>5} {:>16.8e} {:>16.8e} {:>16.8e} {:>16.8e} {:>12.2e}",
            i,
            target[i],
            curves[0][i],
            curves[1][i],
            curves[2][i],
            (curves[0][i] - target[i]).abs() / target[i],
        );
    }
    let last = e - 1;
    println!(
        "\nfinal: consistent deviates from target by {:.2e} (rounding),\n       \
         overlapped (isend/irecv) is bit-identical to consistent,\n       \
         standard deviates by {:.2e}",
        (curves[0][last] - target[last]).abs() / target[last],
        (curves[2][last] - target[last]).abs() / target[last],
    );
}
