//! Distributed training demonstration (paper Fig. 6, right): train the same
//! GNN (same seed, same data) three ways —
//!
//! * R = 1, un-partitioned (the target trajectory),
//! * R = 8 with consistent NMP layers (halo exchanges on),
//! * R = 8 with standard NMP layers (halo exchanges off),
//!
//! and print the three loss curves side by side. The consistent curve
//! overlaps the target to rounding precision; the standard curve drifts.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloContext, HaloExchangeMode, RankData, Trainer};
use cgnn::graph::{build_distributed_graph, build_global_graph, LocalGraph};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::partition::{Partition, Strategy};

const SEED: u64 = 17;
const LR: f64 = 1e-3;

fn main() {
    let iters: usize = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let mesh = BoxMesh::new((6, 6, 6), 2, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    println!(
        "mesh: 6^3 elements p=2, {} unique nodes; {iters} iterations\n",
        mesh.num_global_nodes()
    );

    // Target: R = 1.
    let global = Arc::new(build_global_graph(&mesh));
    let target = World::run(1, |comm| {
        let ctx = HaloContext::single(comm.clone());
        let mut t = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
        let data = RankData::tgv_autoencode(Arc::clone(&global), &field, 0.0);
        t.train(&data, iters)
    })
    .pop()
    .expect("history");

    // R = 8, consistent and standard.
    let part = Partition::new(&mesh, 8, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let mut curves = Vec::new();
    for mode in [HaloExchangeMode::NeighborAllToAll, HaloExchangeMode::None] {
        let graphs = Arc::clone(&graphs);
        let hist = World::run(8, move |comm| {
            let g = Arc::clone(&graphs[comm.rank()]);
            let ctx = HaloContext::new(comm.clone(), &g, mode);
            let mut t = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
            let data = RankData::tgv_autoencode(g, &field, 0.0);
            t.train(&data, iters)
        })
        .pop()
        .expect("history");
        curves.push(hist);
    }

    println!(
        "{:>5} {:>16} {:>16} {:>16} {:>12}",
        "iter", "target (R=1)", "consistent R=8", "standard R=8", "cons rel-dev"
    );
    for i in (0..iters).step_by((iters / 12).max(1)) {
        println!(
            "{:>5} {:>16.8e} {:>16.8e} {:>16.8e} {:>12.2e}",
            i,
            target[i],
            curves[0][i],
            curves[1][i],
            (curves[0][i] - target[i]).abs() / target[i],
        );
    }
    let last = iters - 1;
    println!(
        "\nfinal: consistent deviates from target by {:.2e} (rounding),\n       standard deviates by {:.2e}",
        (curves[0][last] - target[last]).abs() / target[last],
        (curves[1][last] - target[last]).abs() / target[last],
    );
}
