//! Distributed training demonstration (paper Fig. 6, right): train the same
//! GNN (same seed, same data) four ways —
//!
//! * R = 1, un-partitioned (the target trajectory),
//! * R = 8 with consistent NMP layers (halo exchanges on),
//! * R = 8 with the **overlapped** consistent exchange — the same halos
//!   shipped through the non-blocking `isend`/`irecv` API end to end,
//! * R = 8 with standard NMP layers (halo exchanges off),
//!
//! and print the loss curves side by side. Both consistent curves overlap
//! the target to rounding precision — and each other **exactly** (the
//! overlapped schedule changes when bytes move, not what they add up to);
//! the standard curve drifts. Each configuration is one `Session`
//! differing only in builder calls.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use cgnn::prelude::*;

const SEED: u64 = 17;
const LR: f64 = 1e-3;

fn main() {
    let iters: usize = std::env::var("CGNN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let field = TaylorGreen::new(0.01);
    let mesh = BoxMesh::new((6, 6, 6), 2, (1.0, 1.0, 1.0), false);
    println!(
        "mesh: 6^3 elements p=2, {} unique nodes; {iters} iterations\n",
        mesh.num_global_nodes()
    );
    let base = || {
        Session::builder()
            .mesh(mesh.clone())
            .partition(Strategy::Block)
            .model(GnnConfig::small())
            .seed(SEED)
            .learning_rate(LR)
    };

    // Target: R = 1.
    let target = base()
        .build()
        .expect("R=1 session")
        .train_autoencode(&field, 0.0, iters)
        .pop()
        .expect("history");

    // R = 8 — one wiring, three exchange strategies against it.
    let r8 = base().ranks(8).build().expect("R=8 session");
    let mut curves = Vec::new();
    for mode in [
        HaloExchangeMode::NeighborAllToAll,
        HaloExchangeMode::Overlapped,
        HaloExchangeMode::None,
    ] {
        let hist = r8
            .with_exchange(mode)
            .train_autoencode(&field, 0.0, iters)
            .pop()
            .expect("history");
        curves.push(hist);
    }
    assert_eq!(
        curves[0], curves[1],
        "the non-blocking overlapped exchange must be bit-identical to N-A2A"
    );

    println!(
        "{:>5} {:>16} {:>16} {:>16} {:>16} {:>12}",
        "iter", "target (R=1)", "consistent R=8", "Ovl-SR R=8", "standard R=8", "cons rel-dev"
    );
    for i in (0..iters).step_by((iters / 12).max(1)) {
        println!(
            "{:>5} {:>16.8e} {:>16.8e} {:>16.8e} {:>16.8e} {:>12.2e}",
            i,
            target[i],
            curves[0][i],
            curves[1][i],
            curves[2][i],
            (curves[0][i] - target[i]).abs() / target[i],
        );
    }
    let last = iters - 1;
    println!(
        "\nfinal: consistent deviates from target by {:.2e} (rounding),\n       \
         overlapped (isend/irecv) is bit-identical to consistent,\n       \
         standard deviates by {:.2e}",
        (curves[0][last] - target[last]).abs() / target[last],
        (curves[2][last] - target[last]).abs() / target[last],
    );
}
