//! Halo-exchange traffic accounting: run one forward+backward pass of the
//! consistent GNN at R = 8 under each halo exchange implementation and
//! print the per-rank message/byte counters the communicator records —
//! the ground-truth traffic behind the paper's A2A vs N-A2A comparison.
//!
//! ```sh
//! cargo run --release --example halo_traffic
//! ```

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloContext, HaloExchangeMode, RankData, Trainer};
use cgnn::graph::{build_distributed_graph, LocalGraph};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::partition::{Partition, Strategy};

fn main() {
    let mesh = BoxMesh::new((8, 8, 8), 2, (1.0, 1.0, 1.0), false);
    let part = Partition::new(&mesh, 8, Strategy::Slab);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let field = TaylorGreen::new(0.01);

    println!(
        "mesh: 8^3 elements p=2 on 8 ranks; per-rank halo nodes: {}\n",
        graphs[0].n_halo()
    );
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>14} {:>12}",
        "mode", "a2a ops", "a2a msgs", "sends", "a2a bytes", "allreduces"
    );

    for mode in [
        HaloExchangeMode::None,
        HaloExchangeMode::AllToAll,
        HaloExchangeMode::NeighborAllToAll,
        HaloExchangeMode::SendRecv,
    ] {
        let graphs = Arc::clone(&graphs);
        let stats = World::run(8, move |comm| {
            let g = Arc::clone(&graphs[comm.rank()]);
            let ctx = HaloContext::new(comm.clone(), &g, mode);
            let mut trainer = Trainer::new(GnnConfig::small(), 1, 1e-4, ctx);
            let data = RankData::tgv_autoencode(g, &field, 0.0);
            comm.stats_reset();
            trainer.step(&data); // one full forward + backward + update
            comm.stats_snapshot()
        });
        // Rank 0's counters (all interior-symmetric ranks look alike).
        let s = stats[0];
        println!(
            "{:<10} {:>8} {:>12} {:>10} {:>14} {:>12}",
            mode.label(),
            s.all_to_alls,
            s.a2a_messages,
            s.sends,
            s.a2a_bytes,
            s.all_reduces
        );
    }

    println!(
        "\nreading the table:\n\
         - every consistent mode issues 8 exchanges (4 NMP layers, forward+backward)\n\
         - A2A sends 7 buffers per exchange (everyone), N-A2A only to real neighbours\n\
         - Send-Recv shows up under `sends` instead of a2a messages\n\
         - the all-reduce count covers the consistent loss (2) + gradient bucket (1)"
    );
}
