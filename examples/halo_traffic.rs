//! Halo-exchange traffic accounting: run one forward+backward pass of the
//! consistent GNN at R = 8 under each halo exchange strategy — the paper's
//! four plus the coalesced all-gather and overlapped non-blocking
//! extensions — and print the per-rank message/byte counters the
//! communicator records, side by side with the traffic each strategy
//! *predicts* through the `HaloExchange` trait. Send and recv counters are
//! reported separately: accounting is symmetric, so everything injected is
//! also drained.
//!
//! ```sh
//! cargo run --release --example halo_traffic
//! CGNN_BACKEND=serial cargo run --release --example halo_traffic   # same numbers
//! ```

use cgnn::prelude::*;

fn main() {
    let field = TaylorGreen::new(0.01);
    // One wiring (partition + graphs), six exchange strategies against it.
    let base = Session::builder()
        .mesh(BoxMesh::new((8, 8, 8), 2, (1.0, 1.0, 1.0), false))
        .partition(Strategy::Slab)
        .ranks(8)
        .model(GnnConfig::small())
        .seed(1)
        .learning_rate(1e-4)
        .build()
        .expect("session");

    println!(
        "mesh: 8^3 elements p=2 on 8 ranks ({} backend); per-rank halo nodes: {}\n",
        base.backend(),
        base.graph(0).n_halo()
    );
    println!(
        "{:<10} {:>8} {:>12} {:>8} {:>8} {:>10} {:>14} {:>12} {:>14}",
        "mode",
        "a2a ops",
        "a2a msgs",
        "sends",
        "recvs",
        "gathers",
        "bytes",
        "allreduces",
        "predicted B"
    );

    for mode in HaloExchangeMode::all() {
        let session = base.with_exchange(mode);
        let out = session.run(|h| {
            let data = h.autoencode_data(&field, 0.0);
            h.traffic_reset();
            h.step(&data); // one full forward + backward + update
            let predicted = h.trainer().ctx.strategy().traffic_per_exchange(
                h.graph(),
                h.size(),
                h.trainer().model.config.hidden,
            );
            (h.traffic(), predicted)
        });
        // Rank 0's counters (all interior-symmetric ranks look alike). The
        // trainer issues 8 exchanges (4 NMP layers, forward + backward).
        let (s, predicted) = out[0];
        assert_eq!(s.sends, s.recvs, "p2p accounting must be symmetric");
        println!(
            "{:<10} {:>8} {:>12} {:>8} {:>8} {:>10} {:>14} {:>12} {:>14}",
            mode,
            s.all_to_alls,
            s.a2a_messages,
            s.sends,
            s.recvs,
            s.all_gathers,
            s.a2a_bytes + s.send_bytes + s.all_gather_bytes,
            s.all_reduces,
            8 * predicted.bytes,
        );
    }

    println!(
        "\nreading the table:\n\
         - every consistent mode issues 8 exchanges (4 NMP layers, forward+backward)\n\
         - A2A sends 7 buffers per exchange (everyone), N-A2A only to real neighbours\n\
         - Send-Recv shows up under `sends`; Coal-AG ships one fused all-gather\n\
           per exchange whose buffer is replicated to all ranks\n\
         - Ovl-SR ships the same bytes as Send-Recv but through the non-blocking\n\
           isend/irecv API (post all, wait later) — the schedule cgnn-perf prices\n\
           with a compute-overlap discount\n\
         - sends == recvs on every rank: traffic accounting is symmetric\n\
         - `predicted B` is 8x the per-exchange traffic the strategy itself\n\
           accounts via the HaloExchange trait — it matches the measured bytes\n\
         - the all-reduce count covers the consistent loss (2) + gradient bucket (1)"
    );
}
