//! Weak-scaling study (paper Figs. 7-8) driven by the Frontier machine
//! model: prints total throughput, weak-scaling efficiency, and throughput
//! relative to the inconsistent baseline for every configuration in the
//! paper's sweep — now including the coalesced all-gather (Coal-AG) and
//! overlapped non-blocking (Ovl-SR) strategies as fourth and fifth
//! exchange curves, plus a sweep of the overlap fraction that prices how
//! much halo latency compute can hide.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use cgnn::perf::{paper_sweep, relative_throughput, Loading, MachineModel};
use cgnn::prelude::*;

fn main() {
    let machine = MachineModel::frontier();
    println!(
        "machine model: {} ({} ranks/node)\n",
        machine.name, machine.ranks_per_node
    );
    let series = paper_sweep(&machine);

    for loading in ["512k", "256k"] {
        println!("=== {loading} nodes per sub-graph ===");
        println!(
            "{:<8} {:<7} {:>6} {:>14} {:>10} {:>10}",
            "model", "mode", "ranks", "nodes/s", "eff [%]", "rel-thru"
        );
        for s in series.iter().filter(|s| s.loading == loading) {
            let baseline = series
                .iter()
                .find(|b| b.loading == s.loading && b.model == s.model && b.mode == "none")
                .expect("baseline exists");
            let eff = s.efficiency();
            let rel = relative_throughput(s, baseline);
            for (i, p) in s.points.iter().enumerate() {
                if p.ranks == 8 || p.ranks == 64 || p.ranks == 512 || p.ranks == 2048 {
                    println!(
                        "{:<8} {:<7} {:>6} {:>14.3e} {:>10.1} {:>10.3}",
                        s.model, s.mode, p.ranks, p.throughput, eff[i], rel[i]
                    );
                }
            }
        }
        println!();
    }
    println!("shape checks (paper claims):");
    println!("  - no-exchange baseline stays >90% efficient at 512k loading");
    println!("  - dense A2A collapses with rank count");
    println!("  - N-A2A adds only marginal cost (>0.9 relative through 1024 ranks)");
    println!("  - Coal-AG wins on latency at small R, collapses like a ring at scale");
    println!("  - Ovl-SR dominates blocking N-A2A: overlapped transfer is hidden");
    println!("  - smaller loading and smaller model scale worse");

    // Overlap-fraction sweep: how much of the halo transfer must compute
    // hide before the consistent model matches the inconsistent baseline?
    // (Posting overheads are never hidden, so even f = 1 is not free.)
    println!("\n=== Ovl-SR overlap-fraction sweep: large model, 512k loading, 2048 ranks ===");
    println!(
        "{:>10} {:>12} {:>14}",
        "overlap f", "rel-thru", "halo ms/iter"
    );
    for f in [0.0, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let mut m = MachineModel::frontier();
        m.overlap_fraction = f;
        let series = |mode| {
            cgnn::perf::weak_scaling_series(
                &m,
                "large",
                &GnnConfig::large(),
                &Loading::nominal_512k(),
                mode,
                &[2048],
            )
        };
        let base = series(HaloExchangeMode::None);
        let ovl = series(HaloExchangeMode::Overlapped);
        let rel = relative_throughput(&ovl, &base);
        println!(
            "{:>10.1} {:>12.3} {:>14.2}",
            f,
            rel[0],
            ovl.points[0].t_halo * 1e3
        );
    }

    // Cross-machine comparison — the paper's conclusion proposes running
    // the same benchmark on different supercomputers, since the consistent
    // GNN's halo-buffer / arithmetic-intensity mix probes the fabric.
    println!("\n=== cross-machine: N-A2A large model, 512k loading, 2048 ranks ===");
    for machine in [MachineModel::frontier(), MachineModel::aurora()] {
        let series = cgnn::perf::weak_scaling_series(
            &machine,
            "large",
            &GnnConfig::large(),
            &Loading::nominal_512k(),
            HaloExchangeMode::NeighborAllToAll,
            &[8, 2048],
        );
        let eff = series.efficiency();
        println!(
            "{:<10} {:>12.3e} nodes/s at 2048 ranks, efficiency {:>5.1}%",
            machine.name, series.points[1].throughput, eff[1]
        );
    }
}
