//! End-to-end "NekRS-GNN workflow" integration test (paper Fig. 1): the
//! spectral-element solver generates snapshot data on a mesh, the mesh is
//! partitioned, graphs with halo plans are derived, and a consistent GNN
//! trains on the distributed snapshots — with the whole pipeline remaining
//! partition-invariant.

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloContext, HaloExchangeMode, RankData, Trainer};
use cgnn::graph::{build_distributed_graph, build_global_graph, LocalGraph};
use cgnn::mesh::BoxMesh;
use cgnn::partition::{Partition, Strategy};
use cgnn::sem::SnapshotPair;

#[test]
fn gnn_trains_on_sem_generated_forecasting_data() {
    // Generate data: diffuse the TGV field with the SEM stepper.
    let mesh = BoxMesh::tgv_cube(2, 3);
    let pair = SnapshotPair::tgv_diffusion(&mesh, 0.5, 5e-4, 40);

    // Distribute onto 4 ranks.
    let part = Partition::new(&mesh, 4, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let pair = Arc::new(pair);

    // R=1 reference trajectory on the same data.
    let global = Arc::new(build_global_graph(&mesh));
    let (g1, p1) = (Arc::clone(&global), Arc::clone(&pair));
    let reference = World::run(1, move |comm| {
        let ctx = HaloContext::single(comm.clone());
        let mut trainer = Trainer::new(GnnConfig::small(), 3, 1e-3, ctx);
        let data = RankData::new(Arc::clone(&g1), p1.rank_input(&g1), p1.rank_target(&g1));
        trainer.train(&data, 8)
    })
    .pop()
    .expect("one history");

    let histories = World::run(4, move |comm| {
        let g = Arc::clone(&graphs[comm.rank()]);
        let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
        let mut trainer = Trainer::new(GnnConfig::small(), 3, 1e-3, ctx);
        let data = RankData::new(Arc::clone(&g), pair.rank_input(&g), pair.rank_target(&g));
        trainer.train(&data, 8)
    });

    // Distributed training on solver data follows the R=1 curve and learns.
    for h in &histories {
        for (a, b) in h.iter().zip(&reference) {
            assert!(
                (a - b).abs() / b.abs().max(1e-300) < 1e-8,
                "distributed {a} vs reference {b}"
            );
        }
    }
    assert!(
        reference[7] < reference[0],
        "training on SEM data should reduce loss"
    );
}
