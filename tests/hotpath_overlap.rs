//! Hot-path invariants of the overhaul: true compute/communication overlap
//! stays bit-identical to the blocking schedule (values AND gradients,
//! under both comm backends), and the trainer's reused tape workspace
//! replays bit-identically to a fresh one across checkpoint boundaries.

use std::sync::Arc;

use cgnn::comm::{Backend, Comm};
use cgnn::core::mp_layer::overlap_stats;
use cgnn::core::{
    halo_sync, ConsistentMpLayer, GraphIndices, HaloContext, HaloExchangeMode, Trainer,
};
use cgnn::graph::{build_distributed_graph, LocalGraph};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::prelude::*;
use cgnn::tensor::{ParamSet, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One NMP layer forward + backward at R = 4, returning output values,
/// edge-feature gradients, and every parameter gradient.
#[allow(clippy::type_complexity)]
fn layer_pass(
    backend: Backend,
    mode: HaloExchangeMode,
    graphs: Arc<Vec<LocalGraph>>,
) -> Vec<(Vec<f64>, Vec<f64>, Vec<Vec<f64>>, u64)> {
    let hidden = 6;
    backend.launch(4, move |comm: &Comm| {
        let comm = comm.clone();
        let g = Arc::new(graphs[comm.rank()].clone());
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let layer = ConsistentMpLayer::new(&mut params, "mp", hidden, 1, &mut rng);
        let idx = GraphIndices::from_graph(&g);
        let ctx = HaloContext::new(comm.clone(), &g, mode);
        let mut tape = Tape::new();
        let bound = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(g.n_local(), hidden, |r, c| {
            ((g.gids[r] as f64 + 1.7 * c as f64) * 0.13).sin()
        }));
        let e = tape.leaf(Tensor::from_fn(g.n_edges(), hidden, |r, c| {
            ((r as f64 * 31.0 + c as f64) * 0.011).cos()
        }));
        overlap_stats::reset();
        let (xn, _en) = layer.forward(&mut tape, &bound, x, e, &g, &idx, &ctx);
        let windows = overlap_stats::snapshot().windows;
        let s = tape.weighted_sq_sum(xn, idx.node_inv_degree.clone());
        let total = cgnn::core::all_reduce_scalar(&mut tape, s, &comm);
        let grads = tape.backward(total);
        let param_grads = bound
            .vars()
            .iter()
            .map(|&v| grads.get(v).expect("param grad").data().to_vec())
            .collect();
        (
            tape.value(xn).data().to_vec(),
            grads.get(e).expect("edge grad").data().to_vec(),
            param_grads,
            windows,
        )
    })
}

/// Overlapped forward (+ backward) is bit-exact to Send-Recv under both
/// comm backends — and actually computes inside the exchange window.
#[test]
fn overlapped_layer_is_bit_exact_to_send_recv_on_both_backends() {
    let mesh = BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false);
    let part = Partition::new(&mesh, 4, Strategy::Pencil);
    let graphs = Arc::new(build_distributed_graph(&mesh, &part));
    for backend in Backend::all() {
        let sr = layer_pass(backend, HaloExchangeMode::SendRecv, Arc::clone(&graphs));
        let ovl = layer_pass(backend, HaloExchangeMode::Overlapped, Arc::clone(&graphs));
        for (rank, (s, o)) in sr.iter().zip(ovl.iter()).enumerate() {
            assert_eq!(s.0, o.0, "{backend:?} rank {rank}: outputs differ");
            assert_eq!(s.1, o.1, "{backend:?} rank {rank}: edge grads differ");
            assert_eq!(s.2, o.2, "{backend:?} rank {rank}: param grads differ");
            assert_eq!(s.3, 0, "Send-Recv must not open overlap windows");
            assert!(
                o.3 > 0,
                "{backend:?} rank {rank}: overlapped forward opened no compute window"
            );
        }
    }
}

/// The overlapped path splits work by the graph's interior/boundary rows;
/// those must partition the local rows and drive a non-identity halo sync.
#[test]
fn interior_boundary_rows_partition_local_rows() {
    let mesh = BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false);
    let part = Partition::new(&mesh, 4, Strategy::Pencil);
    for g in build_distributed_graph(&mesh, &part) {
        g.validate();
        assert!(
            !g.boundary_rows.is_empty(),
            "every rank of this partition shares nodes"
        );
        assert!(
            g.interior_rows.len() + g.boundary_rows.len() == g.n_local(),
            "interior + boundary must cover local rows"
        );
    }
}

/// A trainer's reused (reset) tape replays bit-identically to a fresh
/// tape: stepping a live trainer matches stepping a freshly restored
/// twin, parameter for parameter, bit for bit.
#[test]
fn reused_tape_steps_match_fresh_trainer_bit_for_bit() {
    let mesh = BoxMesh::tgv_cube(2, 2);
    let field = TaylorGreen::new(0.01);
    let graph = Arc::new(cgnn::graph::build_global_graph(&mesh));
    let out = cgnn::comm::World::run(1, move |comm| {
        let data_of =
            |g: &Arc<LocalGraph>| cgnn::core::RankData::tgv_autoencode(Arc::clone(g), &field, 0.0);
        let mut live = Trainer::new(
            GnnConfig::small(),
            11,
            1e-3,
            HaloContext::single(comm.clone()),
        );
        let data = data_of(&graph);
        live.step(&data); // first step: pool filled
                          // Twin trainer restored to the post-step-1 state, with a *fresh*
                          // (empty-pool) tape.
        let mut twin = Trainer::new(
            GnnConfig::small(),
            11,
            1e-3,
            HaloContext::single(comm.clone()),
        );
        twin.params.unflatten(&live.params.flatten());
        twin.opt.set_state(live.opt.state().clone());
        // Second step: live uses its recycled workspace, twin a fresh one.
        let l1 = live.step(&data);
        let l2 = twin.step(&data);
        assert_eq!(l1, l2, "losses must match bit for bit");
        assert_eq!(live.params.flatten(), twin.params.flatten());
        // And a third round for good measure (twin's pool now warm too).
        assert_eq!(live.step(&data), twin.step(&data));
        assert_eq!(live.params.flatten(), twin.params.flatten());
    });
    drop(out);
}

/// `halo_sync` is still an identity for single-rank worlds (the overlap
/// restructuring must not have disturbed the R = 1 fast path).
#[test]
fn halo_sync_identity_at_r1() {
    cgnn::comm::World::run(1, |comm| {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let g = Arc::new(cgnn::graph::build_global_graph(&mesh));
        let ctx = HaloContext::single(comm.clone());
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_fn(g.n_local(), 3, |r, c| (r + c) as f64));
        let out = halo_sync(&mut tape, a, &g, &ctx);
        assert_eq!(out, a, "R=1 sync must not even record a node");
    });
}
