//! Checkpoint corruption coverage at the integration level: checkpoints
//! written by a real training session, then damaged the way crashing
//! writers and failing disks damage them — truncation and bit flips.
//! `CheckpointPolicy::latest()`/`latest_report()` must *reject* the
//! damaged file with a typed [`CorruptCheckpoint`] and fall back to the
//! previous valid one; never panic, never return a corpse.

use std::path::PathBuf;

use cgnn::prelude::*;

fn mesh() -> BoxMesh {
    BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgnn_corrupt_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Train a short single-rank run that leaves a real checkpoint history
/// (steps 2, 4, 6, 8) in `dir`, and return the step-sorted file list.
fn seed_checkpoints(dir: &std::path::Path) -> Vec<PathBuf> {
    Session::builder()
        .mesh(mesh())
        .ranks(1)
        .dataset(Dataset::tgv_autoencode(
            &mesh(),
            &TaylorGreen::new(0.01),
            &[0.0, 0.1, 0.2, 0.3],
        ))
        .seed(3)
        .backend(Backend::Serial)
        .checkpoint(CheckpointPolicy::every(2, dir).retain(0))
        .build()
        .expect("session")
        .train_epochs(2);
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| {
            let path = e.ok()?.path();
            CheckpointPolicy::step_of(&path).map(|_| path)
        })
        .collect();
    files.sort();
    assert!(files.len() >= 3, "expected a checkpoint history in {dir:?}");
    files
}

/// Truncating the newest checkpoint anywhere — empty file, one byte,
/// half, or a single missing trailing byte — gets it rejected with a
/// typed error and `latest()` falls back to the previous valid file.
#[test]
fn truncated_newest_is_rejected_at_every_length() {
    let dir = tmp_dir("trunc");
    let files = seed_checkpoints(&dir);
    let newest = files.last().unwrap().clone();
    let second = files[files.len() - 2].clone();
    let intact = std::fs::read(&newest).expect("read newest");

    for keep in [0, 1, intact.len() / 2, intact.len() - 1] {
        std::fs::write(&newest, &intact[..keep]).expect("truncate");
        let report = CheckpointPolicy::latest_report(&dir).expect("scan must not fail");
        assert_eq!(
            report.valid.as_ref(),
            Some(&second),
            "truncation to {keep} bytes must fall back to the previous checkpoint"
        );
        let corpse = report
            .rejected
            .iter()
            .find(|c| c.path == newest)
            .unwrap_or_else(|| panic!("truncation to {keep} bytes not reported"));
        // The typed error formats into something an operator can act on.
        assert!(corpse.to_string().contains("corrupt checkpoint"));
        assert_eq!(
            CheckpointPolicy::latest(&dir).expect("latest must not fail"),
            Some(second.clone())
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A single flipped bit anywhere in the payload fails the trailing
/// checksum: the file is rejected, not restored.
#[test]
fn bit_flipped_newest_is_rejected() {
    let dir = tmp_dir("flip");
    let files = seed_checkpoints(&dir);
    let newest = files.last().unwrap().clone();
    let second = files[files.len() - 2].clone();
    let intact = std::fs::read(&newest).expect("read newest");

    for at in [16, intact.len() / 2, intact.len() - 4] {
        let mut bytes = intact.clone();
        bytes[at] ^= 0x40;
        std::fs::write(&newest, &bytes).expect("flip");
        let report = CheckpointPolicy::latest_report(&dir).expect("scan must not fail");
        assert_eq!(
            report.valid.as_ref(),
            Some(&second),
            "bit flip at byte {at} must fall back to the previous checkpoint"
        );
        assert!(report.rejected.iter().any(|c| c.path == newest));
    }

    // Restoring from the corpse directly is a typed I/O error, not a
    // panic — the same contract the recovery loop relies on.
    let restore = Session::builder()
        .mesh(mesh())
        .ranks(1)
        .seed(3)
        .backend(Backend::Serial)
        .build()
        .expect("session")
        .restore(&newest);
    assert!(
        restore.is_err(),
        "restore from a bit-flipped file must error"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// When *every* checkpoint is damaged, `latest()` reports "no valid
/// checkpoint" (`Ok(None)`) and the report lists each corpse — the
/// caller decides whether that is fatal (the serving plane) or a
/// restart-from-seed (elastic recovery).
#[test]
fn all_corrupt_reports_every_corpse_without_panicking() {
    let dir = tmp_dir("all");
    let files = seed_checkpoints(&dir);
    for path in &files {
        let bytes = std::fs::read(path).expect("read");
        std::fs::write(path, &bytes[..bytes.len() / 3]).expect("truncate");
    }
    let report = CheckpointPolicy::latest_report(&dir).expect("scan must not fail");
    assert_eq!(report.valid, None);
    assert_eq!(
        report.rejected.len(),
        files.len(),
        "every damaged file must be reported"
    );
    assert_eq!(CheckpointPolicy::latest(&dir).expect("latest"), None);
    std::fs::remove_dir_all(&dir).ok();
}
