//! Session checkpointing: `RankHandle::save_params` writes model
//! parameters + Adam optimizer state; `Session::restore` produces a
//! session whose runs resume from that checkpoint. The defining property
//! is **exact resume**: train k steps, checkpoint, resume — the combined
//! trajectory equals the uninterrupted run bit for bit, on every backend.

use cgnn::prelude::*;

const SEED: u64 = 23;
const LR: f64 = 1e-3;
const K: usize = 6;

fn mesh() -> BoxMesh {
    BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false)
}

fn session(backend: Backend) -> Session {
    Session::builder()
        .mesh(mesh())
        .partition(Strategy::Block)
        .ranks(4)
        .exchange(HaloExchangeMode::NeighborAllToAll)
        .seed(SEED)
        .learning_rate(LR)
        .backend(backend)
        .build()
        .expect("session")
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cgnn_ckpt_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// Train k steps, checkpoint, train k more in a *separate resumed run*:
/// the resumed tail must equal the uninterrupted run's tail bit for bit —
/// Adam moments and step count included (plain parameter restore would
/// diverge through the bias correction).
#[test]
fn resume_equals_uninterrupted_run_bit_for_bit() {
    let field = TaylorGreen::new(0.01);
    let s = session(Backend::Threads);

    // Reference: 2k uninterrupted steps.
    let full = s.train_autoencode(&field, 0.0, 2 * K);

    // Interrupted: k steps, checkpoint on rank 0, stop.
    let path = tmp_path("resume.ckpt");
    let head = s.run(|h| {
        let data = h.autoencode_data(&field, 0.0);
        let hist = h.train(&data, K);
        if h.rank() == 0 {
            h.save_params(&path).expect("checkpoint");
        }
        hist
    });

    // Resume: a restored session trains the remaining k steps.
    let tail = s
        .restore(&path)
        .expect("restore")
        .train_autoencode(&field, 0.0, K);

    for rank in 0..s.ranks() {
        assert_eq!(head[rank], full[rank][..K], "head must match (rank {rank})");
        assert_eq!(
            tail[rank],
            full[rank][K..],
            "resumed tail must be bit-identical to the uninterrupted run (rank {rank})"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Checkpoints are transport-independent: save under the thread world,
/// resume on the deterministic serial backend (and vice versa) — the
/// trajectories stay bit-identical because arithmetic lives above the
/// backend.
#[test]
fn checkpoint_round_trips_across_backends() {
    let field = TaylorGreen::new(0.01);
    let threads = session(Backend::Threads);
    let full = threads.train_autoencode(&field, 0.0, 2 * K);

    let path = tmp_path("cross_backend.ckpt");
    threads.run(|h| {
        let data = h.autoencode_data(&field, 0.0);
        let _ = h.train(&data, K);
        if h.rank() == 0 {
            h.save_params(&path).expect("checkpoint");
        }
    });

    let tail_serial = session(Backend::Serial)
        .restore(&path)
        .expect("restore")
        .train_autoencode(&field, 0.0, K);
    for rank in 0..threads.ranks() {
        assert_eq!(
            tail_serial[rank],
            full[rank][K..],
            "serial resume of a threads checkpoint diverged (rank {rank})"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint taken before any training step (empty Adam moments) also
/// resumes exactly: the restored run reproduces the from-seed trajectory.
#[test]
fn fresh_checkpoint_resumes_from_step_zero() {
    let field = TaylorGreen::new(0.01);
    let s = session(Backend::Threads);
    let path = tmp_path("fresh.ckpt");
    s.run(|h| {
        if h.rank() == 0 {
            h.save_params(&path).expect("checkpoint");
        }
    });
    let reference = s.train_autoencode(&field, 0.0, K);
    let restored = s
        .restore(&path)
        .expect("restore")
        .train_autoencode(&field, 0.0, K);
    assert_eq!(reference, restored);
    let _ = std::fs::remove_file(&path);
}
