//! Integration test of the paper's Fig. 6 (right): a consistent distributed
//! GNN trained on R = 8 sub-graphs follows the *identical* optimization
//! trajectory as the un-partitioned R = 1 model, while the inconsistent
//! (no-exchange) variant diverges from it.

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloContext, HaloExchangeMode, RankData, Trainer};
use cgnn::graph::{build_distributed_graph, build_global_graph, LocalGraph};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::partition::{Partition, Strategy};

const SEED: u64 = 31;
const ITERS: usize = 25;
const LR: f64 = 1e-3;

fn train_r1(mesh: &BoxMesh, field: &TaylorGreen) -> Vec<f64> {
    let global = Arc::new(build_global_graph(mesh));
    let field = *field;
    World::run(1, move |comm| {
        let ctx = HaloContext::single(comm.clone());
        let mut trainer = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
        let data = RankData::tgv_autoencode(Arc::clone(&global), &field, 0.0);
        trainer.train(&data, ITERS)
    })
    .pop()
    .expect("one history")
}

fn train_r8(mesh: &BoxMesh, field: &TaylorGreen, mode: HaloExchangeMode) -> Vec<Vec<f64>> {
    let part = Partition::new(mesh, 8, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let field = *field;
    World::run(8, move |comm| {
        let g = Arc::clone(&graphs[comm.rank()]);
        let ctx = HaloContext::new(comm.clone(), &g, mode);
        let mut trainer = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
        let data = RankData::tgv_autoencode(g, &field, 0.0);
        trainer.train(&data, ITERS)
    })
}

#[test]
fn consistent_training_recovers_unpartitioned_curve() {
    let mesh = BoxMesh::new((4, 4, 4), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    let target = train_r1(&mesh, &field);
    let consistent = train_r8(&mesh, &field, HaloExchangeMode::NeighborAllToAll);
    let standard = train_r8(&mesh, &field, HaloExchangeMode::None);

    // All ranks see the same curve.
    for h in &consistent[1..] {
        assert_eq!(h, &consistent[0]);
    }

    // Consistent curve tracks the R=1 curve to rounding accuracy.
    let mut max_rel = 0.0f64;
    for (a, b) in consistent[0].iter().zip(&target) {
        max_rel = max_rel.max((a - b).abs() / b.abs().max(1e-300));
    }
    assert!(
        max_rel < 1e-8,
        "consistent training deviates from R=1: {max_rel}"
    );

    // Standard curve deviates visibly once updates accumulate.
    let last_rel = {
        let (a, b) = (standard[0][ITERS - 1], target[ITERS - 1]);
        (a - b).abs() / b.abs()
    };
    assert!(
        last_rel > 1e-4,
        "standard training should deviate from R=1 (got rel diff {last_rel})"
    );

    // And training still makes progress in all settings.
    assert!(target[ITERS - 1] < target[0]);
    assert!(consistent[0][ITERS - 1] < consistent[0][0]);
}

#[test]
fn consistent_training_is_invariant_to_partition_strategy() {
    // Same R, different cut locations: trajectories must still agree
    // (consistency is about locations of boundaries, not just their count).
    let mesh = BoxMesh::new((8, 2, 2), 1, (4.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    let curves: Vec<Vec<f64>> = [Strategy::Slab, Strategy::Rcb]
        .into_iter()
        .map(|strategy| {
            let part = Partition::new(&mesh, 4, strategy);
            let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
                build_distributed_graph(&mesh, &part)
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
            );
            World::run(4, move |comm| {
                let g = Arc::clone(&graphs[comm.rank()]);
                let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
                let mut trainer = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
                let data = RankData::tgv_autoencode(g, &field, 0.0);
                trainer.train(&data, 10)
            })
            .pop()
            .expect("one history")
        })
        .collect();
    for (a, b) in curves[0].iter().zip(&curves[1]) {
        assert!(
            (a - b).abs() / b.abs().max(1e-300) < 1e-9,
            "slab vs RCB curves differ: {a} vs {b}"
        );
    }
}
