//! Integration test of paper Eq. 3: parameter *gradients* of the consistent
//! loss are invariant to the partitioning, and correct against finite
//! differences — the property that makes distributed training converge
//! identically to single-rank training.

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::ddp::reduce_gradients;
use cgnn::core::{
    consistent_mse, ConsistentGnn, GnnConfig, GraphIndices, HaloContext, HaloExchangeMode,
};
use cgnn::graph::{
    build_distributed_graph, build_global_graph, edge_features, node_velocity_features, LocalGraph,
};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::partition::{Partition, Strategy};
use cgnn::tensor::check::{finite_difference_grad, max_rel_error};
use cgnn::tensor::{ParamSet, Tape, Tensor};

const SEED: u64 = 5;

/// Tiny config so finite differences stay tractable.
fn tiny_config() -> GnnConfig {
    GnnConfig {
        hidden: 4,
        n_mp_layers: 2,
        mlp_hidden: 1,
        node_in: 3,
        edge_in: 7,
        node_out: 3,
    }
}

/// Loss + reduced gradient (flat) on one rank.
fn loss_and_grad(
    params: &ParamSet,
    model: &ConsistentGnn,
    g: &Arc<LocalGraph>,
    ctx: &HaloContext,
    field: &TaylorGreen,
) -> (f64, Vec<f64>) {
    let x_buf = node_velocity_features(g, field, 0.0);
    let e_buf = edge_features(g, &x_buf, 3);
    let idx = GraphIndices::from_graph(g);
    let mut tape = Tape::new();
    let bound = params.bind(&mut tape);
    let x = tape.leaf(Tensor::from_vec(g.n_local(), 3, x_buf));
    let e = tape.leaf(Tensor::from_vec(g.n_edges(), 7, e_buf));
    let y = model.forward(&mut tape, &bound, x, e, g, &idx, ctx);
    // Target: decayed field, so gradients are non-trivial.
    let t_buf = node_velocity_features(g, field, 1.0);
    let target = Tensor::from_vec(g.n_local(), 3, t_buf);
    let l = consistent_mse(&mut tape, y, &target, g, &idx.node_inv_degree, &ctx.comm);
    let loss = tape.value(l).item();
    let grads = tape.backward(l);
    let reduced = reduce_gradients(params, &bound, &grads, &ctx.comm);
    let flat: Vec<f64> = reduced
        .iter()
        .flat_map(|t| t.data().iter().copied())
        .collect();
    (loss, flat)
}

#[test]
fn distributed_gradients_match_r1_and_finite_differences() {
    let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.1);
    let global = Arc::new(build_global_graph(&mesh));

    // R = 1 reference gradient.
    let g1 = Arc::clone(&global);
    let (ref_loss, ref_grad) = World::run(1, move |comm| {
        let (params, model) = ConsistentGnn::seeded(tiny_config(), SEED);
        let ctx = HaloContext::single(comm.clone());
        loss_and_grad(&params, &model, &g1, &ctx, &field)
    })
    .pop()
    .expect("one result");

    // Finite differences of the R = 1 loss.
    let (mut params_fd, model_fd) = ConsistentGnn::seeded(tiny_config(), SEED);
    let g1 = Arc::clone(&global);
    let model_ref = &model_fd;
    let fd = finite_difference_grad(&mut params_fd, 1e-5, |p| {
        let g1 = Arc::clone(&g1);
        World::run(1, |comm| {
            let ctx = HaloContext::single(comm.clone());
            // The model only describes the architecture; bind() copies the
            // perturbed parameter values out of `p`.
            loss_and_grad(p, model_ref, &g1, &ctx, &field).0
        })
        .pop()
        .expect("one result")
    });
    // Central differences through ELU + LayerNorm carry O(eps^2) truncation
    // plus cancellation noise on small entries; 2e-3 relative is the
    // realistic floor. The sharp equivalence check is the distributed-vs-R1
    // comparison below at 1e-9.
    let fd_err = max_rel_error(&ref_grad, &fd);
    assert!(fd_err < 2e-3, "autodiff vs finite differences: {fd_err}");

    // Distributed gradients for several partitionings and modes.
    for (r, strategy) in [
        (2, Strategy::Slab),
        (4, Strategy::Block),
        (8, Strategy::Block),
    ] {
        let part = Partition::new(&mesh, r, strategy);
        let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
            build_distributed_graph(&mesh, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        for mode in [
            HaloExchangeMode::NeighborAllToAll,
            HaloExchangeMode::SendRecv,
        ] {
            let graphs = Arc::clone(&graphs);
            let out = World::run(r, move |comm| {
                let (params, model) = ConsistentGnn::seeded(tiny_config(), SEED);
                let g = Arc::clone(&graphs[comm.rank()]);
                let ctx = HaloContext::new(comm.clone(), &g, mode);
                loss_and_grad(&params, &model, &g, &ctx, &field)
            });
            for (loss, grad) in &out {
                assert!(
                    (loss - ref_loss).abs() / ref_loss.max(1e-12) < 1e-10,
                    "loss r={r} {mode:?}"
                );
                let err = max_rel_error(grad, &ref_grad);
                assert!(
                    err < 1e-9,
                    "gradient mismatch r={r} {strategy:?} {mode:?}: {err}"
                );
            }
            // All ranks agree bit-for-bit after the deterministic reduce.
            for (_, grad) in &out[1..] {
                assert_eq!(grad, &out[0].1);
            }
        }
    }
}

#[test]
fn inconsistent_gradients_deviate_from_r1() {
    let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.1);
    let global = Arc::new(build_global_graph(&mesh));
    let g1 = Arc::clone(&global);
    let (_, ref_grad) = World::run(1, move |comm| {
        let (params, model) = ConsistentGnn::seeded(tiny_config(), SEED);
        let ctx = HaloContext::single(comm.clone());
        loss_and_grad(&params, &model, &g1, &ctx, &field)
    })
    .pop()
    .expect("one result");

    let part = Partition::new(&mesh, 4, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let out = World::run(4, move |comm| {
        let (params, model) = ConsistentGnn::seeded(tiny_config(), SEED);
        let g = Arc::clone(&graphs[comm.rank()]);
        let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::None);
        loss_and_grad(&params, &model, &g, &ctx, &field)
    });
    let err = max_rel_error(&out[0].1, &ref_grad);
    assert!(
        err > 1e-4,
        "standard-MP gradients should deviate, got rel err {err}"
    );
}
