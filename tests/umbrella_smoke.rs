//! Smoke test: every workspace crate is reachable through the `cgnn`
//! umbrella re-exports, and a minimal end-to-end object from each layer
//! can be constructed. Guards the workspace wiring itself (the build this
//! repo runs on), not any numerical property.

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloExchangeMode};
use cgnn::graph::{build_distributed_graph, build_global_graph};
use cgnn::mesh::{BoxMesh, GllRule};
use cgnn::partition::{Partition, Strategy};
use cgnn::perf::MachineModel;
use cgnn::sem::ElementOps;
use cgnn::tensor::{Tape, Tensor};

#[test]
fn umbrella_reexports_resolve_and_construct() {
    // mesh
    let mesh = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), false);
    assert!(mesh.num_global_nodes() > 0);
    let rule = GllRule::new(2);
    assert_eq!(rule.nodes.len(), 3);

    // partition + graph
    let part = Partition::new(&mesh, 2, Strategy::Slab);
    let graphs = build_distributed_graph(&mesh, &part);
    assert_eq!(graphs.len(), 2);
    let global = build_global_graph(&mesh);
    assert_eq!(
        global.n_local(),
        mesh.num_global_nodes(),
        "R=1 graph covers every unique node"
    );

    // tensor + autodiff
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_fn(2, 2, |r, c| (r + c) as f64));
    let s = tape.sum(x);
    assert!(tape.value(s).item() > 0.0);

    // sem
    let ops = ElementOps::new(&mesh);
    let _ = ops;

    // perf
    let machine = MachineModel::frontier();
    assert_eq!(machine.ranks_per_node, 8);

    // core config exists and names an exchange mode
    let cfg = GnnConfig::small();
    assert!(cfg.hidden > 0);
    let _ = HaloExchangeMode::NeighborAllToAll;

    // comm: a 2-rank world runs a deterministic all-reduce
    let sums = World::run(2, |comm| {
        let mut buf = [comm.rank() as f64 + 1.0];
        comm.all_reduce_sum(&mut buf);
        buf[0]
    });
    assert_eq!(sums, vec![3.0, 3.0]);
}
