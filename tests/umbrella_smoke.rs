//! Smoke test: every workspace crate is reachable through the `cgnn`
//! umbrella re-exports, and a minimal end-to-end object from each layer
//! can be constructed. Guards the workspace wiring itself (the build this
//! repo runs on), not any numerical property.

use cgnn::comm::World;
use cgnn::core::{GnnConfig, HaloExchangeMode};
use cgnn::graph::{build_distributed_graph, build_global_graph};
use cgnn::mesh::{BoxMesh, GllRule};
use cgnn::partition::{Partition, Strategy};
use cgnn::perf::MachineModel;
use cgnn::sem::ElementOps;
use cgnn::session::Session;
use cgnn::tensor::{Tape, Tensor};

#[test]
fn umbrella_reexports_resolve_and_construct() {
    // mesh
    let mesh = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), false);
    assert!(mesh.num_global_nodes() > 0);
    let rule = GllRule::new(2);
    assert_eq!(rule.nodes.len(), 3);

    // partition + graph
    let part = Partition::new(&mesh, 2, Strategy::Slab);
    let graphs = build_distributed_graph(&mesh, &part);
    assert_eq!(graphs.len(), 2);
    let global = build_global_graph(&mesh);
    assert_eq!(
        global.n_local(),
        mesh.num_global_nodes(),
        "R=1 graph covers every unique node"
    );

    // tensor + autodiff
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_fn(2, 2, |r, c| (r + c) as f64));
    let s = tape.sum(x);
    assert!(tape.value(s).item() > 0.0);

    // sem
    let ops = ElementOps::new(&mesh);
    let _ = ops;

    // perf
    let machine = MachineModel::frontier();
    assert_eq!(machine.ranks_per_node, 8);

    // core config exists and names an exchange mode (with Display)
    let cfg = GnnConfig::small();
    assert!(cfg.hidden > 0);
    assert_eq!(HaloExchangeMode::NeighborAllToAll.to_string(), "N-A2A");

    // comm: a 2-rank world runs a deterministic all-reduce
    let sums = World::run(2, |comm| {
        let mut buf = [comm.rank() as f64 + 1.0];
        comm.all_reduce_sum(&mut buf);
        buf[0]
    });
    assert_eq!(sums, vec![3.0, 3.0]);

    // session: the builder wires the same mesh end to end
    let session = Session::builder()
        .mesh(mesh.clone())
        .ranks(2)
        .partition(Strategy::Slab)
        .exchange(HaloExchangeMode::NeighborAllToAll)
        .build()
        .expect("session assembles");
    assert_eq!(session.ranks(), 2);
    assert_eq!(session.exchange_label(), "N-A2A");
}

/// The prelude pulls in every name the examples need, and nothing clashes.
#[test]
fn prelude_compiles_and_resolves() {
    use cgnn::prelude::*;
    let session = Session::builder()
        .mesh(BoxMesh::tgv_cube(2, 2))
        .ranks(2)
        .exchange(HaloExchangeMode::Coalesced)
        .seed(5)
        .build()
        .expect("session");
    let field = TaylorGreen::new(0.01);
    let histories = session.train_autoencode(&field, 0.0, 2);
    assert_eq!(histories[0], histories[1]);
    let _: ExchangeTraffic = ExchangeTraffic::default();
    let _: StatsSnapshot = StatsSnapshot::default();
}
