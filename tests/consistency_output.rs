//! Integration test of paper Eq. 2: GNN *outputs* (and any function of
//! them, e.g. the consistent loss) are invariant to the number and location
//! of partition boundaries.

use std::sync::Arc;

use cgnn::comm::World;
use cgnn::core::{
    consistent_mse, ConsistentGnn, GnnConfig, GraphIndices, HaloContext, HaloExchangeMode,
};
use cgnn::graph::{
    build_distributed_graph, build_global_graph, edge_features, node_velocity_features, LocalGraph,
};
use cgnn::mesh::{BoxMesh, TaylorGreen};
use cgnn::partition::{Partition, Strategy};
use cgnn::tensor::{Tape, Tensor};

const SEED: u64 = 2024;

/// Forward the seeded small GNN on one rank's local graph, returning
/// `(gids, prediction, loss)`.
fn forward_on(
    g: &Arc<LocalGraph>,
    ctx: &HaloContext,
    field: &TaylorGreen,
) -> (Vec<u64>, Tensor, f64) {
    let (params, model) = ConsistentGnn::seeded(GnnConfig::small(), SEED);
    let x_buf = node_velocity_features(g, field, 0.0);
    let e_buf = edge_features(g, &x_buf, 3);
    let idx = GraphIndices::from_graph(g);
    let mut tape = Tape::new();
    let bound = params.bind(&mut tape);
    let x = tape.leaf(Tensor::from_vec(g.n_local(), 3, x_buf.clone()));
    let e = tape.leaf(Tensor::from_vec(g.n_edges(), 7, e_buf));
    let y = model.forward(&mut tape, &bound, x, e, g, &idx, ctx);
    // Loss with the input as target (the paper's Fig. 6 demonstration).
    let target = Tensor::from_vec(g.n_local(), 3, x_buf);
    let l = consistent_mse(&mut tape, y, &target, g, &idx.node_inv_degree, &ctx.comm);
    (g.gids.clone(), tape.value(y).clone(), tape.value(l).item())
}

fn reference(mesh: &BoxMesh, field: &TaylorGreen) -> (Arc<LocalGraph>, Tensor, f64) {
    let global = Arc::new(build_global_graph(mesh));
    let g2 = Arc::clone(&global);
    let field = *field;
    let (y, l) = World::run(1, move |comm| {
        let ctx = HaloContext::single(comm.clone());
        let (_, y, l) = forward_on(&g2, &ctx, &field);
        (y, l)
    })
    .pop()
    .expect("one result");
    (global, y, l)
}

#[test]
fn consistent_gnn_output_matches_r1_for_all_modes_and_partitions() {
    let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    let (global, ref_y, ref_loss) = reference(&mesh, &field);

    for (r, strategy) in [
        (2, Strategy::Slab),
        (4, Strategy::Pencil),
        (8, Strategy::Block),
        (4, Strategy::Rcb),
    ] {
        let part = Partition::new(&mesh, r, strategy);
        let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
            build_distributed_graph(&mesh, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        for mode in [
            HaloExchangeMode::AllToAll,
            HaloExchangeMode::NeighborAllToAll,
            HaloExchangeMode::SendRecv,
        ] {
            let graphs = Arc::clone(&graphs);
            let out = World::run(r, move |comm| {
                let g = Arc::clone(&graphs[comm.rank()]);
                let ctx = HaloContext::new(comm.clone(), &g, mode);
                forward_on(&g, &ctx, &field)
            });
            for (gids, y, loss) in &out {
                assert!(
                    (loss - ref_loss).abs() / ref_loss.abs().max(1e-12) < 1e-10,
                    "loss mismatch r={r} {strategy:?} {mode:?}: {loss} vs {ref_loss}"
                );
                for (row, &gid) in gids.iter().enumerate() {
                    let gr = global.local_of_gid(gid).expect("gid in global");
                    for c in 0..3 {
                        let a = y.get(row, c);
                        let b = ref_y.get(gr, c);
                        assert!(
                            (a - b).abs() < 1e-10,
                            "r={r} {strategy:?} {mode:?} gid {gid} col {c}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn standard_mp_loss_deviates_and_grows_with_rank_count() {
    // The inconsistent baseline's loss error grows with R (paper Fig. 6
    // left: roughly linear in R as the boundary-node fraction grows).
    let mesh = BoxMesh::new((8, 8, 8), 1, (1.0, 1.0, 1.0), false);
    let field = TaylorGreen::new(0.01);
    let (_, _, ref_loss) = reference(&mesh, &field);

    let mut errors = Vec::new();
    for r in [2usize, 8, 32] {
        let part = Partition::new(&mesh, r, Strategy::Block);
        let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
            build_distributed_graph(&mesh, &part)
                .into_iter()
                .map(Arc::new)
                .collect(),
        );
        let out = World::run(r, move |comm| {
            let g = Arc::clone(&graphs[comm.rank()]);
            let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::None);
            let (_, _, l) = forward_on(&g, &ctx, &field);
            l
        });
        let err = (out[0] - ref_loss).abs() / ref_loss.abs();
        errors.push((r, err));
    }
    assert!(
        errors[0].1 > 1e-8,
        "R=2 standard MP should already deviate: {errors:?}"
    );
    assert!(
        errors[2].1 > errors[0].1,
        "deviation should grow with R: {errors:?}"
    );
}

#[test]
fn consistency_holds_on_periodic_meshes() {
    let mesh = BoxMesh::tgv_cube(4, 2);
    let field = TaylorGreen::new(0.05);
    let (global, ref_y, _) = reference(&mesh, &field);
    let part = Partition::new(&mesh, 8, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    let out = World::run(8, move |comm| {
        let g = Arc::clone(&graphs[comm.rank()]);
        let ctx = HaloContext::new(comm.clone(), &g, HaloExchangeMode::NeighborAllToAll);
        forward_on(&g, &ctx, &field)
    });
    for (gids, y, _) in &out {
        for (row, &gid) in gids.iter().enumerate() {
            let gr = global.local_of_gid(gid).expect("gid in global");
            for c in 0..3 {
                assert!((y.get(row, c) - ref_y.get(gr, c)).abs() < 1e-10);
            }
        }
    }
}
