//! Property tests of the object-safe [`PartitionStrategy`] trait: random
//! small meshes, world sizes 1..=8, every in-tree strategy.
//!
//! Pins three things: (1) a partition is a *partition* — every element
//! owned exactly once and every rank non-empty; (2) the trait-object
//! refactor is behavior-preserving — `Strategy::X.object()` produces the
//! element-identical owner map of the enum front door (RCB included, the
//! strategy elastic recovery replays); (3) graphs built from
//! trait-object partitions keep the symmetric halo plans the consistent
//! halo exchange relies on.

use proptest::prelude::*;

use cgnn::graph::build_distributed_graph;
use cgnn::mesh::BoxMesh;
use cgnn::partition::{Partition, Strategy};

const ALL: [Strategy; 4] = [
    Strategy::Slab,
    Strategy::Pencil,
    Strategy::Block,
    Strategy::Rcb,
];

fn strategy_from(i: u8) -> Strategy {
    ALL[(i % 4) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every element is owned by exactly one rank, every owner is a real
    /// rank, and no rank is left empty — for every strategy, through the
    /// trait-object path.
    #[test]
    fn every_element_owned_exactly_once(
        ex in 2usize..5, ey in 2usize..5, ez in 2usize..4,
        p in 1usize..3,
        ranks in 1usize..9,
        strat in 0u8..4,
    ) {
        let mesh = BoxMesh::new((ex, ey, ez), p, (1.0, 1.0, 1.0), false);
        prop_assume!(mesh.num_elements() >= ranks);
        let part = strategy_from(strat).object().partition(&mesh, ranks);
        prop_assert_eq!(part.n_ranks(), ranks);
        prop_assert_eq!(part.owners().len(), mesh.num_elements());

        // Exactly-once coverage: rank element lists are a disjoint
        // partition of 0..num_elements consistent with the owner map.
        let mut seen = vec![false; mesh.num_elements()];
        for r in 0..ranks {
            let elems = part.elements_of(r);
            prop_assert!(!elems.is_empty(), "rank {} owns nothing", r);
            for &e in elems {
                prop_assert!(e < mesh.num_elements());
                prop_assert!(!seen[e], "element {} owned twice", e);
                seen[e] = true;
                prop_assert_eq!(part.owner_of(e), r);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some element is owned by no rank");
    }

    /// The trait refactor is behavior-preserving: the object path yields
    /// the element-identical owner map of the enum path, for every
    /// strategy and world size (RCB especially — the one elastic recovery
    /// replays at arbitrary survivor counts).
    #[test]
    fn trait_objects_match_the_enum_path(
        ex in 2usize..5, ey in 2usize..5, ez in 2usize..4,
        p in 1usize..3,
        ranks in 1usize..9,
    ) {
        let mesh = BoxMesh::new((ex, ey, ez), p, (1.0, 1.0, 1.0), false);
        prop_assume!(mesh.num_elements() >= ranks);
        for strategy in ALL {
            let via_enum = Partition::new(&mesh, ranks, strategy);
            let via_trait = strategy.object().partition(&mesh, ranks);
            prop_assert_eq!(
                via_enum.owners(), via_trait.owners(),
                "{:?} diverges through the trait object", strategy
            );
        }
    }

    /// Distributed graphs built from trait-object partitions have
    /// pairwise-symmetric halo plans: the shared-node list rank r keeps
    /// for neighbor s is exactly the one s keeps for r.
    #[test]
    fn object_partition_halos_are_symmetric(
        e in 2usize..5,
        p in 1usize..3,
        ranks in 2usize..9,
        strat in 0u8..4,
        periodic in proptest::bool::ANY,
    ) {
        prop_assume!(!periodic || p * e >= 3);
        let mesh = BoxMesh::new((e, e, e), p, (1.0, 1.0, 1.0), periodic);
        prop_assume!(mesh.num_elements() >= ranks);
        let part = strategy_from(strat).object().partition(&mesh, ranks);
        let graphs = build_distributed_graph(&mesh, &part);
        for g in &graphs {
            for (ni, &s) in g.halo.neighbors.iter().enumerate() {
                let other = &graphs[s];
                let back = other.halo.neighbors.iter().position(|&x| x == g.rank);
                prop_assert!(back.is_some(), "asymmetric neighbor {} -> {}", g.rank, s);
                let mine: Vec<u64> =
                    g.halo.send_ids[ni].iter().map(|&l| g.gids[l]).collect();
                let theirs: Vec<u64> = other.halo.send_ids[back.unwrap()]
                    .iter()
                    .map(|&l| other.gids[l])
                    .collect();
                prop_assert_eq!(mine, theirs);
            }
        }
    }
}

/// Labels survive the bridge: each trait object reports the lowercase
/// name of its enum variant, the form diagnostics and reports print.
#[test]
fn object_labels_match_enum_variants() {
    for strategy in ALL {
        assert_eq!(
            strategy.object().label(),
            format!("{strategy:?}").to_lowercase()
        );
    }
}
