//! Equivalence of the `Session` builder front-end with the hand-wired SPMD
//! path it replaced: for every halo exchange strategy, a builder-constructed
//! session must reproduce the hand-wired loss trajectory **bit for bit**
//! (same mesh -> partition -> graph -> context -> trainer wiring, same
//! deterministic collectives), and the new coalesced strategy must be
//! arithmetically identical to N-A2A.

use std::sync::Arc;

use cgnn::prelude::*;

const SEED: u64 = 31;
const ITERS: usize = 12;
const LR: f64 = 1e-3;

fn mesh() -> BoxMesh {
    BoxMesh::new((4, 4, 4), 1, (1.0, 1.0, 1.0), false)
}

/// The pre-session wiring, verbatim: partition by hand, build graphs by
/// hand, construct `HaloContext` and `Trainer` inside the SPMD closure.
fn hand_wired(ranks: usize, mode: HaloExchangeMode) -> Vec<Vec<f64>> {
    let mesh = mesh();
    let field = TaylorGreen::new(0.01);
    if ranks == 1 {
        let global = Arc::new(build_global_graph(&mesh));
        return World::run(1, move |comm| {
            let ctx = HaloContext::single(comm.clone());
            let mut trainer = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
            let data = RankData::tgv_autoencode(Arc::clone(&global), &field, 0.0);
            trainer.train(&data, ITERS)
        });
    }
    let part = Partition::new(&mesh, ranks, Strategy::Block);
    let graphs: Arc<Vec<Arc<LocalGraph>>> = Arc::new(
        build_distributed_graph(&mesh, &part)
            .into_iter()
            .map(Arc::new)
            .collect(),
    );
    World::run(ranks, move |comm| {
        let g = Arc::clone(&graphs[comm.rank()]);
        let ctx = HaloContext::new(comm.clone(), &g, mode);
        let mut trainer = Trainer::new(GnnConfig::small(), SEED, LR, ctx);
        let data = RankData::tgv_autoencode(g, &field, 0.0);
        trainer.train(&data, ITERS)
    })
}

fn session(ranks: usize, mode: HaloExchangeMode) -> Vec<Vec<f64>> {
    Session::builder()
        .mesh(mesh())
        .partition(Strategy::Block)
        .ranks(ranks)
        .exchange(mode)
        .model(GnnConfig::small())
        .seed(SEED)
        .learning_rate(LR)
        .build()
        .expect("session")
        .train_autoencode(&TaylorGreen::new(0.01), 0.0, ITERS)
}

/// Cross-backend equivalence: for every halo-exchange strategy, training
/// trajectories are **bit-identical** under the thread world and the
/// deterministic serial backend. The reduction arithmetic lives in the
/// `Comm` layer above the transport, so no backend can perturb it — this
/// suite is the executable form of that claim.
#[test]
fn backends_are_bit_identical_for_all_modes() {
    // Bit-identity either holds from the first reduction or not at all, so
    // a short trajectory suffices (the serial backend runs fully
    // single-stepped, so this also bounds suite wall-clock).
    for mode in HaloExchangeMode::all() {
        let per_backend: Vec<Vec<Vec<f64>>> = Backend::all()
            .into_iter()
            .map(|backend| {
                Session::builder()
                    .mesh(mesh())
                    .partition(Strategy::Block)
                    .ranks(8)
                    .exchange(mode)
                    .backend(backend)
                    .model(GnnConfig::small())
                    .seed(SEED)
                    .learning_rate(LR)
                    .build()
                    .expect("session")
                    .train_autoencode(&TaylorGreen::new(0.01), 0.0, 5)
            })
            .collect();
        assert_eq!(
            per_backend[0], per_backend[1],
            "mode {mode}: thread and serial trajectories differ"
        );
    }
}

/// Builder sessions reproduce the hand-wired trajectories bit-identically
/// for every built-in strategy (the four paper modes + the coalesced and
/// overlapped extensions), at R = 8.
#[test]
fn session_matches_hand_wired_path_for_all_modes() {
    for mode in HaloExchangeMode::all() {
        let reference = hand_wired(8, mode);
        let through_builder = session(8, mode);
        assert_eq!(
            reference, through_builder,
            "mode {mode}: builder and hand-wired trajectories differ"
        );
    }
}

/// Same equivalence for the un-partitioned R = 1 path (`HaloContext::single`).
#[test]
fn session_matches_hand_wired_path_single_rank() {
    let reference = hand_wired(1, HaloExchangeMode::None);
    let through_builder = session(1, HaloExchangeMode::None);
    assert_eq!(reference, through_builder);
}

/// The coalesced all-gather strategy ships the same payloads in the same
/// accumulation order as N-A2A, so entire training trajectories must be
/// **bit-identical** — only the traffic pattern differs.
#[test]
fn coalesced_is_arithmetically_identical_to_neighbor_a2a() {
    for ranks in [2usize, 4, 8] {
        let na2a = session(ranks, HaloExchangeMode::NeighborAllToAll);
        let coal = session(ranks, HaloExchangeMode::Coalesced);
        assert_eq!(
            na2a, coal,
            "R={ranks}: coalesced and N-A2A trajectories must be bit-identical"
        );
    }
}

/// The overlapped exchange reorders the communication schedule onto the
/// non-blocking API without touching payloads or accumulation order, so
/// entire training trajectories must be **bit-identical** to Send-Recv.
#[test]
fn overlapped_is_arithmetically_identical_to_send_recv() {
    for ranks in [2usize, 4, 8] {
        let sr = session(ranks, HaloExchangeMode::SendRecv);
        let ovl = session(ranks, HaloExchangeMode::Overlapped);
        assert_eq!(
            sr, ovl,
            "R={ranks}: overlapped and Send-Recv trajectories must be bit-identical"
        );
    }
}

/// A custom strategy plugged in through the builder's `exchange_with`
/// extension point participates in training like a built-in one.
#[test]
fn custom_exchange_strategy_through_builder() {
    let custom = Session::builder()
        .mesh(mesh())
        .partition(Strategy::Block)
        .ranks(4)
        .exchange_with("custom-na2a", |_comm, _graph| {
            Arc::new(cgnn::core::NeighborAllToAll)
        })
        .seed(SEED)
        .learning_rate(LR)
        .build()
        .expect("session");
    assert_eq!(custom.exchange_label(), "custom-na2a");
    // Session and handle agree on the label; the strategy's own label stays
    // reachable through the context.
    let labels = custom.run(|h| (h.exchange_label(), h.trainer().ctx.label()));
    assert_eq!(labels[0], ("custom-na2a", "N-A2A"));
    let histories = custom.train_autoencode(&TaylorGreen::new(0.01), 0.0, ITERS);
    assert_eq!(histories, session(4, HaloExchangeMode::NeighborAllToAll));
}

/// Custom strategies are built even at R = 1 (no silent `NoExchange`
/// substitution): the factory runs and the handle sees the configured
/// strategy, while the arithmetic still matches the hand-wired single-rank
/// path because the halo sync is an identity on one rank.
#[test]
fn custom_strategy_is_not_dropped_at_single_rank() {
    let s = Session::builder()
        .mesh(mesh())
        .ranks(1)
        .exchange_with("solo", |_comm, _graph| {
            Arc::new(cgnn::core::NeighborAllToAll)
        })
        .seed(SEED)
        .learning_rate(LR)
        .build()
        .expect("session");
    let labels = s.run(|h| (h.exchange_label(), h.trainer().ctx.label()));
    assert_eq!(labels, vec![("solo", "N-A2A")], "factory must run at R = 1");
    let histories = s.train_autoencode(&TaylorGreen::new(0.01), 0.0, ITERS);
    assert_eq!(
        vec![histories[0].clone()],
        hand_wired(1, HaloExchangeMode::None),
        "R = 1 arithmetic is exchange-independent"
    );
}

/// `with_exchange` shares the wiring but must behave exactly like a
/// freshly built session with that mode.
#[test]
fn with_exchange_matches_fresh_build() {
    let base = Session::builder()
        .mesh(mesh())
        .partition(Strategy::Block)
        .ranks(8)
        .seed(SEED)
        .learning_rate(LR)
        .build()
        .expect("session");
    for mode in [HaloExchangeMode::None, HaloExchangeMode::Coalesced] {
        assert_eq!(
            base.with_exchange(mode)
                .train_autoencode(&TaylorGreen::new(0.01), 0.0, ITERS),
            session(8, mode),
            "with_exchange({mode}) diverged from a fresh build"
        );
    }
}

/// Traffic accounting through the session: predicted per-exchange volumes
/// match the measured counters for every consistent strategy.
#[test]
fn session_traffic_accounting_is_exact() {
    let field = TaylorGreen::new(0.01);
    for mode in HaloExchangeMode::all() {
        let s = Session::builder()
            .mesh(mesh())
            .partition(Strategy::Block)
            .ranks(8)
            .exchange(mode)
            .seed(SEED)
            .build()
            .expect("session");
        let checks = s.run(|h| {
            let data = h.autoencode_data(&field, 0.0);
            h.traffic_reset();
            h.step(&data);
            let measured = h.traffic();
            let predicted = h.trainer().ctx.strategy().traffic_per_exchange(
                h.graph(),
                h.size(),
                h.trainer().model.config.hidden,
            );
            (measured, predicted)
        });
        let mut total_sends = 0;
        let mut total_recvs = 0;
        let mut total_send_bytes = 0;
        let mut total_recv_bytes = 0;
        for (measured, predicted) in checks {
            // 4 MP layers, forward + backward = 8 exchanges per step.
            let halo_bytes = measured.a2a_bytes + measured.send_bytes + measured.all_gather_bytes;
            assert_eq!(
                halo_bytes,
                8 * predicted.bytes,
                "mode {mode}: measured halo bytes vs 8x predicted"
            );
            total_sends += measured.sends;
            total_recvs += measured.recvs;
            total_send_bytes += measured.send_bytes;
            total_recv_bytes += measured.recv_bytes;
        }
        // Point-to-point accounting is symmetric across the world: every
        // send injected during the step was drained by a matching receive.
        assert_eq!(total_sends, total_recvs, "mode {mode}: sends != recvs");
        assert_eq!(
            total_send_bytes, total_recv_bytes,
            "mode {mode}: send bytes != recv bytes"
        );
    }
}
