//! Property-based tests (proptest) of the structural invariants the
//! consistency proofs rest on, across randomized meshes, orders, rank
//! counts, and partition strategies.

use proptest::prelude::*;

use cgnn::graph::{analytic_block_stats, build_distributed_graph, build_global_graph, exact_stats};
use cgnn::mesh::BoxMesh;
use cgnn::partition::{Layout, Partition, Strategy};

fn strategy_from(i: u8) -> Strategy {
    match i % 4 {
        0 => Strategy::Slab,
        1 => Strategy::Pencil,
        2 => Strategy::Block,
        _ => Strategy::Rcb,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// sum over ranks of sum_i 1/d_i == number of unique global nodes
    /// (the identity that makes N_eff in Eq. 6c equal the R=1 node count).
    #[test]
    fn effective_node_count_is_exact(
        ex in 2usize..5, ey in 2usize..5, ez in 2usize..4,
        p in 1usize..4,
        ranks in 1usize..9,
        strat in 0u8..4,
        periodic in proptest::bool::ANY,
    ) {
        prop_assume!(!periodic || (p * ex >= 3 && p * ey >= 3 && p * ez >= 3));
        let mesh = BoxMesh::new((ex, ey, ez), p, (1.0, 1.0, 1.0), periodic);
        prop_assume!(mesh.num_elements() >= ranks);
        let part = Partition::new(&mesh, ranks, strategy_from(strat));
        let graphs = build_distributed_graph(&mesh, &part);
        let neff: f64 = graphs.iter().flat_map(|g| g.node_inv_degree.iter()).sum();
        let n = mesh.num_global_nodes() as f64;
        prop_assert!((neff - n).abs() < 1e-6 * n.max(1.0), "neff={neff} n={n}");
    }

    /// sum over ranks of sum_e 1/d_ij == directed edge count of the R=1
    /// graph (the identity behind the consistent aggregation Eq. 4b).
    #[test]
    fn effective_edge_count_is_exact(
        e in 2usize..5,
        p in 1usize..4,
        ranks in 2usize..9,
        strat in 0u8..4,
    ) {
        let mesh = BoxMesh::new((e, e, e), p, (1.0, 1.0, 1.0), false);
        prop_assume!(mesh.num_elements() >= ranks);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, ranks, strategy_from(strat));
        let graphs = build_distributed_graph(&mesh, &part);
        let eff: f64 = graphs.iter().flat_map(|g| g.edge_inv_degree.iter()).sum();
        prop_assert!((eff - global.n_edges() as f64).abs() < 1e-6);
    }

    /// Halo plans are pairwise symmetric: the shared-gid list rank r keeps
    /// for neighbour s equals the one s keeps for r.
    #[test]
    fn halo_plans_symmetric(
        e in 2usize..5,
        p in 1usize..3,
        ranks in 2usize..9,
        strat in 0u8..4,
        periodic in proptest::bool::ANY,
    ) {
        prop_assume!(!periodic || p * e >= 3);
        let mesh = BoxMesh::new((e, e, e), p, (1.0, 1.0, 1.0), periodic);
        prop_assume!(mesh.num_elements() >= ranks);
        let part = Partition::new(&mesh, ranks, strategy_from(strat));
        let graphs = build_distributed_graph(&mesh, &part);
        for g in &graphs {
            for (ni, &s) in g.halo.neighbors.iter().enumerate() {
                let other = &graphs[s];
                let back = other.halo.neighbors.iter().position(|&x| x == g.rank);
                prop_assert!(back.is_some(), "asymmetric neighbour {} -> {s}", g.rank);
                let mine: Vec<u64> =
                    g.halo.send_ids[ni].iter().map(|&l| g.gids[l]).collect();
                let theirs: Vec<u64> = other.halo.send_ids[back.unwrap()]
                    .iter()
                    .map(|&l| other.gids[l])
                    .collect();
                prop_assert_eq!(mine, theirs);
            }
        }
    }

    /// The closed-form Table II statistics agree with the built graphs for
    /// every structured layout that fits.
    #[test]
    fn analytic_stats_match_exact(
        ex in 2usize..5, ey in 2usize..5, ez in 2usize..4,
        p in 1usize..4,
        rx in 1usize..4, ry in 1usize..3, rz in 1usize..3,
        periodic in proptest::bool::ANY,
    ) {
        prop_assume!(rx <= ex && ry <= ey && rz <= ez);
        prop_assume!(!periodic || (p * ex >= 3 && p * ey >= 3 && p * ez >= 3));
        let mesh = BoxMesh::new((ex, ey, ez), p, (1.0, 1.0, 1.0), periodic);
        let layout = Layout::new(rx, ry, rz);
        let part = Partition::structured(&mesh, layout);
        let graphs = build_distributed_graph(&mesh, &part);
        let exact: Vec<_> = graphs.iter().map(exact_stats).collect();
        let analytic = analytic_block_stats(&mesh, &layout);
        prop_assert_eq!(exact, analytic);
    }

    /// Every node's 1/d_i matches the number of ranks actually holding it,
    /// and shared nodes appear in halo plans.
    #[test]
    fn node_degrees_count_actual_copies(
        e in 2usize..4,
        p in 1usize..3,
        ranks in 2usize..7,
        strat in 0u8..4,
    ) {
        let mesh = BoxMesh::new((e, e, e), p, (1.0, 1.0, 1.0), false);
        prop_assume!(mesh.num_elements() >= ranks);
        let part = Partition::new(&mesh, ranks, strategy_from(strat));
        let graphs = build_distributed_graph(&mesh, &part);
        for g in &graphs {
            for (lid, &gid) in g.gids.iter().enumerate() {
                let copies =
                    graphs.iter().filter(|h| h.local_of_gid(gid).is_some()).count();
                let d = (1.0 / g.node_inv_degree[lid]).round() as usize;
                prop_assert_eq!(d, copies, "gid {} on rank {}", gid, g.rank);
                if copies > 1 {
                    let in_plan = g
                        .halo
                        .send_ids
                        .iter()
                        .any(|ids| ids.contains(&lid));
                    prop_assert!(in_plan, "shared gid {} missing from halo plan", gid);
                }
            }
        }
    }
}
