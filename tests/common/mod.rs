//! Shared integration-test helpers: bounded deadline polling instead of
//! fixed sleeps.
//!
//! Fixed `thread::sleep(...)` waits are either too short (flaky under CI
//! load) or too long (slow everywhere). These helpers poll a probe with a
//! short pause until a condition holds, failing loudly with a
//! description when the deadline elapses — the wait is as short as the
//! condition allows and as long as the machine needs.
//!
//! Lives once at the workspace root (`tests/common/`) and is shared by
//! the chaos suite and per-crate integration tests through
//! `#[path = ...] mod common;`.

#![allow(dead_code)] // each test binary uses the subset it needs

use std::time::{Duration, Instant};

/// How often probes are re-run while waiting.
const POLL: Duration = Duration::from_millis(5);

/// Poll `probe` until it returns `Some(v)`, panicking with `what` if
/// `deadline` elapses first. The probe runs at least once even for a
/// zero deadline.
///
/// # Panics
/// When `deadline` elapses without the probe producing a value.
pub fn wait_for<T>(deadline: Duration, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let give_up = Instant::now() + deadline;
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(
            Instant::now() < give_up,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(POLL);
    }
}

/// Poll `probe` until it returns `true`, panicking with `what` if
/// `deadline` elapses first.
///
/// # Panics
/// When `deadline` elapses without the condition becoming true.
pub fn wait_until(deadline: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    wait_for(deadline, what, || probe().then_some(()));
}

/// A deadline generous enough for CI yet irrelevant when things work:
/// conditions in these tests normally hold within milliseconds.
pub fn generous() -> Duration {
    Duration::from_secs(10)
}

/// A watchdog that aborts the whole test process if it is still armed
/// when `deadline` elapses. Chaos tests intentionally kill ranks
/// mid-collective; if liveness detection ever regressed, the surviving
/// ranks would block forever and the test would *hang* rather than fail.
/// The guard turns that hang into a loud, fast abort. Dropping the guard
/// disarms it.
pub struct HangGuard {
    armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl Drop for HangGuard {
    fn drop(&mut self) {
        self.armed
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

/// Arm a [`HangGuard`] for `deadline`; `what` names the run being
/// supervised in the abort message.
pub fn hang_guard(deadline: Duration, what: &'static str) -> HangGuard {
    let armed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let flag = std::sync::Arc::clone(&armed);
    std::thread::spawn(move || {
        let give_up = Instant::now() + deadline;
        while Instant::now() < give_up {
            if !flag.load(std::sync::atomic::Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if flag.load(std::sync::atomic::Ordering::Acquire) {
            eprintln!("HangGuard: still waiting on {what} after {deadline:?}; aborting");
            std::process::abort();
        }
    });
    HangGuard { armed }
}
