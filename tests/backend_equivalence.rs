//! Transport equivalence across *all four* launchable backends: for every
//! consistent halo-exchange mode, a world of 3 ranks must produce
//! bit-identical loss trajectories, bit-identical checkpoint files, and
//! bit-identical resumed trajectories whether the ranks are OS threads
//! (`Backend::Threads`), round-robin single-stepped (`Backend::Serial`),
//! separate re-exec'd processes over a Unix-socket mesh (`Backend::Proc`),
//! or separate processes over a localhost TCP mesh (`Backend::Socket`).
//!
//! The cross-process backends re-exec this test binary for ranks 1..R, so
//! the suite is **one** parent `#[test]` plus an `#[ignore]`d worker entry
//! the children run instead (`reexec_scope` pins the child argv; the cell
//! under test travels in `CGNN_TEST_CELL`). Each cell spans two launches —
//! train-and-checkpoint, then restore-and-resume — and a child joining the
//! second launch deterministically replays the first in-process, rewriting
//! the (atomically saved, byte-identical) checkpoint on its way.

use std::path::{Path, PathBuf};

use cgnn::comm::reexec_scope;
use cgnn::prelude::*;

const SEED: u64 = 41;
const LR: f64 = 1e-3;
const K: usize = 4;
const WORLD: usize = 3;

const WORKER: &str = "backend_worker_entry";
const CELL_ENV: &str = "CGNN_TEST_CELL";
const DIR_ENV: &str = "CGNN_EQUIV_DIR";

fn mesh() -> BoxMesh {
    BoxMesh::new((4, 3, 2), 1, (1.0, 1.0, 1.0), false)
}

/// The argv child rank processes re-run: exactly the ignored worker entry,
/// single-threaded so launch numbering inside the scope is deterministic.
fn worker_args() -> [&'static str; 5] {
    [
        WORKER,
        "--exact",
        "--ignored",
        "--test-threads=1",
        "--quiet",
    ]
}

/// Everything a (mode, backend) cell produces that must agree bit-for-bit
/// across backends.
struct CellOut {
    /// Rank 0's loss trajectory for the first `K` steps.
    head: Vec<f64>,
    /// Raw bytes of the checkpoint file rank 0 saved after the head.
    ckpt_bytes: Vec<u8>,
    /// Rank 0's loss trajectory for `K` further steps resumed from it.
    tail: Vec<f64>,
    /// World-summed `[sends, recvs, send_bytes, recv_bytes]` of the tail.
    traffic: [u64; 4],
}

/// One equivalence cell: two launches on `backend` under whatever
/// `reexec_scope` the caller pinned. Runs identically in the parent test
/// and in re-exec'd child rank processes (where one launch joins the
/// spawned world and the other replays in-process).
fn run_cell(mode: HaloExchangeMode, backend: Backend, dir: &Path) -> CellOut {
    let field = TaylorGreen::new(0.01);
    let session = Session::builder()
        .mesh(mesh())
        .partition(Strategy::Block)
        .ranks(WORLD)
        .exchange(mode)
        .backend(backend)
        .seed(SEED)
        .learning_rate(LR)
        .build()
        .expect("session");
    let path = dir.join(format!("{}-{}.ckpt", mode.label(), backend.label()));

    // Launch 1: train K steps, checkpoint on rank 0.
    let heads = session.run(|h| {
        let data = h.autoencode_data(&field, 0.0);
        let hist = h.train(&data, K);
        if h.rank() == 0 {
            h.save_params(&path).expect("checkpoint");
        }
        hist
    });
    for (rank, head) in heads.iter().enumerate().skip(1) {
        assert_eq!(head, &heads[0], "rank {rank} head diverged from rank 0");
    }
    let ckpt_bytes = std::fs::read(&path).expect("read checkpoint back");

    // Launch 2: restore and train K more, measuring p2p traffic symmetry
    // inside the SPMD region (each rank contributes its counters to an
    // all-gather so rank 0 can report world totals).
    let tails = session.restore(&path).expect("restore").run(|h| {
        let data = h.autoencode_data(&field, 0.0);
        h.traffic_reset();
        let hist = h.train(&data, K);
        let t = h.traffic();
        let gathered = h.comm().all_gather(vec![
            t.sends as f64,
            t.recvs as f64,
            t.send_bytes as f64,
            t.recv_bytes as f64,
        ]);
        let mut totals = [0u64; 4];
        for buf in gathered {
            for (slot, v) in totals.iter_mut().zip(buf) {
                *slot += v as u64;
            }
        }
        (hist, totals)
    });
    for (rank, (tail, _)) in tails.iter().enumerate().skip(1) {
        assert_eq!(tail, &tails[0].0, "rank {rank} tail diverged from rank 0");
    }
    let (tail, traffic) = tails.into_iter().next().expect("rank 0 result");
    CellOut {
        head: heads.into_iter().next().expect("rank 0 result"),
        ckpt_bytes,
        tail,
        traffic,
    }
}

fn mode_from_label(label: &str) -> HaloExchangeMode {
    HaloExchangeMode::all()
        .into_iter()
        .find(|m| m.label() == label)
        .unwrap_or_else(|| panic!("unknown exchange mode label {label:?}"))
}

fn backend_from_label(label: &str) -> Backend {
    [
        Backend::Threads,
        Backend::Serial,
        Backend::Proc,
        Backend::Socket,
    ]
    .into_iter()
    .find(|b| b.label() == label)
    .unwrap_or_else(|| panic!("unknown backend label {label:?}"))
}

/// Re-exec entry point: child rank processes run *this* (ignored) test,
/// read the cell from the environment, and replay the parent's launch
/// sequence for that cell so `CGNN_PROC_SEQ` lines up.
#[test]
#[ignore = "re-exec entry point for cross-process child ranks"]
fn backend_worker_entry() {
    let Ok(cell) = std::env::var(CELL_ENV) else {
        return; // invoked via `--ignored` by hand, not as a child rank
    };
    let (mode_label, backend_label) = cell
        .split_once('/')
        .unwrap_or_else(|| panic!("malformed {CELL_ENV}={cell:?}"));
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("parent exports the cell dir"));
    let _scope = reexec_scope(worker_args());
    run_cell(
        mode_from_label(mode_label),
        backend_from_label(backend_label),
        &dir,
    );
}

/// The tentpole claim, executable: all four transports are bit-identical —
/// trajectories, checkpoint files, and checkpoint/restore round-trips —
/// for every consistent halo-exchange mode, and the cross-process
/// transports' point-to-point traffic is exactly symmetric (every posted
/// send was drained by a matching receive; nothing lost on the wire).
#[test]
fn all_backends_bit_identical_for_all_consistent_modes() {
    let dir = std::env::temp_dir().join(format!("cgnn-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cell dir");
    // Children inherit these: the worker entry reads them to find its cell.
    // (This test binary runs exactly one non-ignored test, so process-global
    // env mutation races with nothing.)
    std::env::set_var(DIR_ENV, &dir);

    let backends = [
        Backend::Threads,
        Backend::Serial,
        Backend::Proc,
        Backend::Socket,
    ];
    for mode in HaloExchangeMode::all()
        .into_iter()
        .filter(|m| m.is_consistent())
    {
        let mut outs: Vec<(Backend, CellOut)> = Vec::new();
        for backend in backends {
            std::env::set_var(CELL_ENV, format!("{}/{}", mode.label(), backend.label()));
            let _scope = reexec_scope(worker_args());
            outs.push((backend, run_cell(mode, backend, &dir)));
        }
        let reference = &outs[0].1;
        assert_eq!(reference.head.len(), K);
        assert_eq!(reference.tail.len(), K);
        for (backend, out) in &outs[1..] {
            let b = backend.label();
            assert_eq!(out.head, reference.head, "mode {mode}, backend {b}: head");
            assert_eq!(
                out.ckpt_bytes, reference.ckpt_bytes,
                "mode {mode}, backend {b}: checkpoint file bytes"
            );
            assert_eq!(
                out.tail, reference.tail,
                "mode {mode}, backend {b}: resumed tail"
            );
        }
        for (backend, out) in &outs {
            if backend.is_in_process() {
                continue;
            }
            let b = backend.label();
            let [sends, recvs, send_bytes, recv_bytes] = out.traffic;
            assert_eq!(sends, recvs, "mode {mode}, backend {b}: sends != recvs");
            assert_eq!(
                send_bytes, recv_bytes,
                "mode {mode}, backend {b}: send bytes != recv bytes"
            );
            if matches!(
                mode,
                HaloExchangeMode::SendRecv | HaloExchangeMode::Overlapped
            ) {
                assert!(sends > 0, "mode {mode}, backend {b}: p2p check is vacuous");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
