//! Snapshot-stream epoch training: deterministic shuffling, cross-backend
//! bit-identity, and crash recovery from periodic checkpoints.
//!
//! The defining properties of the dataset subsystem:
//! * batch order is a pure function of `(seed, epoch)` — identical on
//!   every rank and every comm backend,
//! * epoch training over a stream is bit-identical across backends,
//! * a run resumed from a mid-run periodic checkpoint continues with
//!   exactly the batches the uninterrupted run would have taken, bit for
//!   bit — including mid-epoch checkpoints.

use cgnn::prelude::*;

const SEED: u64 = 31;
const LR: f64 = 1e-3;

fn mesh() -> BoxMesh {
    BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false)
}

/// A 4-snapshot Taylor-Green autoencoding stream, one sample per step.
fn dataset() -> Dataset {
    Dataset::tgv_autoencode(&mesh(), &TaylorGreen::new(0.01), &[0.0, 0.1, 0.2, 0.3])
}

fn builder(backend: Backend) -> SessionBuilder {
    Session::builder()
        .mesh(mesh())
        .partition(Strategy::Block)
        .ranks(4)
        .exchange(HaloExchangeMode::NeighborAllToAll)
        .dataset(dataset())
        .seed(SEED)
        .learning_rate(LR)
        .backend(backend)
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cgnn_ds_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Same seed ⇒ identical shuffled batch order on every rank and over every
/// backend, and the full per-batch loss trajectories agree bit for bit.
#[test]
fn same_seed_same_batch_order_across_backends() {
    let threads = builder(Backend::Threads).build().expect("session");
    let serial = builder(Backend::Serial).build().expect("session");

    // The schedule every rank derives is identical (pure function of the
    // seed), regardless of backend.
    let sched_threads = threads.run(|h| h.dataset_schedule().expect("schedule"));
    let sched_serial = serial.run(|h| h.dataset_schedule().expect("schedule"));
    assert!(
        sched_threads.iter().all(|s| *s == sched_threads[0]),
        "ranks must agree on the schedule"
    );
    assert_eq!(sched_threads, sched_serial);
    let s = sched_threads[0];
    assert_eq!(s.steps_per_epoch(), 4);
    assert_ne!(s.order(0), s.order(1), "epochs must reshuffle");

    // And the realized training trajectories are bit-identical: same
    // batches, same arithmetic, different transport.
    let a = threads.train_epochs(3);
    let b = serial.train_epochs(3);
    assert_eq!(a, b, "epoch training must be backend-invariant");
    for rank in 1..a.len() {
        assert_eq!(a[0], a[rank], "ranks must report identical epochs");
    }
    // Reports carry their position: 3 epochs x 4 steps.
    assert_eq!(a[0].len(), 3);
    for (e, r) in a[0].iter().enumerate() {
        assert_eq!(r.epoch, e as u64);
        assert_eq!(r.first_step, 4 * e as u64);
        assert_eq!(r.batch_losses.len(), 4);
    }
}

/// A different shuffle seed realizes a different batch order (the loss
/// trajectory differs step by step), while the sequential dataset visits
/// insertion order every epoch.
#[test]
fn shuffle_seed_controls_the_realized_order() {
    let base = builder(Backend::Threads).build().expect("session");
    let reseeded = builder(Backend::Threads)
        .dataset(dataset().shuffle_seed(777))
        .build()
        .expect("session");
    let a = base.train_epochs(1).remove(0);
    let b = reseeded.train_epochs(1).remove(0);
    assert_ne!(
        a[0].batch_losses, b[0].batch_losses,
        "different shuffle seeds must realize different batch orders"
    );

    let sequential = builder(Backend::Threads)
        .dataset(dataset().sequential())
        .build()
        .expect("session");
    let orders = sequential.run(|h| h.dataset_schedule().expect("schedule").order(5));
    assert_eq!(orders[0], vec![0, 1, 2, 3]);
}

/// The single-snapshot dataset path reproduces the classic
/// `autoencode_data` + `train` loop bit for bit: same features, same
/// arithmetic, new bookkeeping.
#[test]
fn single_snapshot_epochs_match_plain_training() {
    let s = builder(Backend::Threads)
        .dataset(Dataset::tgv_autoencode(&mesh(), &TaylorGreen::new(0.01), &[0.2]).sequential())
        .build()
        .expect("session");
    let epochs = s.train_epochs(6).remove(0);
    let flat: Vec<f64> = epochs.iter().flat_map(|r| r.batch_losses.clone()).collect();
    let classic = s
        .train_autoencode(&TaylorGreen::new(0.01), 0.2, 6)
        .remove(0);
    assert_eq!(flat, classic, "dataset path must not perturb arithmetic");
}

/// **Crash recovery** (the tentpole acceptance property): train with
/// every-3-steps checkpointing, "crash" after 2 of 3 epochs, restore the
/// *mid-epoch* step-6 checkpoint, and finish. The resumed trajectory must
/// be bit-identical to the uninterrupted 3-epoch run — Adam state, shuffle
/// order, and mid-epoch position all recovered exactly.
#[test]
fn resume_from_mid_run_periodic_checkpoint_is_bit_identical() {
    let dir = tmp_dir("resume");
    // Uninterrupted reference: 3 epochs x 4 steps = 12 optimizer steps.
    let reference = builder(Backend::Threads)
        .build()
        .expect("session")
        .train_epochs(3)
        .remove(0);
    let ref_flat: Vec<f64> = reference
        .iter()
        .flat_map(|r| r.batch_losses.clone())
        .collect();

    // Interrupted run: periodic checkpoints at steps 3, 6 (mid-epoch 1), 8.
    let s = builder(Backend::Threads)
        .checkpoint(CheckpointPolicy::every(3, &dir).retain(0))
        .build()
        .expect("session");
    let head = s.train_epochs(2).remove(0);
    let head_flat: Vec<f64> = head.iter().flat_map(|r| r.batch_losses.clone()).collect();
    assert_eq!(head_flat, ref_flat[..8], "head must match the reference");

    // Step 6 is mid-epoch (epoch 1 spans steps 4..8): the hardest resume.
    let ckpt = s.checkpoint_policy().expect("policy").path_for_step(6);
    assert!(ckpt.exists(), "periodic checkpoint at step 6 must exist");
    let resumed = s.restore(&ckpt).expect("restore").train_epochs(3).remove(0);
    assert_eq!(resumed[0].epoch, 1, "resume lands inside epoch 1");
    assert_eq!(resumed[0].first_step, 6);
    assert_eq!(resumed[0].batch_losses.len(), 2, "finish epoch 1 (2 steps)");
    let resumed_flat: Vec<f64> = resumed
        .iter()
        .flat_map(|r| r.batch_losses.clone())
        .collect();
    assert_eq!(
        resumed_flat,
        ref_flat[6..],
        "resumed trajectory must be bit-identical to the uninterrupted run"
    );

    // The restored session inherits the policy, so the resumed run kept
    // checkpointing on the same global schedule: steps 9 and 12 were
    // written during the tail, and `latest` now points at the end state.
    let latest = CheckpointPolicy::latest(&dir).expect("scan").expect("some");
    assert_eq!(CheckpointPolicy::step_of(&latest), Some(12));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Batched epochs resume exactly too, across backends: checkpoint under
/// threads mid-run, resume on the serial backend, identical trajectory.
#[test]
fn batched_resume_round_trips_across_backends() {
    let dir = tmp_dir("batched");
    let with_batches = |backend| {
        builder(backend)
            .dataset(dataset().batch_size(3)) // 4 samples -> steps of 3 + 1
            .checkpoint(CheckpointPolicy::every(1, &dir))
            .build()
            .expect("session")
    };
    // Uninterrupted reference, without a policy so the checkpoint dir only
    // sees the interrupted run below.
    let reference = builder(Backend::Threads)
        .dataset(dataset().batch_size(3))
        .build()
        .expect("session");
    let full: Vec<f64> = reference
        .train_epochs(4)
        .remove(0)
        .iter()
        .flat_map(|r| r.batch_losses.clone())
        .collect();
    // Interrupted run: checkpoint every step, stop after 2 of 8 steps, and
    // resume the tail on the other backend.
    let head = with_batches(Backend::Threads);
    head.run(|h| {
        let r = h.train_epochs(1);
        assert_eq!(r[0].batch_losses.len(), 2);
    });
    let ckpt = CheckpointPolicy::latest(&dir).expect("scan").expect("some");
    assert_eq!(CheckpointPolicy::step_of(&ckpt), Some(2));
    let resumed: Vec<f64> = with_batches(Backend::Serial)
        .restore(&ckpt)
        .expect("restore")
        .train_epochs(4)
        .remove(0)
        .iter()
        .flat_map(|r| r.batch_losses.clone())
        .collect();
    assert_eq!(resumed, full[2..], "cross-backend batched resume diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retention keeps only the most recent checkpoints.
#[test]
fn retention_prunes_old_checkpoints() {
    let dir = tmp_dir("retain");
    let s = builder(Backend::Threads)
        .checkpoint(CheckpointPolicy::every(2, &dir).retain(2))
        .build()
        .expect("session");
    s.train_epochs(2); // 8 steps -> checkpoints at 2, 4, 6, 8; keep 6, 8.
    let mut steps: Vec<u64> = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| CheckpointPolicy::step_of(&e.ok()?.path()))
        .collect();
    steps.sort_unstable();
    assert_eq!(steps, vec![6, 8], "retention must keep the 2 newest");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dataset/mesh mismatches are rejected at build time, not inside the
/// SPMD region.
#[test]
fn builder_rejects_mismatched_dataset() {
    let other = BoxMesh::tgv_cube(2, 2);
    let err = Session::builder()
        .mesh(mesh())
        .dataset(Dataset::tgv_autoencode(
            &other,
            &TaylorGreen::new(0.01),
            &[0.0],
        ))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        SessionError::DatasetMeshMismatch {
            dataset_nodes: other.num_global_nodes(),
            mesh_nodes: mesh().num_global_nodes(),
        }
    );
}
