//! Chaos suite: kill ranks mid-epoch with a scripted [`FaultPlan`] and pin
//! the recovery contract of `Session::train_epochs_elastic`.
//!
//! The defining invariant is **bit-identical recovery**: a run that loses
//! a rank, shrinks the world, and restores from its newest checkpoint
//! must produce exactly the loss trajectory of a *fresh* run restored
//! from that same checkpoint at the surviving world size. Recovery is
//! thereby testable as an equality, not a tolerance.
//!
//! Fault op indices are calibrated from a fault-free probe run (comm-op
//! counts are deterministic per backend), so the suite keeps working when
//! the model or exchange changes the per-step op profile. The seed for
//! derived plans comes from the `CGNN_FAULT_SEED` knob so CI can replay
//! any scenario.

mod common;

use std::path::PathBuf;
use std::time::Duration;

use cgnn::prelude::*;

const SEED: u64 = 17;
const LR: f64 = 1e-3;
const EPOCHS: u64 = 3;

fn mesh() -> BoxMesh {
    BoxMesh::new((4, 4, 2), 1, (1.0, 1.0, 1.0), false)
}

fn dataset() -> Dataset {
    Dataset::tgv_autoencode(&mesh(), &TaylorGreen::new(0.01), &[0.0, 0.1, 0.2, 0.3])
}

fn builder(backend: Backend, ranks: usize) -> SessionBuilder {
    Session::builder()
        .mesh(mesh())
        .partition(Strategy::Rcb)
        .ranks(ranks)
        .exchange(HaloExchangeMode::NeighborAllToAll)
        .dataset(dataset())
        .seed(SEED)
        .learning_rate(LR)
        .backend(backend)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgnn_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Comm ops as the `FaultInjector` counts them: barriers, collectives,
/// and point-to-point operations.
fn ops_of(s: &StatsSnapshot) -> u64 {
    s.barriers + s.all_gathers + s.all_to_alls + s.sends + s.recvs
}

/// Probe the deterministic comm-op profile of a fault-free `EPOCHS`-epoch
/// run at `ranks`: per rank, `(setup_ops, total_ops)` — exchange-plan
/// construction vs. the whole run. Kill indices are placed inside
/// `setup..total`.
fn probe_ops(backend: Backend, ranks: usize) -> Vec<(u64, u64)> {
    builder(backend, ranks)
        .build()
        .expect("probe session")
        .run(|h| {
            let setup = ops_of(&h.traffic());
            h.train_epochs(EPOCHS);
            (setup, ops_of(&h.traffic()))
        })
}

/// Kill one rank mid-epoch; the elastic loop must shrink 3 → 2, restore
/// from the newest checkpoint, and finish with a trajectory bit-identical
/// to a fresh 2-rank run restored from that same checkpoint.
fn kill_mid_epoch_recovers(backend: Backend, tag: &str) {
    let _guard = common::hang_guard(Duration::from_secs(300), "chaos recovery run");
    let dir = tmp_dir(tag);
    let victim = 1usize;
    let (setup, total) = probe_ops(backend, 3)[victim];
    // ~60% through the run's comm ops: mid-epoch, well past the first
    // periodic checkpoints but well short of completion.
    let at_op = setup + (total - setup) * 6 / 10;

    let session = builder(backend, 3)
        .checkpoint(CheckpointPolicy::every(2, &dir).retain(0))
        .fault_plan(FaultPlan::new().kill(0, victim, at_op))
        .build()
        .expect("session");
    let elastic = session
        .train_epochs_elastic(EPOCHS, &FaultTolerance::default().max_recoveries(2))
        .expect("elastic run must recover");

    assert_eq!(elastic.recoveries.len(), 1, "exactly one recovery");
    assert_eq!(elastic.final_ranks, 2);
    let event = &elastic.recoveries[0];
    assert_eq!(event.dead, vec![victim]);
    assert_eq!((event.world_before, event.world_after), (3, 2));
    let restored_from = event
        .restored_from
        .clone()
        .expect("checkpoints were written before the kill");

    // The pinned invariant: fresh restore at the surviving world size.
    let fresh = builder(backend, 2)
        .build()
        .expect("fresh session")
        .restore(&restored_from)
        .expect("restore")
        .train_epochs(EPOCHS);
    assert_eq!(
        elastic.reports, fresh,
        "post-recovery trajectory must be bit-identical to a fresh restore \
         at the surviving world size"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_epoch_recovers_threads() {
    kill_mid_epoch_recovers(Backend::Threads, "threads");
}

/// Checkpoint directory shared between the parent test process and its
/// re-exec'd child ranks: a fixed path (no pid — children must see the
/// checkpoints the parent's rank 0 wrote), wiped only by the parent
/// (children join mid-run with the checkpoint history intact).
fn proc_shared_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("cgnn_chaos_proc");
    if std::env::var_os("CGNN_RANK").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    std::fs::create_dir_all(&dir).expect("shared ckpt dir");
    dir
}

/// The cross-process chaos case: the victim is a real OS *process* (a
/// re-exec'd child rank) that dies mid-epoch. Its death must cross the
/// process boundary as the same typed [`RankFailure`] the in-process
/// backends produce, the liveness probe must unblock every surviving
/// rank (no hangs — the guard would catch one), and the elastic loop
/// must shrink 3 → 2 and recover. The recovered trajectory must be
/// bit-identical both to a fresh cross-process restore at the surviving
/// world size *and* to the identical scripted scenario on the serial
/// reference backend.
#[test]
fn kill_mid_epoch_recovers_proc() {
    let _guard = common::hang_guard(Duration::from_secs(300), "proc chaos recovery");
    // Child rank processes re-run exactly this test and join the spawned
    // worlds at the matching launch; they exit at their join point, so
    // everything below the last proc launch runs in the parent only.
    let _scope = cgnn::comm::reexec_scope([
        "kill_mid_epoch_recovers_proc",
        "--exact",
        "--test-threads=1",
        "--quiet",
    ]);
    let dir = proc_shared_dir();
    let victim = 2usize;
    // Comm-op profiles are backend-independent (the schedule is
    // bit-identical by the equivalence suite), so calibrate on the
    // in-process serial backend instead of paying a spawned probe run.
    let (setup, total) = probe_ops(Backend::Serial, 3)[victim];
    let at_op = setup + (total - setup) * 6 / 10;
    let plan = FaultPlan::new().kill(0, victim, at_op);

    let elastic = builder(Backend::Proc, 3)
        .checkpoint(CheckpointPolicy::every(2, &dir).retain(0))
        .fault_plan(plan.clone())
        .build()
        .expect("session")
        .train_epochs_elastic(EPOCHS, &FaultTolerance::default().max_recoveries(2))
        .expect("elastic run must recover from a killed child process");

    assert_eq!(elastic.recoveries.len(), 1, "exactly one recovery");
    assert_eq!(elastic.final_ranks, 2);
    let event = &elastic.recoveries[0];
    assert_eq!(event.dead, vec![victim], "the killed child is identified");
    assert_eq!((event.world_before, event.world_after), (3, 2));
    let restored_from = event
        .restored_from
        .clone()
        .expect("checkpoints were written before the kill");

    // Pin the checkpoint recovery restored from under a fixed name: the
    // shared directory keeps accumulating newer checkpoints (the recovered
    // world writes its own), so a child replaying the elastic loop for the
    // *next* launch would scan a different "latest" than the parent's
    // recovery saw. The pinned copy is written by the parent before that
    // launch and left alone by children (it already exists), so every
    // process restores the same bytes.
    let pinned = dir.join("recovery.ckpt");
    if std::env::var_os("CGNN_RANK").is_none() {
        std::fs::copy(&restored_from, &pinned).expect("pin recovery checkpoint");
    }

    // Pinned invariant, cross-process edition: bit-identical to a fresh
    // proc-backend restore at the surviving world size.
    let fresh = builder(Backend::Proc, 2)
        .build()
        .expect("fresh session")
        .restore(&pinned)
        .expect("restore")
        .train_epochs(EPOCHS);
    assert_eq!(
        elastic.reports, fresh,
        "post-recovery trajectory must be bit-identical to a fresh \
         cross-process restore at the surviving world size"
    );

    // Cross-backend: the same scripted scenario on the serial reference
    // recovers with bit-identical loss trajectories (proc returns rank 0
    // only; replicas are identical, so rank 0 vs rank 0 is the claim).
    let serial_dir = tmp_dir("proc_vs_serial");
    let serial = builder(Backend::Serial, 3)
        .checkpoint(CheckpointPolicy::every(2, &serial_dir).retain(0))
        .fault_plan(plan)
        .build()
        .expect("serial session")
        .train_epochs_elastic(EPOCHS, &FaultTolerance::default().max_recoveries(2))
        .expect("serial scenario must recover");
    assert_eq!(serial.recoveries[0].dead, vec![victim]);
    assert_eq!(
        elastic.reports[0], serial.reports[0],
        "proc and serial recoveries must produce bit-identical trajectories"
    );
    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_epoch_recovers_serial() {
    kill_mid_epoch_recovers(Backend::Serial, "serial");
}

/// Two failures in sequence: attempt 0 loses a rank (3 → 2), the rebuilt
/// world loses another (2 → 1), and the final single-rank world still
/// finishes — bit-identically to a fresh single-rank restore.
#[test]
fn double_failure_shrinks_twice_and_recovers() {
    let _guard = common::hang_guard(Duration::from_secs(300), "double-failure recovery");
    let backend = Backend::Threads;
    let dir = tmp_dir("double");
    let (s3, t3) = probe_ops(backend, 3)[2];
    let (s2, t2) = probe_ops(backend, 2)[0];
    let plan = FaultPlan::new()
        // Attempt 0: kill rank 2 halfway through the 3-rank run.
        .kill(0, 2, s3 + (t3 - s3) / 2)
        // Attempt 1: kill rank 0 of the rebuilt 2-rank world shortly
        // after it starts training again (half a step's worth of ops —
        // the restored run always has at least one full step left).
        .kill(1, 0, s2 + (t2 - s2) / 24);

    let session = builder(backend, 3)
        .checkpoint(CheckpointPolicy::every(2, &dir).retain(0))
        .fault_plan(plan)
        .build()
        .expect("session");
    let elastic = session
        .train_epochs_elastic(EPOCHS, &FaultTolerance::default().max_recoveries(2))
        .expect("elastic run must survive both failures");

    assert_eq!(elastic.recoveries.len(), 2, "two recoveries");
    assert_eq!(elastic.final_ranks, 1);
    let worlds: Vec<(usize, usize)> = elastic
        .recoveries
        .iter()
        .map(|r| (r.world_before, r.world_after))
        .collect();
    assert_eq!(worlds, vec![(3, 2), (2, 1)]);
    assert_eq!(elastic.recoveries[0].dead, vec![2]);
    assert_eq!(elastic.recoveries[1].dead, vec![0]);
    let last_restore = elastic.recoveries[1]
        .restored_from
        .clone()
        .expect("a valid checkpoint survived both failures");

    let fresh = builder(backend, 1)
        .build()
        .expect("fresh session")
        .restore(&last_restore)
        .expect("restore")
        .train_epochs(EPOCHS);
    assert_eq!(
        elastic.reports, fresh,
        "single-rank recovery trajectory must match a fresh restore"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The CI scenario: a kill derived from the `CGNN_FAULT_SEED` knob (so a
/// red run replays locally with one environment variable), executed
/// twice — seeded chaos must be *chaos that replays*: both elastic runs
/// recover identically, down to the loss trajectories.
#[test]
fn seeded_plan_replays_identically() {
    let _guard = common::hang_guard(Duration::from_secs(300), "seeded chaos replay");
    let backend = Backend::Serial;
    let seed = cgnn::core::config::CGNN_FAULT_SEED.usize_or(0) as u64;
    let profile = probe_ops(backend, 3);
    // An op window that is mid-run for *whichever* victim the seed picks.
    let lo = profile.iter().map(|&(s, _)| s).max().unwrap();
    let hi = profile.iter().map(|&(_, t)| t).min().unwrap();
    let plan = FaultPlan::seeded(seed, 3, lo..lo + (hi - lo) * 4 / 5);
    let victim = plan.faults()[0].rank;

    let run = |tag: &str| {
        let dir = tmp_dir(tag);
        let elastic = builder(backend, 3)
            .checkpoint(CheckpointPolicy::every(2, &dir).retain(0))
            .fault_plan(plan.clone())
            .build()
            .expect("session")
            .train_epochs_elastic(EPOCHS, &FaultTolerance::from_env())
            .expect("seeded elastic run must recover");
        std::fs::remove_dir_all(&dir).ok();
        elastic
    };
    let first = run("seeded_a");
    let second = run("seeded_b");

    assert_eq!(first.recoveries.len(), 1);
    assert_eq!(first.recoveries[0].dead, vec![victim]);
    assert_eq!(first.final_ranks, 2);
    assert_eq!(first.recoveries, second.recoveries, "recovery must replay");
    assert_eq!(
        first.reports, second.reports,
        "seeded chaos trajectories must be bit-identical across runs"
    );
}

/// Failure during checkpointing: the newest checkpoint file is truncated
/// (the writer died mid-write), so recovery must *skip* it and restore
/// from the previous intact checkpoint instead of crashing on the corpse.
#[test]
fn failure_during_checkpoint_falls_back_to_previous_valid() {
    let _guard = common::hang_guard(Duration::from_secs(300), "truncated-checkpoint recovery");
    let backend = Backend::Serial;
    let dir = tmp_dir("ckpt_corpse");

    // Produce a full checkpoint history, then truncate the newest file to
    // simulate a writer killed mid-checkpoint.
    builder(backend, 3)
        .checkpoint(CheckpointPolicy::every(2, &dir).retain(0))
        .build()
        .expect("seeding session")
        .train_epochs(EPOCHS);
    let report = CheckpointPolicy::latest_report(&dir).expect("scan");
    let newest = report.valid.expect("seeding run wrote checkpoints");
    let bytes = std::fs::read(&newest).expect("read newest");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate newest");

    // The elastic run itself never checkpoints (interval beyond the run),
    // so the pre-seeded history is exactly what recovery sees.
    let (setup, total) = probe_ops(backend, 3)[0];
    let session = builder(backend, 3)
        .checkpoint(CheckpointPolicy::every(1_000_000, &dir).retain(0))
        .fault_plan(FaultPlan::new().kill(0, 0, setup + (total - setup) / 2))
        .build()
        .expect("session");
    let elastic = session
        .train_epochs_elastic(EPOCHS, &FaultTolerance::default().max_recoveries(1))
        .expect("recovery must fall back past the truncated checkpoint");

    assert_eq!(elastic.recoveries.len(), 1);
    let restored_from = elastic.recoveries[0]
        .restored_from
        .clone()
        .expect("an intact checkpoint remains");
    assert_ne!(
        restored_from, newest,
        "recovery must not restore from the truncated file"
    );
    let scan = CheckpointPolicy::latest_report(&dir).expect("rescan");
    assert_eq!(scan.valid.as_ref(), Some(&restored_from));
    assert!(
        scan.rejected.iter().any(|c| c.path == newest),
        "the truncated file must be reported corrupt, got {:?}",
        scan.rejected
    );
    std::fs::remove_dir_all(&dir).ok();
}
