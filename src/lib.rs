//! `cgnn` — umbrella crate re-exporting the full workspace.
pub use cgnn_comm as comm;
pub use cgnn_core as core;
pub use cgnn_graph as graph;
pub use cgnn_mesh as mesh;
pub use cgnn_partition as partition;
pub use cgnn_perf as perf;
pub use cgnn_sem as sem;
pub use cgnn_tensor as tensor;
