//! `cgnn` — umbrella crate re-exporting the full workspace.
//!
//! Most programs only need [`prelude`]:
//!
//! ```
//! use cgnn::prelude::*;
//!
//! let session = Session::builder()
//!     .mesh(BoxMesh::tgv_cube(2, 2))
//!     .ranks(2)
//!     .partition(Strategy::Block)
//!     .exchange(HaloExchangeMode::NeighborAllToAll)
//!     .seed(42)
//!     .build()
//!     .expect("valid session");
//! let field = TaylorGreen::new(0.01);
//! let histories = session.train_autoencode(&field, 0.0, 2);
//! assert_eq!(histories[0], histories[1]);
//! ```

/// Doctest anchor for the training guide: every Rust block in
/// `docs/TRAINING.md` compiles and runs under `cargo test --doc`, so the
/// guide cannot drift from the API it documents. Hidden from rustdoc
/// output; the guide itself is the rendered artifact.
#[doc = include_str!("../docs/TRAINING.md")]
#[doc(hidden)]
pub mod _training_guide {}

pub use cgnn_comm as comm;
pub use cgnn_core as core;
pub use cgnn_graph as graph;
pub use cgnn_mesh as mesh;
pub use cgnn_partition as partition;
pub use cgnn_perf as perf;
pub use cgnn_sem as sem;
pub use cgnn_serve as serve;
pub use cgnn_session as session;
pub use cgnn_tensor as tensor;

/// The types almost every program touches: the session front-end, datasets
/// and epoch training, the mesh and field generators, partitioning, the
/// halo exchange strategies, the trainer, and the traffic counters.
pub mod prelude {
    pub use cgnn_comm::{
        Backend, Comm, CommBackend, FaultPlan, RankFailure, RecvRequest, SendRequest,
        StatsSnapshot, World,
    };
    pub use cgnn_core::{
        halo_exchange_apply, ConsistentGnn, EpochReport, EpochSchedule, ExchangeTraffic, GnnConfig,
        HaloContext, HaloExchange, HaloExchangeMode, RankData, Trainer,
    };
    pub use cgnn_graph::{build_distributed_graph, build_global_graph, LocalGraph};
    pub use cgnn_mesh::{BoxMesh, TaylorGreen};
    pub use cgnn_partition::{Partition, PartitionStrategy, Strategy};
    pub use cgnn_sem::{SnapshotPair, SnapshotStream};
    pub use cgnn_session::{
        CheckpointPolicy, Dataset, ElasticError, ElasticReport, FaultTolerance, LatestReport,
        RankHandle, RecoveryEvent, Session, SessionBuilder, SessionError, WorldFailure,
    };
    pub use cgnn_tensor::{Tape, Tensor};
}
