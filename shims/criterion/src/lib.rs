//! Offline stand-in for `criterion`: the group/bench_function/iter API
//! shape backed by a simple median-of-samples timer. `cargo bench` prints
//! per-benchmark timing (median ns/iter plus derived throughput); there is
//! no statistical analysis, plotting, or baseline comparison. Vendored
//! because the build environment has no reachable crates registry.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            name,
            sample_size: 30,
            throughput: None,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks of a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier (name, or name/parameter pair).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.into(), &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mut samples = b.samples.clone();
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let per_iter_ns = median.as_secs_f64() * 1e9;
        let rate = |count: u64| {
            let per_sec = count as f64 / median.as_secs_f64().max(1e-12);
            format!("{per_sec:.3e}")
        };
        match self.throughput {
            Some(Throughput::Elements(n)) => println!(
                "{}/{}: {per_iter_ns:.0} ns/iter ({} elem/s)",
                self.name,
                id.id,
                rate(n)
            ),
            Some(Throughput::Bytes(n)) => println!(
                "{}/{}: {per_iter_ns:.0} ns/iter ({} B/s)",
                self.name,
                id.id,
                rate(n)
            ),
            None => println!("{}/{}: {per_iter_ns:.0} ns/iter", self.name, id.id),
        }
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Cap on total measurement time per benchmark, so `cargo bench` with the
/// shim stays interactive even for slow bodies.
const TIME_BUDGET: Duration = Duration::from_millis(500);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + single-shot calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let budget = TIME_BUDGET.saturating_sub(once);
        let max_samples = if once.is_zero() {
            64
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).min(64) as usize
        };
        self.samples.push(once);
        for _ in 0..max_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Criterion's escape hatch for self-timed bodies: the closure runs
    /// `iters` iterations and returns the measured wall time; the sample
    /// recorded is the per-iteration average.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let once = f(1);
        self.samples.push(once);
        let budget = TIME_BUDGET.saturating_sub(once);
        let max_samples = if once.is_zero() {
            16
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).min(16) as usize
        };
        for _ in 0..max_samples {
            self.samples.push(f(1));
        }
    }
}

/// Expands to a function running each target against one shared
/// [`Criterion`] instance (configuration form accepted and ignored).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Expands to `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .throughput(Throughput::Elements(10))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
