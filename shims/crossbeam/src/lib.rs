//! Offline stand-in for `crossbeam`: an unbounded MPMC [`channel`] built on
//! `std::sync::{Mutex, Condvar}`. Senders and receivers are cloneable and
//! `Send + Sync`, matching the crossbeam API shape the workspace relies on
//! (senders stored in a shared `World`, receivers handed to rank threads).
//! Vendored because the build environment has no reachable crates registry.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42usize).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(1)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
