//! Offline stand-in for `serde_json`: renders the shimmed `serde` value
//! tree ([`Value`]) to JSON text and provides a [`json!`] macro covering
//! the literal/array/object subset this workspace uses. Vendored because
//! the build environment has no reachable crates registry.

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: serde::Serialize>(value: T) -> Value {
    value.serialize_value()
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            write_value,
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, val), ind, d| {
                write_json_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// JSON number formatting: finite floats render losslessly via Rust's
/// shortest-roundtrip formatter; non-finite values become null (matching
/// serde_json's lossy default).
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from JSON-like syntax with embedded expressions —
/// the standard `serde_json::json!` recursive muncher, restricted to the
/// forms this workspace uses (literals, arrays, objects with string-literal
/// keys, arbitrary serializable expressions in value position).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_internal_array!([] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::json_internal_object!([] () $($tt)*)) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Array muncher: accumulates `json!`-converted elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // Done.
    ([ $($elem:expr,)* ]) => { vec![$($elem,)*] };
    // Next element is a nested array.
    ([ $($elem:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elem,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    // Next element is a nested object.
    ([ $($elem:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elem,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    // `null` is not a Rust expression; match it before the expr arm.
    ([ $($elem:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elem,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    // Next element is an expression (consumes up to the next top-level comma).
    ([ $($elem:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($elem,)* $crate::json!($next), ] $($($rest)*)?)
    };
}

/// Object muncher: `[done fields] (pending key) rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Done.
    ([ $($out:expr,)* ] ()) => { vec![$($out,)*] };
    // Key arrives.
    ([ $($out:expr,)* ] () $key:literal : $($rest:tt)*) => {
        $crate::json_internal_object!([ $($out,)* ] ($key) $($rest)*)
    };
    // Value is a nested object.
    ([ $($out:expr,)* ] ($key:literal) { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($out,)* ($key.to_string(), $crate::json!({ $($inner)* })), ] () $($($rest)*)?
        )
    };
    // Value is a nested array.
    ([ $($out:expr,)* ] ($key:literal) [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($out,)* ($key.to_string(), $crate::json!([ $($inner)* ])), ] () $($($rest)*)?
        )
    };
    // `null` is not a Rust expression; match it before the expr arm.
    ([ $($out:expr,)* ] ($key:literal) null $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($out,)* ($key.to_string(), $crate::Value::Null), ] () $($($rest)*)?
        )
    };
    // Value is an expression.
    ([ $($out:expr,)* ] ($key:literal) $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($out,)* ($key.to_string(), $crate::json!($val)), ] () $($($rest)*)?
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "x",
            "n": 3usize,
            "xs": [1, 2, 3],
            "nested": {"min": 1.5, "max": 2},
            "flag": true,
            "nothing": null,
        });
        assert_eq!(v.get("name"), Some(&Value::String("x".into())));
        assert_eq!(v.get("n"), Some(&Value::Int(3)));
        assert_eq!(
            v.get("xs"),
            Some(&Value::Array(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        assert_eq!(
            v.get("nested").unwrap().get("min"),
            Some(&Value::Float(1.5))
        );
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Value::Null));
    }

    #[test]
    fn pretty_renders_stably() {
        let v = json!({"a": 1, "b": [true, null]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
        assert_eq!(to_string(&v).unwrap(), "{\"a\":1,\"b\":[true,null]}");
    }

    #[test]
    fn string_escaping() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }
}
