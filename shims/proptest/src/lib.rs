//! Offline stand-in for `proptest`: the `proptest!` macro, range/vec/bool
//! strategies, `prop_map`, and `prop_assume`/`prop_assert` — enough to run
//! this workspace's property tests. Differences from upstream: cases are
//! generated from a **fixed deterministic seed** per (test, case-index), so
//! runs are reproducible by construction, and there is **no shrinking** —
//! a failing case reports its inputs-by-seed instead. Vendored because the
//! build environment has no reachable crates registry.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; try another.
    Reject,
    /// `prop_assert!` failed; abort the test.
    Fail(String),
}

/// Deterministic per-case RNG: seeded from the test's identity and the
/// case index, so every run of the suite sees identical inputs.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_id: &str, case: u32) -> Self {
        // FNV-1a over the test identity, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Value-generation strategy (shim: direct generation, no value tree, no
/// shrinking).
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

pub mod bool {
    /// `proptest::bool::ANY` — uniform true/false.
    pub const ANY: Any = Any;

    pub struct Any;

    impl crate::Strategy for Any {
        type Value = bool;

        fn gen_value(&self, rng: &mut crate::TestRng) -> bool {
            use rand::RngCore as _;
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Fixed-length `Vec` strategy (the workspace only uses exact sizes).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Skip the current case (counts as a rejection, not a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Assert inside a `proptest!` body; failure aborts the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Deterministic property-test runner: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` drawing `cases` accepted inputs (rejections retried
/// up to 20x the case budget).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            // The immediately-called closure gives `prop_assert!`/
            // `prop_assume!` an early-return scope per generated case.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut accepted: u32 = 0;
                let mut attempt: u32 = 0;
                while accepted < cfg.cases {
                    if attempt >= cfg.cases.saturating_mul(20) {
                        panic!(
                            "proptest shim: {} rejected too many cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, cfg.cases
                        );
                    }
                    let mut rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    attempt += 1;
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {} (test {}, case seed index {})",
                                msg, stringify!($name), attempt - 1
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 1usize..10, y in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_filters(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_vec(v in crate::collection::vec(0.0f64..1.0, 8).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 8);
        }

        #[test]
        fn bool_any_hits_both(b in crate::bool::ANY) {
            // Deterministic stream: just ensure it generates a bool.
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        use rand::RngCore as _;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
