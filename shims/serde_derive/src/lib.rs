//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for plain structs with named fields, written
//! directly against `proc_macro` (no `syn`/`quote` — the build environment
//! has no reachable crates registry). The generated impls target the
//! value-tree traits of the shimmed `serde` crate.
//!
//! Supported input shape: non-generic `struct Name { field: Type, ... }`
//! with arbitrary attributes/doc comments and visibility modifiers.
//! Anything else (enums, tuple structs, generics) produces a compile error
//! naming this shim, so unsupported uses fail loudly rather than subtly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parse `struct Name { ... }`, skipping attributes and visibility.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]` pairs) and visibility / modifiers
    // until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, found {other:?}")),
                }
                break;
            }
            // `pub`, `pub(crate)` group, etc.
            _ => {}
        }
    }
    let name = name.ok_or("no `struct` keyword found")?;
    // Next significant token must be the brace group of named fields; a
    // `<` here means generics, which the shim does not support.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde_derive shim: generic struct `{name}` is not supported"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde_derive shim: tuple struct `{name}` is not supported"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("struct `{name}` has no body")),
        }
    };
    // Split the body on top-level commas (token-tree groups already nest
    // parens/brackets/braces; angle brackets need manual depth tracking).
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut current: Vec<TokenTree> = Vec::new();
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    fields.push(field_name(&current)?);
                    current.clear();
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        fields.push(field_name(&current)?);
    }
    Ok(StructShape { name, fields })
}

/// Extract the field identifier from one `attrs vis name : Type` run.
fn field_name(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr + group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // optional `(crate)` restriction group
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                // Must be followed by `:`.
                return match tokens.get(i + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => Ok(id.to_string()),
                    _ => Err(format!("field `{id}` not followed by `:`")),
                };
            }
            other => return Err(format!("unexpected token in field position: {other:?}")),
        }
    }
    Err("empty field declaration".to_string())
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut entries = String::new();
    for f in &shape.fields {
        entries.push_str(&format!(
            "(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize_value(\
                 value.get(\"{f}\")\
                     .ok_or_else(|| ::serde::missing_field(\"{name}\", \"{f}\"))?\
             )?,",
            name = shape.name,
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}
