//! Offline stand-in for the `rand` crate, pinned to the **0.8 API
//! generation** used by this workspace:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — deterministic
//!   and stable across platforms and builds, which the Eq. 2 consistency
//!   tests rely on),
//! * [`distributions::Uniform`] with the `Distribution::sample` interface,
//! * `Rng::gen_range(low..high)` for float and integer ranges.
//!
//! The build environment has no reachable crates registry, so this shim is
//! vendored in-workspace. It is **not** the upstream crate: only the API
//! surface the workspace exercises is implemented, but the streams it
//! produces are fixed — golden-value tests pin the sequence so seeded
//! initialization stays reproducible across runs.

/// Low-level RNG interface (rand 0.8 `RngCore` subset).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (rand 0.8 `SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range, matching the
    /// `rand 0.8` `gen_range(low..high)` signature.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform `f64` in `[0, 1)` (the only `gen::<T>()` instantiation the
    /// workspace needs).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convert the top 53 bits of a `u64` into a uniform `f64` in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Unlike upstream `StdRng` (which documents no stream stability), this
    /// shim's stream is frozen: `tests` in `cgnn-tensor` pin golden values
    /// so reproducibility regressions are caught at test time.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// rand 0.8 `Distribution` subset; `sample` accepts unsized RNGs so
    /// callers can pass `&mut dyn RngCore`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)` for `f64`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f64> {
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * super::unit_f64(rng)
        }
    }

    pub mod uniform {
        use super::super::{unit_f64, RngCore};
        use core::ops::Range;

        /// Range types accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range requires start < end");
                self.start + (self.end - self.start) * unit_f64(rng)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "gen_range requires start < end");
                self.start + (self.end - self.start) * unit_f64(rng) as f32
            }
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range requires start < end");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        // Multiply-shift rejection-free mapping; bias is
                        // negligible (span << 2^64) for every workspace use.
                        let r = rng.next_u64() as u128;
                        (self.start as i128 + ((r * span) >> 64) as i128) as $t
                    }
                }
            )*};
        }

        int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);
    }
}

// Re-export like rand 0.8's prelude-style flat paths.
pub use distributions::Distribution;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0usize..17);
            assert!(n < 17);
        }
    }
}
