//! Offline stand-in for `rayon`: the small adaptor surface this workspace
//! uses, executed with real data parallelism on `std::thread::scope`.
//!
//! Two families are implemented:
//!
//! * `into_par_iter().map(f).collect()` — items are split into contiguous
//!   chunks, one per worker, and results are reassembled in order, so
//!   output ordering matches rayon's.
//! * `par_chunks_mut(n)` / `.enumerate().for_each(f)` — the chunked +
//!   indexed slice adaptors the deterministic tensor kernels are built on:
//!   disjoint `&mut` chunks of one slice are processed concurrently, and
//!   the chunk *boundaries* are chosen by the caller (never by the worker
//!   count), which is what keeps chunk-local arithmetic bit-identical at
//!   every thread count.
//!
//! Worker count resolution (cached): `CGNN_NUM_THREADS`, then
//! `RAYON_NUM_THREADS`, then `std::thread::available_parallelism()` capped
//! by the thread-local *budget* ([`set_thread_budget`]) if one is armed —
//! an explicit environment pin always wins over the budget. Tests can pin
//! a count for one closure with [`with_num_threads`], which wins over
//! everything on the current thread.
//!
//! The budget is how multi-rank launchers stop in-process ranks from
//! oversubscribing the machine: each rank thread gets
//! `max(1, cores / world_size)` workers instead of all of them, so kernel
//! parallelism and rank parallelism compose instead of contending.
//!
//! Vendored because the build environment has no reachable crates registry;
//! only the adaptor surface the workspace exercises is implemented.

use std::cell::Cell;
use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Cached explicit worker-count pin from the environment, if any.
fn explicit_env_threads() -> Option<usize> {
    static EXPLICIT: OnceLock<Option<usize>> = OnceLock::new();
    *EXPLICIT.get_or_init(|| {
        for var in ["CGNN_NUM_THREADS", "RAYON_NUM_THREADS"] {
            if let Some(n) = std::env::var(var)
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
            {
                return Some(n.max(1));
            }
        }
        None
    })
}

/// Cached hardware parallelism.
fn available() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static THREAD_BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count used by every adaptor on this thread: the
/// [`with_num_threads`] override, else the explicit `CGNN_NUM_THREADS` /
/// `RAYON_NUM_THREADS` pin, else hardware parallelism capped by the
/// thread-local budget.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Some(n) = explicit_env_threads() {
        return n;
    }
    match THREAD_BUDGET.with(Cell::get) {
        Some(budget) => available().min(budget).max(1),
        None => available(),
    }
}

/// Arm (or clear, with `None`) this thread's worker-count budget,
/// returning the previous value so callers can restore it. The budget
/// caps the *default* worker count only; an explicit environment pin or
/// [`with_num_threads`] override still wins.
pub fn set_thread_budget(budget: Option<usize>) -> Option<usize> {
    THREAD_BUDGET.with(|cell| cell.replace(budget.map(|b| b.max(1))))
}

/// Run `f` with the worker count pinned to `n` on the current thread —
/// the hook the serial-vs-parallel bit-identity tests use to force both
/// execution paths inside one process regardless of the environment.
pub fn with_num_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    THREAD_OVERRIDE.with(|cell| {
        let prev = cell.replace(Some(n.max(1)));
        let out = f();
        cell.set(prev);
        out
    })
}

/// Conversion into a "parallel iterator" (shim: an eager item vector).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Eagerly materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// A mapped parallel iterator; `collect` runs the map across threads.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// Chunked fork-join map preserving input order.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut source = items;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    while !source.is_empty() {
        let rest = source.split_off(chunk.min(source.len()));
        chunks.push(std::mem::replace(&mut source, rest));
    }
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// Chunked mutable-slice adaptor (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into disjoint `&mut` chunks of `chunk_size` elements (the last
    /// chunk may be shorter). Chunk boundaries are a pure function of the
    /// arguments — worker count only affects which thread runs which chunk.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over disjoint mutable chunks of one slice.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index (chunk `i` starts at element
    /// `i * chunk_size` of the original slice).
    pub fn enumerate(self) -> ParEnumerateChunksMut<'a, T> {
        ParEnumerateChunksMut {
            chunks: self.chunks,
        }
    }

    /// Run `f` on every chunk, concurrently.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Indexed variant of [`ParChunksMut`].
pub struct ParEnumerateChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> ParEnumerateChunksMut<'_, T> {
    /// Run `f` on every `(chunk_index, chunk)`, concurrently. Workers take
    /// contiguous runs of chunks; because the chunks are disjoint writes,
    /// scheduling cannot influence the result.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync) {
        let n = self.chunks.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let per_worker = n.div_ceil(threads);
        let mut work: Vec<Vec<(usize, &mut [T])>> = Vec::new();
        let mut current = Vec::with_capacity(per_worker);
        for (i, chunk) in self.chunks.into_iter().enumerate() {
            current.push((i, chunk));
            if current.len() == per_worker {
                work.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            work.push(current);
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|batch| {
                    scope.spawn(move || {
                        for item in batch {
                            f(item);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("rayon-shim worker panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_num_threads;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn vec_collect_identity() {
        let v: Vec<u8> = vec![3, 1, 2].into_par_iter().collect();
        assert_eq!(v, vec![3, 1, 2]);
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u64; 103];
            with_num_threads(threads, || {
                data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 10 + k) as u64;
                    }
                });
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
        }
    }

    #[test]
    fn thread_budget_caps_default_but_not_overrides() {
        let prev = super::set_thread_budget(Some(1));
        // The budget caps the hardware default on this thread...
        if super::explicit_env_threads().is_none() {
            assert_eq!(super::current_num_threads(), 1);
        }
        // ...but an explicit per-closure override still wins.
        with_num_threads(3, || assert_eq!(super::current_num_threads(), 3));
        // Restoring the previous budget round-trips.
        assert_eq!(super::set_thread_budget(prev), Some(1));
        assert_eq!(super::set_thread_budget(None), prev);
    }

    #[test]
    fn with_num_threads_restores_previous() {
        let outer = super::current_num_threads();
        with_num_threads(7, || {
            assert_eq!(super::current_num_threads(), 7);
            with_num_threads(2, || assert_eq!(super::current_num_threads(), 2));
            assert_eq!(super::current_num_threads(), 7);
        });
        assert_eq!(super::current_num_threads(), outer);
    }
}
