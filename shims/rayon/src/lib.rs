//! Offline stand-in for `rayon`: the `into_par_iter().map(f).collect()`
//! shape the workspace uses, executed with real data parallelism on
//! `std::thread::scope`. Items are split into contiguous chunks, one per
//! available core, and results are reassembled in order, so output ordering
//! matches rayon's. Vendored because the build environment has no
//! reachable crates registry; only the adaptor surface the workspace
//! exercises is implemented.

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a "parallel iterator" (shim: an eager item vector).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Eagerly materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// A mapped parallel iterator; `collect` runs the map across threads.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// Chunked fork-join map preserving input order.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut source = items;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    while !source.is_empty() {
        let rest = source.split_off(chunk.min(source.len()));
        chunks.push(std::mem::replace(&mut source, rest));
    }
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn vec_collect_identity() {
        let v: Vec<u8> = vec![3, 1, 2].into_par_iter().collect();
        assert_eq!(v, vec![3, 1, 2]);
    }
}
