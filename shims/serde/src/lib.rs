//! Offline stand-in for `serde`: a value-tree serialization model exposing
//! the names this workspace uses (`Serialize`, `Deserialize`, derive
//! macros). Instead of upstream's visitor architecture, types convert to
//! and from a JSON-like [`Value`]; `serde_json` (also shimmed) renders that
//! tree. Vendored because the build environment has no reachable crates
//! registry; only the surface this workspace exercises is implemented.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like value tree — the interchange format of the shimmed serde
/// stack (plays the role of `serde_json::Value`, re-exported there).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order of the deriving struct).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) => Ok(*f as $t),
                    other => Err(Error(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
    )+};
}

ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Helper used by the derive macro expansion for missing-field errors.
pub fn missing_field(ty: &str, field: &str) -> Error {
    Error(format!("missing field `{field}` while deserializing {ty}"))
}
