#!/usr/bin/env bash
# Lychee-style (grep-based) intra-repo link check: every relative markdown
# link in README.md and docs/ must resolve to an existing file or
# directory. External (http/mailto) links and pure #anchors are skipped —
# this guards against renamed files and stale paths, offline.
set -euo pipefail

cd "$(dirname "$0")/.."
status=0

check_file() {
    local md="$1"
    local dir
    dir="$(dirname "$md")"
    # Pull out ](target) markdown link targets, one per line. `|| true`:
    # a file with zero links makes grep exit 1, which is not an error.
    { grep -oE '\]\([^)]+\)' "$md" 2>/dev/null || true; } | sed -E 's/^\]\(//; s/\)$//' |
        while IFS= read -r target; do
            case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
            esac
            # Strip any #fragment and surrounding whitespace.
            local path="${target%%#*}"
            path="$(echo "$path" | xargs)"
            [ -z "$path" ] && continue
            if [ ! -e "$dir/$path" ]; then
                echo "BROKEN: $md -> $target"
                # Subshell: flag through a marker file, not the variable.
                touch .doc_links_broken
            fi
        done
}

rm -f .doc_links_broken
for md in README.md docs/*.md; do
    [ -e "$md" ] && check_file "$md"
done

if [ -e .doc_links_broken ]; then
    rm -f .doc_links_broken
    echo "doc link check FAILED"
    exit 1
fi
echo "doc link check OK (README.md docs/*.md)"
