//! Process-grid layouts: how R ranks tile the element grid.
//!
//! NekRS's partitioner (per the paper's Table II discussion) switches from
//! "vertical rectangular chunks" at small rank counts to sub-cubes at larger
//! ones. We expose slab (1D), pencil (2D), and block (3D) layouts plus an
//! automatic chooser that minimizes the communicated surface area.

/// A 3D process grid `rx * ry * rz = R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    pub rx: usize,
    pub ry: usize,
    pub rz: usize,
}

impl Layout {
    pub fn new(rx: usize, ry: usize, rz: usize) -> Self {
        assert!(rx > 0 && ry > 0 && rz > 0, "layout dims must be positive");
        Layout { rx, ry, rz }
    }

    /// 1D slab decomposition along x.
    pub fn slab(r: usize) -> Self {
        Layout::new(r, 1, 1)
    }

    /// 2D pencil decomposition in x-y, as square as possible.
    pub fn pencil(r: usize) -> Self {
        let (a, b) = two_factor(r);
        Layout::new(a, b, 1)
    }

    /// 3D block decomposition, as cubic as possible (like
    /// `MPI_Dims_create`): factorization of `r` minimizing the sum of
    /// per-rank block surface areas for an `ex x ey x ez` element grid.
    pub fn block(r: usize, (ex, ey, ez): (usize, usize, usize)) -> Self {
        let mut best: Option<(f64, Layout)> = None;
        for rx in divisors(r) {
            for ry in divisors(r / rx) {
                let rz = r / rx / ry;
                // Per-rank block extents (fractional is fine for scoring).
                let bx = ex as f64 / rx as f64;
                let by = ey as f64 / ry as f64;
                let bz = ez as f64 / rz as f64;
                // Communicated faces per rank (ignore domain boundary).
                let surf = bx * by + by * bz + bx * bz;
                if best.is_none_or(|(s, _)| surf < s) {
                    best = Some((surf, Layout::new(rx, ry, rz)));
                }
            }
        }
        best.expect("r has at least the trivial factorization").1
    }

    pub fn num_ranks(&self) -> usize {
        self.rx * self.ry * self.rz
    }

    /// Rank id of grid cell `(cx, cy, cz)`.
    pub fn rank_of_cell(&self, (cx, cy, cz): (usize, usize, usize)) -> usize {
        debug_assert!(cx < self.rx && cy < self.ry && cz < self.rz);
        cx + self.rx * (cy + self.ry * cz)
    }

    /// Grid cell of rank `r`.
    pub fn cell_of_rank(&self, r: usize) -> (usize, usize, usize) {
        debug_assert!(r < self.num_ranks());
        (
            r % self.rx,
            (r / self.rx) % self.ry,
            r / (self.rx * self.ry),
        )
    }
}

/// Quasi-uniform split of `n` items into `parts` contiguous ranges; the
/// first `n % parts` ranges get one extra item. Returns range starts with a
/// final sentinel (`len == parts + 1`).
pub fn uniform_ranges(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut starts = Vec::with_capacity(parts + 1);
    let mut acc = 0;
    for i in 0..parts {
        starts.push(acc);
        acc += base + usize::from(i < extra);
    }
    starts.push(acc);
    debug_assert_eq!(acc, n);
    starts
}

/// Which part of a `uniform_ranges(n, parts)` split contains index `i`.
pub fn range_of(starts: &[usize], i: usize) -> usize {
    debug_assert!(i < *starts.last().expect("non-empty ranges"));
    // Binary search for the last start <= i.
    match starts.binary_search(&i) {
        Ok(k) => k.min(starts.len() - 2),
        Err(k) => k - 1,
    }
}

fn two_factor(r: usize) -> (usize, usize) {
    let mut a = (r as f64).sqrt() as usize;
    while a > 1 && !r.is_multiple_of(a) {
        a -= 1;
    }
    (a.max(1), r / a.max(1))
}

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_of_cube_is_cubic() {
        let l = Layout::block(64, (16, 16, 16));
        assert_eq!((l.rx, l.ry, l.rz), (4, 4, 4));
        let l = Layout::block(8, (16, 16, 16));
        assert_eq!((l.rx, l.ry, l.rz), (2, 2, 2));
    }

    #[test]
    fn block_layout_follows_anisotropy() {
        // A long thin domain should be cut along its long axis.
        let l = Layout::block(4, (64, 4, 4));
        assert_eq!((l.rx, l.ry, l.rz), (4, 1, 1));
    }

    #[test]
    fn layout_rank_cell_roundtrip() {
        let l = Layout::new(3, 4, 5);
        for r in 0..l.num_ranks() {
            assert_eq!(l.rank_of_cell(l.cell_of_rank(r)), r);
        }
    }

    #[test]
    fn uniform_ranges_cover_exactly() {
        for n in [1usize, 7, 16, 100] {
            for parts in [1usize, 2, 3, 7] {
                let s = uniform_ranges(n, parts);
                assert_eq!(s[0], 0);
                assert_eq!(*s.last().unwrap(), n);
                let sizes: Vec<usize> = s.windows(2).map(|w| w[1] - w[0]).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} parts={parts} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn range_of_finds_owner() {
        let s = uniform_ranges(10, 3); // [0,4,7,10]
        assert_eq!(range_of(&s, 0), 0);
        assert_eq!(range_of(&s, 3), 0);
        assert_eq!(range_of(&s, 4), 1);
        assert_eq!(range_of(&s, 9), 2);
    }

    #[test]
    fn pencil_is_two_dimensional() {
        let l = Layout::pencil(12);
        assert_eq!(l.rz, 1);
        assert_eq!(l.rx * l.ry, 12);
    }
}
