//! # cgnn-partition
//!
//! Element-based domain decomposition — the stand-in for the NekRS mesh
//! partitioner the paper links its distributed graphs to. Structured slab /
//! pencil / block layouts cover the paper's "vertical rectangular chunks to
//! sub-cubes" regimes (Table II), and recursive coordinate bisection handles
//! arbitrary rank counts.

pub mod layout;
pub mod partition;
pub mod rcb;
pub mod strategy;

pub use layout::Layout;
pub use partition::{Partition, Strategy};
pub use strategy::{BlockStrategy, PartitionStrategy, PencilStrategy, RcbStrategy, SlabStrategy};
