//! Element-to-rank assignment (the NekRS domain decomposition stand-in).

use cgnn_mesh::BoxMesh;

use crate::layout::{range_of, uniform_ranges, Layout};
use crate::rcb::rcb_partition;

/// How the element grid is decomposed onto ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// 1D slabs along x (NekRS's "vertical rectangular chunks" regime).
    Slab,
    /// 2D pencils in x-y.
    Pencil,
    /// 3D blocks (sub-cubes), surface-minimizing layout.
    Block,
    /// Recursive coordinate bisection on element centroids.
    Rcb,
}

/// A domain decomposition: every element is owned by exactly one rank.
#[derive(Debug, Clone)]
pub struct Partition {
    n_ranks: usize,
    owner: Vec<u32>,
    rank_elems: Vec<Vec<usize>>,
    /// For structured strategies, the element-index ranges per axis
    /// (`starts_x/y/z` with sentinel) and the layout. Enables the analytic
    /// Frontier-scale statistics path.
    structured: Option<(Layout, [Vec<usize>; 3])>,
}

impl Partition {
    /// Decompose `mesh` onto `n_ranks` ranks with the given strategy.
    pub fn new(mesh: &BoxMesh, n_ranks: usize, strategy: Strategy) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(
            mesh.num_elements() >= n_ranks,
            "cannot give {} ranks at least one of {} elements",
            n_ranks,
            mesh.num_elements()
        );
        let (ex, ey, ez) = mesh.elem_counts();
        let fits = |l: &Layout| l.rx <= ex && l.ry <= ey && l.rz <= ez;
        // Structured layouts that cannot tile the element grid degrade to the
        // next more-dimensional strategy (slab -> pencil -> block -> RCB),
        // mirroring how production partitioners switch regimes as rank
        // counts outgrow a single axis.
        match strategy {
            Strategy::Slab if fits(&Layout::slab(n_ranks)) => {
                Self::structured(mesh, Layout::slab(n_ranks))
            }
            Strategy::Slab => Self::new(mesh, n_ranks, Strategy::Pencil),
            Strategy::Pencil if fits(&Layout::pencil(n_ranks)) => {
                Self::structured(mesh, Layout::pencil(n_ranks))
            }
            Strategy::Pencil => Self::new(mesh, n_ranks, Strategy::Block),
            Strategy::Block if fits(&Layout::block(n_ranks, mesh.elem_counts())) => {
                Self::structured(mesh, Layout::block(n_ranks, mesh.elem_counts()))
            }
            Strategy::Block => Self::new(mesh, n_ranks, Strategy::Rcb),
            Strategy::Rcb => Self::from_owner(rcb_partition(mesh, n_ranks), n_ranks, None),
        }
    }

    /// Structured decomposition from an explicit process grid.
    pub fn structured(mesh: &BoxMesh, layout: Layout) -> Self {
        let (ex, ey, ez) = mesh.elem_counts();
        assert!(
            layout.rx <= ex && layout.ry <= ey && layout.rz <= ez,
            "layout {layout:?} does not fit element grid {:?}",
            (ex, ey, ez)
        );
        let sx = uniform_ranges(ex, layout.rx);
        let sy = uniform_ranges(ey, layout.ry);
        let sz = uniform_ranges(ez, layout.rz);
        let mut owner = vec![0u32; mesh.num_elements()];
        for e in 0..mesh.num_elements() {
            let (ei, ej, ek) = mesh.elem_coords(e);
            let cell = (range_of(&sx, ei), range_of(&sy, ej), range_of(&sz, ek));
            owner[e] = layout.rank_of_cell(cell) as u32;
        }
        Self::from_owner(owner, layout.num_ranks(), Some((layout, [sx, sy, sz])))
    }

    /// Build a partition from an explicit element-to-rank owner map — the
    /// constructor custom [`PartitionStrategy`](crate::PartitionStrategy)
    /// implementations outside this crate use once they have computed an
    /// assignment.
    ///
    /// # Panics
    ///
    /// If any rank in `0..n_ranks` receives no elements, or any owner
    /// index is out of range: both indicate a broken strategy.
    pub fn from_owner_map(owner: Vec<u32>, n_ranks: usize) -> Self {
        assert!(
            owner.iter().all(|&r| (r as usize) < n_ranks),
            "owner map names a rank outside 0..{n_ranks}"
        );
        Self::from_owner(owner, n_ranks, None)
    }

    fn from_owner(
        owner: Vec<u32>,
        n_ranks: usize,
        structured: Option<(Layout, [Vec<usize>; 3])>,
    ) -> Self {
        let mut rank_elems: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
        for (e, &r) in owner.iter().enumerate() {
            rank_elems[r as usize].push(e);
        }
        for (r, elems) in rank_elems.iter().enumerate() {
            assert!(!elems.is_empty(), "rank {r} received no elements");
        }
        Partition {
            n_ranks,
            owner,
            rank_elems,
            structured,
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Owning rank of element `e`.
    pub fn owner_of(&self, e: usize) -> usize {
        self.owner[e] as usize
    }

    /// Elements owned by rank `r`, ascending.
    pub fn elements_of(&self, r: usize) -> &[usize] {
        &self.rank_elems[r]
    }

    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// For structured partitions: the layout and per-axis element ranges.
    pub fn structured_info(&self) -> Option<(&Layout, &[Vec<usize>; 3])> {
        self.structured.as_ref().map(|(l, s)| (l, s))
    }

    /// Load imbalance: max over ranks of (local elements / mean).
    pub fn imbalance(&self) -> f64 {
        let mean = self.owner.len() as f64 / self.n_ranks as f64;
        self.rank_elems
            .iter()
            .map(|e| e.len() as f64 / mean)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(mesh: &BoxMesh, part: &Partition) {
        // Every element owned exactly once and listed exactly once.
        let mut seen = vec![false; mesh.num_elements()];
        for r in 0..part.n_ranks() {
            for &e in part.elements_of(r) {
                assert!(!seen[e], "element {e} owned twice");
                seen[e] = true;
                assert_eq!(part.owner_of(e), r);
            }
        }
        assert!(seen.iter().all(|&s| s), "some element unowned");
    }

    #[test]
    fn all_strategies_cover_all_elements() {
        let mesh = BoxMesh::unit_cube(4, 2);
        for strategy in [
            Strategy::Slab,
            Strategy::Pencil,
            Strategy::Block,
            Strategy::Rcb,
        ] {
            for r in [1, 2, 4, 8] {
                let part = Partition::new(&mesh, r, strategy);
                check_invariants(&mesh, &part);
            }
        }
    }

    #[test]
    fn block_partition_of_cube_is_balanced() {
        let mesh = BoxMesh::unit_cube(8, 1);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        assert!((part.imbalance() - 1.0).abs() < 1e-12);
        for r in 0..8 {
            assert_eq!(part.elements_of(r).len(), 64);
        }
    }

    #[test]
    fn slab_partition_groups_by_x() {
        let mesh = BoxMesh::unit_cube(4, 1);
        let part = Partition::new(&mesh, 4, Strategy::Slab);
        for e in 0..mesh.num_elements() {
            let (ei, _, _) = mesh.elem_coords(e);
            assert_eq!(part.owner_of(e), ei);
        }
    }

    #[test]
    fn rcb_is_balanced_for_awkward_rank_counts() {
        let mesh = BoxMesh::unit_cube(6, 1); // 216 elements
        for r in [3, 5, 7, 9] {
            let part = Partition::new(&mesh, r, Strategy::Rcb);
            check_invariants(&mesh, &part);
            assert!(
                part.imbalance() < 1.35,
                "r={r} imbalance={}",
                part.imbalance()
            );
        }
    }

    #[test]
    fn single_rank_partition_owns_everything() {
        let mesh = BoxMesh::unit_cube(2, 3);
        let part = Partition::new(&mesh, 1, Strategy::Block);
        assert_eq!(part.elements_of(0).len(), mesh.num_elements());
    }

    #[test]
    #[should_panic(expected = "cannot give")]
    fn too_many_ranks_panics() {
        let mesh = BoxMesh::unit_cube(2, 1);
        let _ = Partition::new(&mesh, 9, Strategy::Rcb);
    }
}
