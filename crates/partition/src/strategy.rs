//! Object-safe partition strategies, mirroring how halo exchange is an
//! object-safe `HaloExchange` trait in `cgnn-core`.
//!
//! [`Partition::new`] with the [`Strategy`] enum remains the concrete
//! front door; this module lifts it behind `Arc<dyn PartitionStrategy>`
//! so that *re-partitioning is a first-class, swappable operation*: the
//! session stores the strategy it was built with and replays it for any
//! world size — which is exactly what elastic recovery needs when a rank
//! dies and the mesh must be decomposed again for the survivors. Custom
//! partitioners (a METIS-like multilevel scheme, a workload-aware
//! balancer) implement the trait and plug in without touching the enum.
//!
//! The in-tree impls are pure delegations to [`Partition::new`], so the
//! trait refactor is behavior-preserving by construction — pinned by the
//! `partition_strategy_props` property suite, which cross-checks trait
//! and enum paths element by element.

use std::sync::Arc;

use cgnn_mesh::BoxMesh;

use crate::partition::{Partition, Strategy};

/// An object-safe domain-decomposition strategy: a named, reusable rule
/// for assigning every mesh element to exactly one of `n_ranks` owners.
///
/// Implementations must be deterministic — the same `(mesh, n_ranks)`
/// must produce the same owner map on every call, on every rank —
/// because all ranks of an SPMD world re-derive the partition locally
/// and communication schedules are built from it.
pub trait PartitionStrategy: Send + Sync + std::fmt::Debug {
    /// Display label for diagnostics and reports.
    fn label(&self) -> &'static str;

    /// Decompose `mesh` onto `n_ranks` ranks.
    ///
    /// # Panics
    ///
    /// Implementations inherit [`Partition::new`]'s contract: zero ranks
    /// or more ranks than elements is a configuration error that fails
    /// loudly rather than producing empty ranks.
    fn partition(&self, mesh: &BoxMesh, n_ranks: usize) -> Partition;
}

/// Recursive coordinate bisection on element centroids — the strategy of
/// choice for arbitrary (including post-failure) rank counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcbStrategy;

/// 1D slabs along x, degrading to pencils when the axis is outgrown.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlabStrategy;

/// 2D x-y pencils, degrading to blocks when the plane is outgrown.
#[derive(Debug, Clone, Copy, Default)]
pub struct PencilStrategy;

/// 3D surface-minimizing blocks, degrading to RCB for awkward counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockStrategy;

impl PartitionStrategy for RcbStrategy {
    fn label(&self) -> &'static str {
        "rcb"
    }

    fn partition(&self, mesh: &BoxMesh, n_ranks: usize) -> Partition {
        Partition::new(mesh, n_ranks, Strategy::Rcb)
    }
}

impl PartitionStrategy for SlabStrategy {
    fn label(&self) -> &'static str {
        "slab"
    }

    fn partition(&self, mesh: &BoxMesh, n_ranks: usize) -> Partition {
        Partition::new(mesh, n_ranks, Strategy::Slab)
    }
}

impl PartitionStrategy for PencilStrategy {
    fn label(&self) -> &'static str {
        "pencil"
    }

    fn partition(&self, mesh: &BoxMesh, n_ranks: usize) -> Partition {
        Partition::new(mesh, n_ranks, Strategy::Pencil)
    }
}

impl PartitionStrategy for BlockStrategy {
    fn label(&self) -> &'static str {
        "block"
    }

    fn partition(&self, mesh: &BoxMesh, n_ranks: usize) -> Partition {
        Partition::new(mesh, n_ranks, Strategy::Block)
    }
}

impl Strategy {
    /// This enum variant as a shareable trait object — the bridge from
    /// the concrete front door to `Arc<dyn PartitionStrategy>` consumers
    /// (the session builder, the recovery loop).
    pub fn object(self) -> Arc<dyn PartitionStrategy> {
        match self {
            Strategy::Slab => Arc::new(SlabStrategy),
            Strategy::Pencil => Arc::new(PencilStrategy),
            Strategy::Block => Arc::new(BlockStrategy),
            Strategy::Rcb => Arc::new(RcbStrategy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_delegate_to_the_enum_path() {
        let mesh = BoxMesh::unit_cube(4, 2);
        for strategy in [
            Strategy::Slab,
            Strategy::Pencil,
            Strategy::Block,
            Strategy::Rcb,
        ] {
            let via_enum = Partition::new(&mesh, 4, strategy);
            let via_trait = strategy.object().partition(&mesh, 4);
            assert_eq!(
                via_enum.owners(),
                via_trait.owners(),
                "{strategy:?}: trait object must preserve the enum behavior"
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Strategy::Slab.object().label(), "slab");
        assert_eq!(Strategy::Pencil.object().label(), "pencil");
        assert_eq!(Strategy::Block.object().label(), "block");
        assert_eq!(Strategy::Rcb.object().label(), "rcb");
    }

    #[test]
    fn strategies_are_deterministic_across_calls() {
        let mesh = BoxMesh::unit_cube(5, 1);
        let s: Arc<dyn PartitionStrategy> = Arc::new(RcbStrategy);
        assert_eq!(
            s.partition(&mesh, 7).owners(),
            s.partition(&mesh, 7).owners()
        );
    }
}
