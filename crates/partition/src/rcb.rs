//! Recursive coordinate bisection (RCB) on element centroids.
//!
//! RCB handles rank counts that are not friendly factorizations of the
//! element grid, at the cost of less regular sub-domain shapes. It mirrors
//! the geometric partitioners shipped with spectral-element solvers.

use cgnn_mesh::BoxMesh;

/// Partition `mesh` elements into `n_ranks` parts by recursive coordinate
/// bisection. Returns the element-to-rank owner map.
pub fn rcb_partition(mesh: &BoxMesh, n_ranks: usize) -> Vec<u32> {
    let centroids: Vec<[f64; 3]> = (0..mesh.num_elements())
        .map(|e| {
            let (ei, ej, ek) = mesh.elem_coords(e);
            // Element-grid coordinates are enough; RCB only compares.
            [ei as f64, ej as f64, ek as f64]
        })
        .collect();
    let mut owner = vec![0u32; centroids.len()];
    let mut ids: Vec<usize> = (0..centroids.len()).collect();
    bisect(&centroids, &mut ids, 0, n_ranks, &mut owner);
    owner
}

/// Recursively split `ids` into `parts` groups, assigning ranks starting at
/// `rank0`. Splits are proportional (`floor(parts/2) : ceil(parts/2)`) so
/// odd rank counts stay balanced.
fn bisect(
    centroids: &[[f64; 3]],
    ids: &mut [usize],
    rank0: usize,
    parts: usize,
    owner: &mut [u32],
) {
    if parts == 1 {
        for &e in ids.iter() {
            owner[e] = rank0 as u32;
        }
        return;
    }
    // Longest extent axis of the current id set.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &e in ids.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(centroids[e][d]);
            hi[d] = hi[d].max(centroids[e][d]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .expect("finite extents")
        })
        .expect("three axes");

    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    // Weighted split point: left gets left_parts/parts of the elements.
    let split = ids.len() * left_parts / parts;
    // Tie-break on the other axes, then element id for determinism.
    ids.select_nth_unstable_by(split.max(1) - 1, |&a, &b| {
        let ca = centroids[a];
        let cb = centroids[b];
        ca[axis]
            .partial_cmp(&cb[axis])
            .expect("finite centroid")
            .then_with(|| a.cmp(&b))
    });
    // select_nth puts the k-th element in place with smaller elements before
    // it; we want exactly `split` elements on the left.
    let (left, right) = ids.split_at_mut(split);
    bisect(centroids, left, rank0, left_parts, owner);
    bisect(centroids, right, rank0 + left_parts, right_parts, owner);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcb_part_sizes_are_proportional() {
        let mesh = BoxMesh::unit_cube(4, 1); // 64 elements
        for r in [2usize, 3, 4, 5, 8, 16] {
            let owner = rcb_partition(&mesh, r);
            let mut counts = vec![0usize; r];
            for &o in &owner {
                counts[o as usize] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(min > 0, "r={r}: empty part");
            assert!(max - min <= (64 / r).max(1), "r={r} counts={counts:?}");
        }
    }

    #[test]
    fn rcb_two_parts_split_longest_axis() {
        let mesh = BoxMesh::new((8, 2, 2), 1, (8.0, 1.0, 1.0), false);
        let owner = rcb_partition(&mesh, 2);
        for e in 0..mesh.num_elements() {
            let (ei, _, _) = mesh.elem_coords(e);
            let expect = usize::from(ei >= 4);
            assert_eq!(owner[e] as usize, expect, "element {e}");
        }
    }

    #[test]
    fn rcb_is_deterministic() {
        let mesh = BoxMesh::unit_cube(3, 2);
        let a = rcb_partition(&mesh, 5);
        let b = rcb_partition(&mesh, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn rcb_parts_are_spatially_contiguous_boxes_for_powers_of_two() {
        // For a cube split into 8, RCB should recover the octant structure.
        let mesh = BoxMesh::unit_cube(4, 1);
        let owner = rcb_partition(&mesh, 8);
        // Each octant (2x2x2 block of elements) must be single-owner.
        for ok in 0..2 {
            for oj in 0..2 {
                for oi in 0..2 {
                    let mut owners = std::collections::HashSet::new();
                    for dk in 0..2 {
                        for dj in 0..2 {
                            for di in 0..2 {
                                let e = mesh.elem_id((oi * 2 + di, oj * 2 + dj, ok * 2 + dk));
                                owners.insert(owner[e]);
                            }
                        }
                    }
                    assert_eq!(
                        owners.len(),
                        1,
                        "octant ({oi},{oj},{ok}) split across ranks"
                    );
                }
            }
        }
    }
}
