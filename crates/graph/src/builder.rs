//! Distributed mesh-based graph generation (paper Sec. II-A).
//!
//! For every rank, the builder instantiates graph nodes from the GLL
//! quadrature points of the rank's owned elements, collapses local
//! coincident nodes via global ids, generates nearest-neighbour lattice
//! edges, computes the `1/d` consistency weights, and derives the halo
//! exchange plan from coincident global ids shared with other ranks.

use std::collections::BTreeMap;
use std::sync::Arc;

use cgnn_mesh::BoxMesh;
use cgnn_partition::Partition;
use rayon::prelude::*;

use crate::local_graph::{split_interior_boundary, HaloPlan, LocalGraph};

/// Build the reduced distributed graph for every rank of `partition`.
///
/// The returned vector is indexed by rank. Building all ranks at once (as
/// opposed to SPMD-style per-rank construction) mirrors the NekRS-GNN
/// plugin, which derives every rank's connectivity from the same partitioned
/// mesh object; it also lets ranks share the global coincidence map.
pub fn build_distributed_graph(mesh: &BoxMesh, partition: &Partition) -> Vec<LocalGraph> {
    let ranks_of_gid = RanksOfGid::new(mesh, partition);
    (0..partition.n_ranks())
        .into_par_iter()
        .map(|rank| build_rank_graph(mesh, partition, rank, &ranks_of_gid))
        .collect()
}

/// Build the un-partitioned `R = 1` graph (paper Fig. 3a, after local
/// coincident-node collapse).
pub fn build_global_graph(mesh: &BoxMesh) -> LocalGraph {
    let partition = Partition::new(mesh, 1, cgnn_partition::Strategy::Block);
    let ranks = RanksOfGid::new(mesh, &partition);
    build_rank_graph(mesh, &partition, 0, &ranks)
}

/// Lazily answerable query: which ranks own a coincident copy of a node /
/// an edge. Derived from element ownership; O(#elements containing node).
struct RanksOfGid<'a> {
    mesh: &'a BoxMesh,
    partition: &'a Partition,
}

impl<'a> RanksOfGid<'a> {
    fn new(mesh: &'a BoxMesh, partition: &'a Partition) -> Self {
        RanksOfGid { mesh, partition }
    }

    /// Distinct ranks owning at least one element containing `gid`,
    /// ascending. At most 8 elements touch a node, so this stays on the
    /// stack conceptually (tiny Vec in practice).
    fn node_ranks(&self, gid: u64) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .mesh
            .elements_of_node(gid)
            .into_iter()
            .map(|e| self.partition.owner_of(e))
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Distinct ranks owning an element that contains the (lattice) edge
    /// `(ga, gb)` — i.e. an element containing both endpoints.
    fn edge_ranks(&self, ga: u64, gb: u64) -> Vec<usize> {
        let ea = self.mesh.elements_of_node(ga);
        let eb = self.mesh.elements_of_node(gb);
        let mut ranks: Vec<usize> = ea
            .iter()
            .filter(|e| eb.contains(e))
            .map(|&e| self.partition.owner_of(e))
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }
}

fn build_rank_graph(
    mesh: &BoxMesh,
    partition: &Partition,
    rank: usize,
    ranks_of: &RanksOfGid<'_>,
) -> LocalGraph {
    let elems = partition.elements_of(rank);
    let locals: Vec<(usize, usize, usize)> = mesh.local_nodes().collect();
    let links = mesh.lattice_links();

    // ---- Local coincident node collapse: unique sorted gids. ----
    let mut gids: Vec<u64> = Vec::with_capacity(elems.len() * locals.len());
    for &e in elems {
        for &local in &locals {
            gids.push(mesh.elem_node_gid(e, local));
        }
    }
    gids.sort_unstable();
    gids.dedup();
    let lid_of = |gid: u64| -> usize { gids.binary_search(&gid).expect("gid must be local") };

    let pos: Vec<[f64; 3]> = gids.iter().map(|&g| mesh.node_pos(g)).collect();

    // ---- Edge generation + deduplication. ----
    // Key: (min_gid, max_gid); value: displacement min -> max measured
    // inside the generating element. Coincident copies from different
    // elements produce identical displacements (GLL lattice symmetry), so
    // keeping the first is exact. A BTreeMap keeps the dedup order-free:
    // iteration comes out key-sorted by construction, with no
    // per-instance hash seed anywhere near the edge list.
    let mut edge_map: BTreeMap<(u64, u64), [f64; 3]> = BTreeMap::new();
    for &e in elems {
        for &(la, lb) in &links {
            let (na, nb) = (locals[la], locals[lb]);
            let (ga, gb) = (mesh.elem_node_gid(e, na), mesh.elem_node_gid(e, nb));
            debug_assert_ne!(ga, gb, "degenerate lattice link");
            let pa = mesh.elem_node_pos(e, na);
            let pb = mesh.elem_node_pos(e, nb);
            let (key, disp) = if ga < gb {
                ((ga, gb), [pb[0] - pa[0], pb[1] - pa[1], pb[2] - pa[2]])
            } else {
                ((gb, ga), [pa[0] - pb[0], pa[1] - pb[1], pa[2] - pb[2]])
            };
            edge_map.entry(key).or_insert(disp);
        }
    }
    // BTreeMap iteration is already ascending in (min_gid, max_gid).
    let undirected: Vec<((u64, u64), [f64; 3])> = edge_map.into_iter().collect();

    // ---- Directed edges + 1/d_ij weights. ----
    let n_dir = undirected.len() * 2;
    let mut edge_src = Vec::with_capacity(n_dir);
    let mut edge_dst = Vec::with_capacity(n_dir);
    let mut edge_disp = Vec::with_capacity(n_dir);
    let mut edge_inv_degree = Vec::with_capacity(n_dir);
    for &((ga, gb), d) in &undirected {
        let inv = 1.0 / ranks_of.edge_ranks(ga, gb).len() as f64;
        let (la, lb) = (lid_of(ga), lid_of(gb));
        edge_src.push(la);
        edge_dst.push(lb);
        edge_disp.push(d);
        edge_inv_degree.push(inv);
        edge_src.push(lb);
        edge_dst.push(la);
        edge_disp.push([-d[0], -d[1], -d[2]]);
        edge_inv_degree.push(inv);
    }

    // ---- 1/d_i node weights + halo plan. ----
    let mut node_inv_degree = Vec::with_capacity(gids.len());
    let mut shared_per_rank: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (lid, &gid) in gids.iter().enumerate() {
        let ranks = ranks_of.node_ranks(gid);
        debug_assert!(
            ranks.contains(&rank),
            "rank {rank} holds gid {gid} but is not among its owners"
        );
        node_inv_degree.push(1.0 / ranks.len() as f64);
        for &s in &ranks {
            if s != rank {
                // gids are iterated ascending, so per-rank lists come out
                // sorted by gid automatically.
                shared_per_rank.entry(s).or_default().push(lid);
            }
        }
    }
    // BTreeMap keys iterate ascending — neighbor order is sorted for free.
    let neighbors: Vec<usize> = shared_per_rank.keys().copied().collect();
    let send_ids: Vec<Vec<usize>> = neighbors
        .iter()
        .map(|s| shared_per_rank.remove(s).expect("key present"))
        .collect();

    let (interior_rows, boundary_rows) = split_interior_boundary(gids.len(), &send_ids);
    let g = LocalGraph {
        rank,
        n_ranks: partition.n_ranks(),
        gids,
        pos,
        edge_src: Arc::new(edge_src),
        edge_dst: Arc::new(edge_dst),
        edge_disp,
        edge_inv_degree: Arc::new(edge_inv_degree),
        node_inv_degree: Arc::new(node_inv_degree),
        interior_rows: Arc::new(interior_rows),
        boundary_rows: Arc::new(boundary_rows),
        halo: HaloPlan {
            neighbors,
            send_ids,
        },
    };
    debug_assert!({
        g.validate();
        true
    });
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_partition::Strategy;
    use std::collections::HashMap;

    /// FNV-1a over one u64.
    fn fnv(h: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Order-sensitive fingerprint of every field of a [`LocalGraph`].
    fn graph_fingerprint(g: &LocalGraph) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv(&mut h, g.rank as u64);
        fnv(&mut h, g.n_ranks as u64);
        for &x in &g.gids {
            fnv(&mut h, x);
        }
        for p in &g.pos {
            for &c in p {
                fnv(&mut h, c.to_bits());
            }
        }
        for &x in g.edge_src.iter() {
            fnv(&mut h, x as u64);
        }
        for &x in g.edge_dst.iter() {
            fnv(&mut h, x as u64);
        }
        for d in &g.edge_disp {
            for &c in d {
                fnv(&mut h, c.to_bits());
            }
        }
        for &x in g.edge_inv_degree.iter() {
            fnv(&mut h, x.to_bits());
        }
        for &x in g.node_inv_degree.iter() {
            fnv(&mut h, x.to_bits());
        }
        for &x in g.interior_rows.iter() {
            fnv(&mut h, x as u64);
        }
        for &x in g.boundary_rows.iter() {
            fnv(&mut h, x as u64);
        }
        for &n in &g.halo.neighbors {
            fnv(&mut h, n as u64);
        }
        for ids in &g.halo.send_ids {
            fnv(&mut h, ids.len() as u64);
            for &x in ids {
                fnv(&mut h, x as u64);
            }
        }
        h
    }

    #[test]
    fn construction_fingerprints_are_frozen() {
        // Golden fingerprints captured from the HashMap-based builder
        // immediately before the BTreeMap refactor: asserting them pins
        // field-identical graph construction across container changes.
        let mesh = BoxMesh::new((3, 3, 3), 2, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Pencil);
        let fp: Vec<u64> = build_distributed_graph(&mesh, &part)
            .iter()
            .map(graph_fingerprint)
            .collect();
        assert_eq!(
            fp,
            [
                0xe1a6_5089_88b4_24a2,
                0x9cbe_1032_8ee7_ea22,
                0x85e1_3f23_54b7_e5bb,
                0xbe94_4522_c1a0_510f,
            ]
        );

        let mesh = BoxMesh::new((4, 2, 2), 3, (2.0, 1.0, 1.0), true);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let fp2: Vec<u64> = build_distributed_graph(&mesh, &part)
            .iter()
            .map(graph_fingerprint)
            .collect();
        assert_eq!(fp2, [0x6e63_5c88_c432_8081, 0x6d0b_49be_7f44_be0e]);
    }

    #[test]
    fn single_element_graph_matches_paper_fig2() {
        for (p, nodes, directed) in [(1usize, 8, 24), (3, 64, 288), (5, 216, 1080)] {
            let mesh = BoxMesh::new((1, 1, 1), p, (1.0, 1.0, 1.0), false);
            let g = build_global_graph(&mesh);
            assert_eq!(g.n_local(), nodes, "p={p}");
            assert_eq!(g.n_edges(), directed, "p={p}");
            assert_eq!(g.n_halo(), 0);
            assert!(g.node_inv_degree.iter().all(|&d| d == 1.0));
            assert!(g.edge_inv_degree.iter().all(|&d| d == 1.0));
        }
    }

    #[test]
    fn global_graph_collapses_local_coincident_nodes() {
        // 2x1x1 elements at p=2: 3x3x3 + 3x3x3 lattices sharing a 3x3 face.
        let mesh = BoxMesh::new((2, 1, 1), 2, (2.0, 1.0, 1.0), false);
        let g = build_global_graph(&mesh);
        assert_eq!(g.n_local(), 5 * 3 * 3);
        // Shared-face edges must not be duplicated: total undirected links =
        // 2 elements * 54 links - 12 duplicated face links... compute
        // directly instead: x-axis segments 4 * 9, y segments 2 * (5*3),
        // z segments likewise.
        let expect_undirected = 4 * 9 + 2 * 5 * 3 + 2 * 5 * 3;
        assert_eq!(g.n_edges(), expect_undirected * 2);
    }

    #[test]
    fn two_rank_split_produces_symmetric_halo() {
        let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = build_distributed_graph(&mesh, &part);
        assert_eq!(graphs.len(), 2);
        for g in &graphs {
            g.validate();
            assert_eq!(g.halo.neighbors.len(), 1);
            // The shared plane is the x-midplane: 3x3 nodes at p=1 on a
            // 2x2x2 element grid.
            assert_eq!(g.halo.send_ids[0].len(), 9);
            assert_eq!(g.n_halo(), 9);
        }
        // Shared gid lists must agree across the pair.
        let shared0: Vec<u64> = graphs[0].halo.send_ids[0]
            .iter()
            .map(|&l| graphs[0].gids[l])
            .collect();
        let shared1: Vec<u64> = graphs[1].halo.send_ids[0]
            .iter()
            .map(|&l| graphs[1].gids[l])
            .collect();
        assert_eq!(shared0, shared1);
    }

    #[test]
    fn union_of_rank_gids_covers_global_graph() {
        let mesh = BoxMesh::new((4, 4, 4), 2, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        let graphs = build_distributed_graph(&mesh, &part);
        let mut all: Vec<u64> = graphs.iter().flat_map(|g| g.gids.iter().copied()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), mesh.num_global_nodes());
    }

    #[test]
    fn inverse_node_degrees_sum_to_global_count() {
        // Paper Eq. 6c: sum over ranks and local nodes of 1/d_i = N.
        for (r, strategy) in [
            (2, Strategy::Slab),
            (4, Strategy::Pencil),
            (8, Strategy::Block),
            (5, Strategy::Rcb),
        ] {
            let mesh = BoxMesh::new((4, 4, 4), 1, (1.0, 1.0, 1.0), false);
            let part = Partition::new(&mesh, r, strategy);
            let graphs = build_distributed_graph(&mesh, &part);
            let neff: f64 = graphs.iter().flat_map(|g| g.node_inv_degree.iter()).sum();
            assert!(
                (neff - mesh.num_global_nodes() as f64).abs() < 1e-9,
                "r={r}: Neff={neff} vs N={}",
                mesh.num_global_nodes()
            );
        }
    }

    #[test]
    fn inverse_edge_degrees_sum_to_global_edge_count() {
        // Same telescoping identity for edges: sum over ranks of
        // sum_e 1/d_ij = number of directed edges of the R=1 graph.
        let mesh = BoxMesh::new((3, 3, 3), 2, (1.0, 1.0, 1.0), false);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, 8, Strategy::Rcb);
        let graphs = build_distributed_graph(&mesh, &part);
        let eff: f64 = graphs.iter().flat_map(|g| g.edge_inv_degree.iter()).sum();
        assert!(
            (eff - global.n_edges() as f64).abs() < 1e-9,
            "effective {eff} vs {}",
            global.n_edges()
        );
    }

    #[test]
    fn halo_plans_are_pairwise_consistent() {
        let mesh = BoxMesh::new((4, 4, 4), 3, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 8, Strategy::Block);
        let graphs = build_distributed_graph(&mesh, &part);
        for g in &graphs {
            for (ni, &s) in g.halo.neighbors.iter().enumerate() {
                let other = &graphs[s];
                let back = other
                    .halo
                    .neighbors
                    .iter()
                    .position(|&x| x == g.rank)
                    .expect("neighbor relation must be symmetric");
                let mine: Vec<u64> = g.halo.send_ids[ni].iter().map(|&l| g.gids[l]).collect();
                let theirs: Vec<u64> = other.halo.send_ids[back]
                    .iter()
                    .map(|&l| other.gids[l])
                    .collect();
                assert_eq!(
                    mine, theirs,
                    "shared gid lists differ for pair ({}, {s})",
                    g.rank
                );
            }
        }
    }

    #[test]
    fn periodic_mesh_halo_includes_wrap_neighbors() {
        let mesh = BoxMesh::new((4, 4, 4), 1, (1.0, 1.0, 1.0), true);
        let part = Partition::new(&mesh, 4, Strategy::Slab);
        let graphs = build_distributed_graph(&mesh, &part);
        // Slabs on a periodic ring: every rank has exactly 2 neighbors
        // (including the wrap pair 0 <-> 3).
        for g in &graphs {
            assert_eq!(g.halo.neighbors.len(), 2, "rank {}", g.rank);
        }
        assert!(graphs[0].halo.neighbors.contains(&3));
    }

    #[test]
    fn edge_features_are_rank_invariant() {
        // The same physical edge present on two ranks must carry identical
        // displacement vectors.
        let mesh = BoxMesh::new((2, 2, 2), 3, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = build_distributed_graph(&mesh, &part);
        let mut by_key: HashMap<(u64, u64), [f64; 3]> = HashMap::new();
        for g in &graphs {
            for e in 0..g.n_edges() {
                let key = (g.gids[g.edge_src[e]], g.gids[g.edge_dst[e]]);
                let d = g.edge_disp[e];
                if let Some(prev) = by_key.insert(key, d) {
                    assert_eq!(prev, d, "edge {key:?} has rank-dependent geometry");
                }
            }
        }
    }

    #[test]
    fn distributed_edges_cover_global_edges() {
        let mesh = BoxMesh::new((3, 3, 3), 1, (1.0, 1.0, 1.0), false);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, 4, Strategy::Pencil);
        let graphs = build_distributed_graph(&mesh, &part);
        let mut global_keys: Vec<(u64, u64)> = (0..global.n_edges())
            .map(|e| {
                (
                    global.gids[global.edge_src[e]],
                    global.gids[global.edge_dst[e]],
                )
            })
            .collect();
        global_keys.sort_unstable();
        let mut dist_keys: Vec<(u64, u64)> = graphs
            .iter()
            .flat_map(|g| {
                (0..g.n_edges()).map(move |e| (g.gids[g.edge_src[e]], g.gids[g.edge_dst[e]]))
            })
            .collect();
        dist_keys.sort_unstable();
        dist_keys.dedup();
        assert_eq!(global_keys, dist_keys);
    }
}
