//! # cgnn-graph
//!
//! Distributed mesh-based graph generation (paper Sec. II-A): nodes from
//! GLL quadrature points, nearest-neighbour lattice edges, local coincident
//! node collapse into the *reduced distributed graph* (paper Fig. 3c), halo
//! exchange plans over non-local coincident nodes (paper Fig. 4), and the
//! `1/d_i` / `1/d_ij` consistency weights of paper Eqs. 4b and 6b.
//!
//! The [`stats`] module additionally provides closed-form per-rank
//! statistics for structured partitions, which is how the Frontier-scale
//! entries of the paper's Table II and the weak-scaling inputs of Figs. 7-8
//! are produced without materializing billion-node graphs.

pub mod builder;
pub mod features;
pub mod local_graph;
pub mod stats;

pub use builder::{build_distributed_graph, build_global_graph};
pub use features::{
    edge_features, node_noise_features, node_velocity_features, EDGE_FEATS, NODE_FEATS,
};
pub use local_graph::{HaloPlan, LocalGraph};
pub use stats::{
    analytic_block_profiles, analytic_block_stats, exact_profile, exact_stats, summarize,
    RankGraphStats, RankProfile, StatsSummary,
};
