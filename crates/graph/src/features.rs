//! Node and edge attribute assembly (paper Sec. III: node features are the
//! three velocity components; edge features are relative node features,
//! distance vectors, and distance magnitudes — 7 in total).

use cgnn_mesh::{GidNoise, TaylorGreen};

use crate::local_graph::LocalGraph;

/// Input node feature dimensionality used by the paper (velocity).
pub const NODE_FEATS: usize = 3;
/// Input edge feature dimensionality used by the paper.
pub const EDGE_FEATS: usize = NODE_FEATS + 4;

/// Sample Taylor-Green velocities at time `t` onto the local nodes,
/// returning a row-major `[n_local, 3]` buffer. Positions are canonical per
/// gid, so coincident copies on other ranks get bit-identical rows.
pub fn node_velocity_features(g: &LocalGraph, field: &TaylorGreen, t: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(g.n_local() * NODE_FEATS);
    for &p in &g.pos {
        out.extend_from_slice(&field.velocity(p, t));
    }
    out
}

/// Deterministic per-gid noise features, `[n_local, dim]` row-major.
pub fn node_noise_features(g: &LocalGraph, noise: &GidNoise, dim: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(g.n_local() * dim);
    for &gid in &g.gids {
        out.extend(noise.sample_vec(gid, dim));
    }
    out
}

/// Assemble the 7-dimensional edge features from node features (`[n, fx]`
/// row-major with `fx = 3`) and the stored edge displacements:
/// `[x_j - x_i, dx, dy, dz, |d|]` per directed edge, row-major `[n_edges, 7]`.
pub fn edge_features(g: &LocalGraph, node_feats: &[f64], fx: usize) -> Vec<f64> {
    assert_eq!(fx, NODE_FEATS, "paper edge features assume 3 node features");
    assert_eq!(
        node_feats.len(),
        g.n_local() * fx,
        "node feature buffer size"
    );
    let mut out = Vec::with_capacity(g.n_edges() * EDGE_FEATS);
    for e in 0..g.n_edges() {
        let (i, j) = (g.edge_src[e], g.edge_dst[e]);
        let xi = &node_feats[i * fx..(i + 1) * fx];
        let xj = &node_feats[j * fx..(j + 1) * fx];
        for d in 0..fx {
            out.push(xj[d] - xi[d]);
        }
        let disp = g.edge_disp[e];
        out.extend_from_slice(&disp);
        out.push((disp[0] * disp[0] + disp[1] * disp[1] + disp[2] * disp[2]).sqrt());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_global_graph;
    use cgnn_mesh::BoxMesh;

    #[test]
    fn velocity_features_have_expected_layout() {
        let mesh = BoxMesh::tgv_cube(3, 1);
        let g = build_global_graph(&mesh);
        let f = node_velocity_features(&g, &TaylorGreen::new(0.0), 0.0);
        assert_eq!(f.len(), g.n_local() * 3);
        // w component is identically zero for TGV.
        for i in 0..g.n_local() {
            assert_eq!(f[i * 3 + 2], 0.0);
        }
    }

    #[test]
    fn edge_features_antisymmetric_pairs() {
        let mesh = BoxMesh::unit_cube(2, 2);
        let g = build_global_graph(&mesh);
        let noise = GidNoise::new(5);
        let x = node_noise_features(&g, &noise, 3);
        let ef = edge_features(&g, &x, 3);
        assert_eq!(ef.len(), g.n_edges() * EDGE_FEATS);
        // Directed edges come in consecutive (forward, reverse) pairs; the
        // first 6 features flip sign, the magnitude is equal.
        for e in (0..g.n_edges()).step_by(2) {
            let fwd = &ef[e * EDGE_FEATS..(e + 1) * EDGE_FEATS];
            let rev = &ef[(e + 1) * EDGE_FEATS..(e + 2) * EDGE_FEATS];
            for d in 0..6 {
                assert!((fwd[d] + rev[d]).abs() < 1e-15);
            }
            assert_eq!(fwd[6], rev[6]);
        }
    }

    #[test]
    fn edge_magnitudes_are_positive_and_bounded_by_element_size() {
        let mesh = BoxMesh::unit_cube(4, 3);
        let g = build_global_graph(&mesh);
        let x = vec![0.0; g.n_local() * 3];
        let ef = edge_features(&g, &x, 3);
        let h = 0.25; // element size
        for e in 0..g.n_edges() {
            let m = ef[e * EDGE_FEATS + 6];
            assert!(m > 0.0 && m <= h + 1e-12, "edge {e} magnitude {m}");
        }
    }
}
