//! The reduced distributed graph stored on one rank (paper Fig. 3c).
//!
//! Local coincident nodes are collapsed (one row per global id), non-local
//! coincident nodes keep their geometric consistency weights (`1/d_i`,
//! `1/d_ij`), and a [`HaloPlan`] describes which aggregate rows must be
//! swapped with which neighbouring ranks (paper Fig. 4).

use std::sync::Arc;

/// Communication plan for the halo exchanges of one rank.
///
/// For each neighbour `s`, the shared global ids are listed in ascending gid
/// order *on both ranks*, so `send_ids[k]` on rank `r` and `send_ids[k]` on
/// rank `s` refer to the same physical node. Halo rows are appended after
/// the `n_local` owned rows, grouped by neighbour in `neighbors` order.
#[derive(Debug, Clone, Default)]
pub struct HaloPlan {
    /// Neighbouring ranks (sharing at least one non-local coincident node),
    /// ascending.
    pub neighbors: Vec<usize>,
    /// Per neighbour: local row indices of the shared nodes, sorted by gid.
    /// These rows are both the send mask and the sync targets.
    pub send_ids: Vec<Vec<usize>>,
}

impl HaloPlan {
    /// Total number of halo rows (sum of shared counts over neighbours).
    pub fn halo_count(&self) -> usize {
        self.send_ids.iter().map(Vec::len).sum()
    }

    /// Row offset (relative to `n_local`) of the halo block of neighbour
    /// index `ni`.
    pub fn halo_offset(&self, ni: usize) -> usize {
        self.send_ids[..ni].iter().map(Vec::len).sum()
    }
}

/// The per-rank reduced distributed graph.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    /// Owning rank index.
    pub rank: usize,
    /// World size this graph was partitioned for.
    pub n_ranks: usize,
    /// Global ids of local nodes, ascending; length is `n_local`.
    pub gids: Vec<u64>,
    /// Canonical physical positions per local node.
    pub pos: Vec<[f64; 3]>,
    /// Directed edge endpoints (local indices). Both directions of every
    /// undirected link are present. Reference-counted so every
    /// message-passing layer (and every training step) shares the same
    /// index buffer instead of deep-cloning it.
    pub edge_src: Arc<Vec<usize>>,
    /// Destination endpoints, shared like [`LocalGraph::edge_src`].
    pub edge_dst: Arc<Vec<usize>>,
    /// Physical displacement `pos[dst] - pos[src]` per directed edge,
    /// measured inside the generating element (periodic-safe).
    pub edge_disp: Vec<[f64; 3]>,
    /// `1/d_ij` per directed edge: inverse of the number of ranks whose
    /// local graphs contain this edge (paper Eq. 4b). Arc-shared across
    /// layers.
    pub edge_inv_degree: Arc<Vec<f64>>,
    /// `1/d_i` per local node: inverse of the number of ranks owning a
    /// coincident copy (paper Eq. 6b). Arc-shared across layers.
    pub node_inv_degree: Arc<Vec<f64>>,
    /// Local rows *not* shared with any other rank, ascending — the rows
    /// whose node update can run while halo aggregates are in flight.
    pub interior_rows: Arc<Vec<usize>>,
    /// Local rows shared with at least one other rank (the union of the
    /// halo send lists), ascending. Together with
    /// [`LocalGraph::interior_rows`] this partitions `0..n_local`.
    pub boundary_rows: Arc<Vec<usize>>,
    /// Halo exchange plan.
    pub halo: HaloPlan,
}

impl LocalGraph {
    /// Number of local (owned, collapsed) nodes.
    pub fn n_local(&self) -> usize {
        self.gids.len()
    }

    /// Number of halo rows appended after the local rows.
    pub fn n_halo(&self) -> usize {
        self.halo.halo_count()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Local index of a global id, if present.
    pub fn local_of_gid(&self, gid: u64) -> Option<usize> {
        self.gids.binary_search(&gid).ok()
    }

    /// True when this node is a non-local coincident node (shared with at
    /// least one other rank).
    pub fn is_shared(&self, local: usize) -> bool {
        self.node_inv_degree[local] < 1.0
    }

    /// The disjoint union of `copies` replicas of this graph: copy `k`'s
    /// rows occupy `[k * n_local, (k + 1) * n_local)` and its edges are
    /// offset accordingly, with no edges between copies.
    ///
    /// This is the index structure behind *micro-batched inference*
    /// (`Trainer::predict_batch`): stacking `B` independent samples into
    /// one `[B * n_local, F]` tensor and running the forward pass once
    /// over the union is bit-identical per sample to `B` singleton passes,
    /// because every kernel is row-local or reduces per destination node
    /// in input order (see `docs/PERFORMANCE.md`) and the union adds no
    /// cross-sample edges. Global ids are shifted by a per-copy stride so
    /// they stay strictly ascending; consistency weights are replicated
    /// unchanged.
    ///
    /// Only identity-exchange graphs can be replicated: a graph with halo
    /// rows interleaves per-sample state with communication, which a
    /// stacked batch cannot preserve.
    ///
    /// # Panics
    /// If `copies` is zero or this graph has a non-empty halo plan.
    pub fn replicated(&self, copies: usize) -> LocalGraph {
        assert!(copies > 0, "a batched graph needs at least one copy");
        assert_eq!(
            self.n_halo(),
            0,
            "only identity-exchange (halo-free) graphs can be replicated \
             into a batched disjoint union"
        );
        let n = self.n_local();
        let m = self.n_edges();
        // Strictly ascending gids across copies: shift copy k by k * stride.
        let stride = self.gids.last().map_or(1, |g| g + 1);
        let mut gids = Vec::with_capacity(copies * n);
        let mut pos = Vec::with_capacity(copies * n);
        let mut edge_src = Vec::with_capacity(copies * m);
        let mut edge_dst = Vec::with_capacity(copies * m);
        let mut edge_disp = Vec::with_capacity(copies * m);
        let mut edge_inv_degree = Vec::with_capacity(copies * m);
        let mut node_inv_degree = Vec::with_capacity(copies * n);
        for k in 0..copies {
            gids.extend(self.gids.iter().map(|g| g + k as u64 * stride));
            pos.extend_from_slice(&self.pos);
            edge_src.extend(self.edge_src.iter().map(|s| s + k * n));
            edge_dst.extend(self.edge_dst.iter().map(|d| d + k * n));
            edge_disp.extend_from_slice(&self.edge_disp);
            edge_inv_degree.extend_from_slice(&self.edge_inv_degree);
            node_inv_degree.extend_from_slice(&self.node_inv_degree);
        }
        LocalGraph {
            rank: self.rank,
            n_ranks: self.n_ranks,
            gids,
            pos,
            edge_src: Arc::new(edge_src),
            edge_dst: Arc::new(edge_dst),
            edge_disp,
            edge_inv_degree: Arc::new(edge_inv_degree),
            node_inv_degree: Arc::new(node_inv_degree),
            interior_rows: Arc::new((0..copies * n).collect()),
            boundary_rows: Arc::new(Vec::new()),
            halo: HaloPlan::default(),
        }
    }

    /// Basic structural sanity checks; used by tests and debug builds.
    pub fn validate(&self) {
        let n = self.n_local();
        assert_eq!(self.pos.len(), n);
        assert_eq!(self.node_inv_degree.len(), n);
        assert_eq!(self.edge_src.len(), self.edge_dst.len());
        assert_eq!(self.edge_src.len(), self.edge_disp.len());
        assert_eq!(self.edge_src.len(), self.edge_inv_degree.len());
        assert!(
            self.gids.windows(2).all(|w| w[0] < w[1]),
            "gids must be strictly ascending"
        );
        for (&s, &d) in self.edge_src.iter().zip(self.edge_dst.iter()) {
            assert!(s < n && d < n, "edge endpoint out of range");
            assert_ne!(s, d, "self-loop");
        }
        assert_eq!(self.halo.neighbors.len(), self.halo.send_ids.len());
        assert!(
            self.halo.neighbors.windows(2).all(|w| w[0] < w[1]),
            "neighbors must be ascending"
        );
        for (ni, ids) in self.halo.send_ids.iter().enumerate() {
            assert!(!ids.is_empty(), "empty halo block for neighbor {ni}");
            assert!(
                ids.windows(2).all(|w| self.gids[w[0]] < self.gids[w[1]]),
                "halo block must be sorted by gid"
            );
            for &i in ids {
                assert!(i < n);
                assert!(self.is_shared(i), "halo send id {i} is not a shared node");
            }
        }
        assert_eq!(
            self.interior_rows.len() + self.boundary_rows.len(),
            n,
            "interior/boundary rows must partition the local rows"
        );
        let mut seen = vec![false; n];
        for &r in self.interior_rows.iter().chain(self.boundary_rows.iter()) {
            assert!(r < n && !seen[r], "row {r} out of range or duplicated");
            seen[r] = true;
        }
        for &r in self.boundary_rows.iter() {
            assert!(
                self.halo.send_ids.iter().any(|ids| ids.contains(&r)),
                "boundary row {r} is in no halo send list"
            );
        }
    }
}

/// Split `0..n_local` into (interior, boundary) rows given the halo send
/// lists: boundary rows appear in at least one list, interior rows in none.
/// Both outputs are ascending.
pub fn split_interior_boundary(
    n_local: usize,
    send_ids: &[Vec<usize>],
) -> (Vec<usize>, Vec<usize>) {
    let mut is_boundary = vec![false; n_local];
    for ids in send_ids {
        for &i in ids {
            is_boundary[i] = true;
        }
    }
    let mut interior = Vec::with_capacity(n_local);
    let mut boundary = Vec::new();
    for (i, &b) in is_boundary.iter().enumerate() {
        if b {
            boundary.push(i);
        } else {
            interior.push(i);
        }
    }
    (interior, boundary)
}

#[cfg(test)]
mod tests {
    use crate::build_global_graph;
    use cgnn_mesh::BoxMesh;

    #[test]
    fn replicated_is_a_disjoint_union() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let g = build_global_graph(&mesh);
        let b = 3;
        let r = g.replicated(b);
        r.validate();
        assert_eq!(r.n_local(), b * g.n_local());
        assert_eq!(r.n_edges(), b * g.n_edges());
        assert_eq!(r.n_halo(), 0);
        let (n, m) = (g.n_local(), g.n_edges());
        for k in 0..b {
            for e in 0..m {
                // Copy k's edges connect copy k's rows only, same topology.
                assert_eq!(r.edge_src[k * m + e], g.edge_src[e] + k * n);
                assert_eq!(r.edge_dst[k * m + e], g.edge_dst[e] + k * n);
                assert_eq!(r.edge_inv_degree[k * m + e], g.edge_inv_degree[e]);
            }
            for i in 0..n {
                assert_eq!(r.pos[k * n + i], g.pos[i]);
                assert_eq!(r.node_inv_degree[k * n + i], g.node_inv_degree[i]);
            }
        }
        assert!(
            r.gids.windows(2).all(|w| w[0] < w[1]),
            "replicated gids must stay strictly ascending"
        );
    }

    #[test]
    #[should_panic(expected = "halo-free")]
    fn replicated_rejects_halo_graphs() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let part = cgnn_partition::Partition::new(&mesh, 2, cgnn_partition::Strategy::Slab);
        let graphs = crate::build_distributed_graph(&mesh, &part);
        let _ = graphs[0].replicated(2);
    }
}
