//! Per-rank sub-graph statistics (paper Table II) — exact counts from built
//! graphs, plus a closed-form path for structured block partitions that
//! scales to Frontier-size meshes (1e9+ nodes) without materializing them.

use cgnn_mesh::BoxMesh;
use cgnn_partition::layout::{uniform_ranges, Layout};
use rayon::prelude::*;

use crate::local_graph::LocalGraph;

/// Statistics of one rank's reduced sub-graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankGraphStats {
    /// Local (owned, collapsed) node count.
    pub local_nodes: usize,
    /// Total halo rows (sum over neighbours of shared node counts).
    pub halo_nodes: usize,
    /// Number of neighbouring ranks.
    pub neighbors: usize,
    /// Directed local edge count.
    pub directed_edges: usize,
}

/// min / max / mean summary over ranks, as reported in the paper's Table II.
#[derive(Debug, Clone, Copy)]
pub struct StatsSummary {
    pub local_nodes: (usize, usize, f64),
    pub halo_nodes: (usize, usize, f64),
    pub neighbors: (usize, usize, f64),
    pub directed_edges: (usize, usize, f64),
}

/// Exact statistics of a built [`LocalGraph`].
pub fn exact_stats(g: &LocalGraph) -> RankGraphStats {
    RankGraphStats {
        local_nodes: g.n_local(),
        halo_nodes: g.n_halo(),
        neighbors: g.halo.neighbors.len(),
        directed_edges: g.n_edges(),
    }
}

/// Summarize per-rank stats into (min, max, avg) triples.
pub fn summarize(stats: &[RankGraphStats]) -> StatsSummary {
    assert!(!stats.is_empty());
    let reduce = |f: fn(&RankGraphStats) -> usize| {
        let min = stats.iter().map(f).min().expect("non-empty");
        let max = stats.iter().map(f).max().expect("non-empty");
        let avg = stats.iter().map(f).sum::<usize>() as f64 / stats.len() as f64;
        (min, max, avg)
    };
    StatsSummary {
        local_nodes: reduce(|s| s.local_nodes),
        halo_nodes: reduce(|s| s.halo_nodes),
        neighbors: reduce(|s| s.neighbors),
        directed_edges: reduce(|s| s.directed_edges),
    }
}

/// Full per-rank communication profile: stats plus per-neighbour shared
/// node counts (the halo exchange buffer sizes).
#[derive(Debug, Clone)]
pub struct RankProfile {
    pub stats: RankGraphStats,
    /// `(neighbour rank, shared node count)`, one entry per neighbour.
    pub shared_per_neighbor: Vec<(usize, usize)>,
}

/// Exact per-neighbour profile of a built [`LocalGraph`].
pub fn exact_profile(g: &LocalGraph) -> RankProfile {
    RankProfile {
        stats: exact_stats(g),
        shared_per_neighbor: g
            .halo
            .neighbors
            .iter()
            .zip(&g.halo.send_ids)
            .map(|(&s, ids)| (s, ids.len()))
            .collect(),
    }
}

/// Closed-form per-rank statistics for a structured block partition of a
/// [`BoxMesh`]. Exact — validated against [`exact_stats`] of built graphs in
/// tests — but O(R * 27) instead of O(total nodes), so it handles the
/// paper's 2048-rank / 1.1e9-node configurations instantly.
pub fn analytic_block_stats(mesh: &BoxMesh, layout: &Layout) -> Vec<RankGraphStats> {
    analytic_block_profiles(mesh, layout)
        .into_iter()
        .map(|p| p.stats)
        .collect()
}

/// Closed-form per-rank [`RankProfile`]s (stats + per-neighbour buffer
/// sizes) for a structured block partition.
pub fn analytic_block_profiles(mesh: &BoxMesh, layout: &Layout) -> Vec<RankProfile> {
    let (ex, ey, ez) = mesh.elem_counts();
    let p = mesh.order();
    let periodic = mesh.is_periodic();
    let ranges = [
        uniform_ranges(ex, layout.rx),
        uniform_ranges(ey, layout.ry),
        uniform_ranges(ez, layout.rz),
    ];
    let dims = [ex, ey, ez];
    let rr = [layout.rx, layout.ry, layout.rz];

    (0..layout.num_ranks())
        .into_par_iter()
        .map(|rank| {
            let cell = layout.cell_of_rank(rank);
            let cells = [cell.0, cell.1, cell.2];

            // Per-axis node counts and segment counts of this rank's block.
            let mut counts = [0usize; 3];
            let mut segs = [0usize; 3];
            for a in 0..3 {
                let b = ranges[a][cells[a] + 1] - ranges[a][cells[a]];
                if rr[a] == 1 && periodic {
                    counts[a] = p * dims[a]; // full wrapped ring
                    segs[a] = p * dims[a];
                } else {
                    counts[a] = p * b + 1;
                    segs[a] = p * b;
                }
            }
            let local_nodes = counts[0] * counts[1] * counts[2];
            let directed_edges = 2
                * (segs[0] * counts[1] * counts[2]
                    + counts[0] * segs[1] * counts[2]
                    + counts[0] * counts[1] * segs[2]);

            // Enumerate distinct neighbour ranks among the 26 cell offsets.
            let mut neighbor_ranks: Vec<usize> = Vec::new();
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let Some(ncell) = offset_cell(cells, [dx, dy, dz], rr, periodic) else {
                            continue;
                        };
                        let nr = layout.rank_of_cell((ncell[0], ncell[1], ncell[2]));
                        if nr != rank && !neighbor_ranks.contains(&nr) {
                            neighbor_ranks.push(nr);
                        }
                    }
                }
            }

            // Halo rows = sum over neighbours of shared lattice-node counts.
            let mut halo_nodes = 0usize;
            let mut shared_per_neighbor = Vec::with_capacity(neighbor_ranks.len());
            for &nr in &neighbor_ranks {
                let ncell = layout.cell_of_rank(nr);
                let ncells = [ncell.0, ncell.1, ncell.2];
                let mut shared = 1usize;
                for a in 0..3 {
                    shared *=
                        axis_overlap(p, dims[a], rr[a], periodic, &ranges[a], cells[a], ncells[a]);
                }
                halo_nodes += shared;
                shared_per_neighbor.push((nr, shared));
            }

            RankProfile {
                stats: RankGraphStats {
                    local_nodes,
                    halo_nodes,
                    neighbors: neighbor_ranks.len(),
                    directed_edges,
                },
                shared_per_neighbor,
            }
        })
        .collect()
}

/// Neighbour cell at `cells + d`, wrapping per axis when periodic; `None`
/// when it falls off a non-periodic boundary.
fn offset_cell(
    cells: [usize; 3],
    d: [i64; 3],
    rr: [usize; 3],
    periodic: bool,
) -> Option<[usize; 3]> {
    let mut out = [0usize; 3];
    for a in 0..3 {
        let c = cells[a] as i64 + d[a];
        let r = rr[a] as i64;
        out[a] = if c < 0 || c >= r {
            if periodic {
                (c.rem_euclid(r)) as usize
            } else {
                return None;
            }
        } else {
            c as usize
        };
    }
    Some(out)
}

/// Number of lattice coordinates shared along one axis between the blocks
/// of cells `ca` and `cb` (closed lattice intervals, ring intersection when
/// periodic).
fn axis_overlap(
    p: usize,
    n_elems: usize,
    r_axis: usize,
    periodic: bool,
    starts: &[usize],
    ca: usize,
    cb: usize,
) -> usize {
    if r_axis == 1 {
        // Both blocks own the full axis.
        debug_assert_eq!(ca, cb);
        return if periodic {
            p * n_elems
        } else {
            p * n_elems + 1
        };
    }
    let a = ((p * starts[ca]) as i64, (p * starts[ca + 1]) as i64);
    let b = ((p * starts[cb]) as i64, (p * starts[cb + 1]) as i64);
    let closed = |x: (i64, i64), y: (i64, i64)| -> i64 { (x.1.min(y.1) - x.0.max(y.0) + 1).max(0) };
    let mut total = closed(a, b);
    if periodic {
        let n = (p * n_elems) as i64;
        total += closed(a, (b.0 + n, b.1 + n));
        total += closed(a, (b.0 - n, b.1 - n));
    }
    total as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_distributed_graph;
    use cgnn_partition::Partition;

    fn check_analytic_matches_exact(mesh: &BoxMesh, layout: Layout) {
        let part = Partition::structured(mesh, layout);
        let graphs = build_distributed_graph(mesh, &part);
        let exact: Vec<RankGraphStats> = graphs.iter().map(exact_stats).collect();
        let analytic = analytic_block_stats(mesh, &layout);
        assert_eq!(exact.len(), analytic.len());
        for (r, (e, a)) in exact.iter().zip(&analytic).enumerate() {
            assert_eq!(
                e,
                a,
                "rank {r} of layout {layout:?} (periodic={})",
                mesh.is_periodic()
            );
        }
    }

    #[test]
    fn analytic_matches_exact_non_periodic() {
        for p in [1usize, 2, 5] {
            let mesh = BoxMesh::new((4, 4, 4), p, (1.0, 1.0, 1.0), false);
            for layout in [
                Layout::new(1, 1, 1),
                Layout::new(2, 1, 1),
                Layout::new(4, 1, 1),
                Layout::new(2, 2, 1),
                Layout::new(2, 2, 2),
                Layout::new(4, 2, 2),
                Layout::new(1, 3, 1),
            ] {
                check_analytic_matches_exact(&mesh, layout);
            }
        }
    }

    #[test]
    fn analytic_matches_exact_periodic() {
        for p in [1usize, 3] {
            let mesh = BoxMesh::new((4, 4, 4), p, (1.0, 1.0, 1.0), true);
            for layout in [
                Layout::new(1, 1, 1),
                Layout::new(2, 1, 1),
                Layout::new(4, 1, 1),
                Layout::new(2, 2, 2),
                Layout::new(4, 4, 1),
                Layout::new(1, 2, 4),
            ] {
                check_analytic_matches_exact(&mesh, layout);
            }
        }
    }

    #[test]
    fn analytic_matches_exact_uneven_blocks() {
        let mesh = BoxMesh::new((5, 3, 4), 2, (1.0, 1.0, 1.0), false);
        for layout in [
            Layout::new(3, 1, 1),
            Layout::new(2, 3, 2),
            Layout::new(5, 3, 1),
        ] {
            check_analytic_matches_exact(&mesh, layout);
        }
    }

    #[test]
    fn frontier_scale_stats_are_instant_and_plausible() {
        // Paper Table II: p = 5, nominally 512k local nodes per rank at
        // R = 2048 -> 16^3 elements per rank.
        let mesh = BoxMesh::new((16 * 16, 16 * 16, 16 * 8), 5, (1.0, 1.0, 1.0), true);
        let layout = Layout::new(16, 16, 8);
        let stats = analytic_block_stats(&mesh, &layout);
        assert_eq!(stats.len(), 2048);
        let s = summarize(&stats);
        // ~531k local nodes per rank ((5*16+1)^3), bounded halos/neighbors.
        assert!(
            s.local_nodes.0 >= 500_000 && s.local_nodes.1 <= 550_000,
            "{s:?}"
        );
        assert!(s.neighbors.1 <= 26);
        assert!(s.halo_nodes.1 < s.local_nodes.0 / 2);
        // Total graph size ~1.1e9 nodes (before accounting for shared
        // copies; unique count is lattice product).
        let unique = mesh.num_global_nodes();
        assert!(unique > 1_000_000_000, "unique nodes {unique}");
    }

    #[test]
    fn summarize_computes_min_max_avg() {
        let stats = vec![
            RankGraphStats {
                local_nodes: 10,
                halo_nodes: 1,
                neighbors: 2,
                directed_edges: 30,
            },
            RankGraphStats {
                local_nodes: 20,
                halo_nodes: 3,
                neighbors: 4,
                directed_edges: 50,
            },
        ];
        let s = summarize(&stats);
        assert_eq!(s.local_nodes, (10, 20, 15.0));
        assert_eq!(s.neighbors, (2, 4, 3.0));
    }
}
