//! # cgnn-mesh
//!
//! Spectral-element box meshes with Gauss-Legendre-Lobatto (GLL) lattices —
//! the NekRS-style discretization substrate the paper's graphs are built
//! from (paper Sec. II-A). Provides:
//!
//! * [`gll`]: GLL nodes/weights/differentiation matrices,
//! * [`box_mesh`]: structured hex meshes with global node numbering,
//!   coincident-node queries, and optional periodic wrap,
//! * [`fields`]: analytic Taylor-Green vortex velocity and deterministic
//!   per-gid noise fields for node attributes.

pub mod box_mesh;
pub mod fields;
pub mod gll;

pub use box_mesh::BoxMesh;
pub use fields::{GidNoise, SineProduct, TaylorGreen};
pub use gll::GllRule;
