//! Analytic flow fields used as node attributes.
//!
//! The paper samples the velocity of a Taylor-Green vortex solution computed
//! by NekRS onto the graph nodes. We use the classical analytic TGV field
//! (the same initial condition NekRS's canonical case integrates) plus a
//! deterministic per-gid noise field for stress tests. Both are functions of
//! *global* quantities (position / global node id), so every rank that owns
//! a coincident copy of a node computes bit-identical attributes.

/// Taylor-Green vortex velocity field on the `[0, 2*pi]^3` periodic box.
///
/// `u = sin(x) cos(y) cos(z) F(t)`,
/// `v = -cos(x) sin(y) cos(z) F(t)`,
/// `w = 0`, with the viscous decay envelope `F(t) = exp(-2 nu t)` (exact for
/// the 2D TGV and the standard short-time approximation in 3D).
#[derive(Debug, Clone, Copy)]
pub struct TaylorGreen {
    /// Kinematic viscosity.
    pub nu: f64,
}

impl TaylorGreen {
    pub fn new(nu: f64) -> Self {
        TaylorGreen { nu }
    }

    /// Velocity vector at position `pos` and time `t`.
    pub fn velocity(&self, pos: [f64; 3], t: f64) -> [f64; 3] {
        let [x, y, z] = pos;
        let f = (-2.0 * self.nu * t).exp();
        [
            x.sin() * y.cos() * z.cos() * f,
            -x.cos() * y.sin() * z.cos() * f,
            0.0,
        ]
    }

    /// Kinetic energy density at a point.
    pub fn kinetic_energy(&self, pos: [f64; 3], t: f64) -> f64 {
        let v = self.velocity(pos, t);
        0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
    }
}

/// SplitMix64 step — cheap, high-quality 64-bit mixing.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random node field: a pure function of
/// `(seed, gid, feature)` mapping into `[-1, 1)`. Because it depends only on
/// the *global* node id, coincident copies on different ranks agree exactly
/// — the property the consistency demonstrations rely on.
#[derive(Debug, Clone, Copy)]
pub struct GidNoise {
    pub seed: u64,
}

impl GidNoise {
    pub fn new(seed: u64) -> Self {
        GidNoise { seed }
    }

    /// Sample feature `feature` of node `gid`, uniform in `[-1, 1)`.
    pub fn sample(&self, gid: u64, feature: u32) -> f64 {
        let h = splitmix64(self.seed ^ splitmix64(gid ^ ((feature as u64) << 48)));
        // Top 53 bits -> [0,1) double, then affine to [-1,1).
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        2.0 * unit - 1.0
    }

    /// Fill a feature vector for one node.
    pub fn sample_vec(&self, gid: u64, dim: usize) -> Vec<f64> {
        (0..dim as u32).map(|f| self.sample(gid, f)).collect()
    }
}

/// Separable sine product `prod_d sin(k_d x_d)` — the manufactured solution
/// with known diffusion decay used to validate the `cgnn-sem` stepper.
#[derive(Debug, Clone, Copy)]
pub struct SineProduct {
    pub k: [f64; 3],
}

impl SineProduct {
    pub fn eval(&self, pos: [f64; 3]) -> f64 {
        (self.k[0] * pos[0]).sin() * (self.k[1] * pos[1]).sin() * (self.k[2] * pos[2]).sin()
    }

    /// Heat-equation decay rate: `nu * |k|^2`.
    pub fn decay_rate(&self, nu: f64) -> f64 {
        nu * (self.k[0] * self.k[0] + self.k[1] * self.k[1] + self.k[2] * self.k[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tgv_is_divergence_free_numerically() {
        let f = TaylorGreen::new(0.01);
        let h = 1e-5;
        for &(x, y, z) in &[(0.3, 1.1, 2.0), (4.0, 0.2, 5.5), (1.0, 1.0, 1.0)] {
            let du =
                (f.velocity([x + h, y, z], 0.0)[0] - f.velocity([x - h, y, z], 0.0)[0]) / (2.0 * h);
            let dv =
                (f.velocity([x, y + h, z], 0.0)[1] - f.velocity([x, y - h, z], 0.0)[1]) / (2.0 * h);
            let dw =
                (f.velocity([x, y, z + h], 0.0)[2] - f.velocity([x, y, z - h], 0.0)[2]) / (2.0 * h);
            assert!((du + dv + dw).abs() < 1e-8, "div = {}", du + dv + dw);
        }
    }

    #[test]
    fn tgv_decays_in_time() {
        let f = TaylorGreen::new(0.1);
        let p = [0.7, 0.3, 0.1];
        let e0 = f.kinetic_energy(p, 0.0);
        let e1 = f.kinetic_energy(p, 1.0);
        assert!(e1 < e0);
        assert!((e1 / e0 - (-0.4f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn tgv_periodic_in_space() {
        let f = TaylorGreen::new(0.0);
        let tau = 2.0 * std::f64::consts::PI;
        let a = f.velocity([0.4, 1.0, 2.2], 0.5);
        let b = f.velocity([0.4 + tau, 1.0 - tau, 2.2 + tau], 0.5);
        for d in 0..3 {
            assert!((a[d] - b[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn gid_noise_deterministic_and_bounded() {
        let n = GidNoise::new(42);
        for gid in 0..1000u64 {
            let v = n.sample(gid, 0);
            assert!((-1.0..1.0).contains(&v));
            assert_eq!(v, n.sample(gid, 0));
        }
        assert_ne!(n.sample(1, 0), n.sample(2, 0));
        assert_ne!(n.sample(1, 0), n.sample(1, 1));
    }

    #[test]
    fn gid_noise_mean_near_zero() {
        let n = GidNoise::new(7);
        let mean: f64 = (0..10_000u64).map(|g| n.sample(g, 3)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }
}
