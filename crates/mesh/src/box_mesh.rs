//! Structured spectral-element box meshes.
//!
//! A [`BoxMesh`] covers `[0,Lx] x [0,Ly] x [0,Lz]` with `ex * ey * ez`
//! non-intersecting hexahedral elements, each carrying a `(p+1)^3` GLL
//! lattice of quadrature points — the discretization NekRS uses and the one
//! the paper's graphs are generated from (paper Sec. II-A, Figs. 2-3).
//!
//! Coincident nodes (shared element faces/edges/corners) are expressed
//! through **global node IDs**: two element-local nodes with the same global
//! ID occupy the same physical position. Periodic numbering (used for the
//! Taylor-Green vortex box) wraps the global lattice.

use crate::gll::GllRule;

/// Element index triple `(ei, ej, ek)`.
pub type ElemCoords = (usize, usize, usize);

/// Structured hexahedral spectral-element mesh of a box domain.
#[derive(Debug, Clone)]
pub struct BoxMesh {
    ex: usize,
    ey: usize,
    ez: usize,
    p: usize,
    lx: f64,
    ly: f64,
    lz: f64,
    periodic: bool,
    gll: GllRule,
}

impl BoxMesh {
    /// Mesh with `ex x ey x ez` elements of polynomial order `p` covering a
    /// box of side lengths `(lx, ly, lz)`.
    pub fn new(
        (ex, ey, ez): (usize, usize, usize),
        p: usize,
        (lx, ly, lz): (f64, f64, f64),
        periodic: bool,
    ) -> Self {
        assert!(
            ex > 0 && ey > 0 && ez > 0,
            "element counts must be positive"
        );
        assert!(p >= 1, "polynomial order must be >= 1");
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "box lengths must be positive"
        );
        if periodic {
            // A periodic axis forms a node ring of p * e lattice points;
            // rings of fewer than 3 nodes would duplicate edges between the
            // same node pair (the wrap link coincides with an interior
            // link), which is geometrically degenerate.
            assert!(
                ex > 1 && ey > 1 && ez > 1,
                "periodic wrap needs at least 2 elements per axis"
            );
            assert!(
                p * ex >= 3 && p * ey >= 3 && p * ez >= 3,
                "periodic axis needs a node ring of >= 3 (p * elements >= 3)"
            );
        }
        BoxMesh {
            ex,
            ey,
            ez,
            p,
            lx,
            ly,
            lz,
            periodic,
            gll: GllRule::new(p),
        }
    }

    /// Convenience: unit-spaced cube of `e^3` elements on `[0, 2*pi]^3`
    /// (the Taylor-Green vortex box), periodic numbering.
    pub fn tgv_cube(e: usize, p: usize) -> Self {
        let l = 2.0 * std::f64::consts::PI;
        Self::new((e, e, e), p, (l, l, l), true)
    }

    /// Non-periodic unit cube with `e^3` elements.
    pub fn unit_cube(e: usize, p: usize) -> Self {
        Self::new((e, e, e), p, (1.0, 1.0, 1.0), false)
    }

    pub fn order(&self) -> usize {
        self.p
    }

    pub fn gll(&self) -> &GllRule {
        &self.gll
    }

    pub fn is_periodic(&self) -> bool {
        self.periodic
    }

    pub fn elem_counts(&self) -> (usize, usize, usize) {
        (self.ex, self.ey, self.ez)
    }

    pub fn lengths(&self) -> (f64, f64, f64) {
        (self.lx, self.ly, self.lz)
    }

    pub fn num_elements(&self) -> usize {
        self.ex * self.ey * self.ez
    }

    /// Nodes per element, `(p+1)^3`.
    pub fn nodes_per_element(&self) -> usize {
        (self.p + 1).pow(3)
    }

    /// Linear element id from coordinates.
    pub fn elem_id(&self, (ei, ej, ek): ElemCoords) -> usize {
        debug_assert!(ei < self.ex && ej < self.ey && ek < self.ez);
        ei + self.ex * (ej + self.ey * ek)
    }

    /// Element coordinates from linear id.
    pub fn elem_coords(&self, e: usize) -> ElemCoords {
        debug_assert!(e < self.num_elements());
        let ei = e % self.ex;
        let ej = (e / self.ex) % self.ey;
        let ek = e / (self.ex * self.ey);
        (ei, ej, ek)
    }

    /// Global lattice extent along each axis.
    pub fn lattice_dims(&self) -> (usize, usize, usize) {
        if self.periodic {
            (self.p * self.ex, self.p * self.ey, self.p * self.ez)
        } else {
            (
                self.p * self.ex + 1,
                self.p * self.ey + 1,
                self.p * self.ez + 1,
            )
        }
    }

    /// Total number of *unique* global nodes.
    pub fn num_global_nodes(&self) -> usize {
        let (nx, ny, nz) = self.lattice_dims();
        nx * ny * nz
    }

    /// Global node id of lattice coordinates (wrapping when periodic).
    pub fn gid_of_lattice(&self, (i, j, k): (usize, usize, usize)) -> u64 {
        let (nx, ny, nz) = self.lattice_dims();
        let (i, j, k) = if self.periodic {
            (i % nx, j % ny, k % nz)
        } else {
            (i, j, k)
        };
        debug_assert!(i < nx && j < ny && k < nz);
        (i as u64) + (nx as u64) * ((j as u64) + (ny as u64) * (k as u64))
    }

    /// Lattice coordinates of a global node id.
    pub fn lattice_of_gid(&self, gid: u64) -> (usize, usize, usize) {
        let (nx, ny, _) = self.lattice_dims();
        let i = (gid % nx as u64) as usize;
        let j = ((gid / nx as u64) % ny as u64) as usize;
        let k = (gid / (nx as u64 * ny as u64)) as usize;
        (i, j, k)
    }

    /// Global node id of element-local GLL node `(a, b, c)` in element `e`.
    pub fn elem_node_gid(&self, e: usize, (a, b, c): (usize, usize, usize)) -> u64 {
        debug_assert!(a <= self.p && b <= self.p && c <= self.p);
        let (ei, ej, ek) = self.elem_coords(e);
        self.gid_of_lattice((self.p * ei + a, self.p * ej + b, self.p * ek + c))
    }

    fn axis_coord(&self, lattice: usize, n_elems: usize, length: f64) -> f64 {
        let h = length / n_elems as f64;
        if lattice == self.p * n_elems {
            // Non-periodic far boundary.
            return length;
        }
        let ei = lattice / self.p;
        let a = lattice % self.p;
        (ei as f64 + (self.gll.nodes[a] + 1.0) * 0.5) * h
    }

    /// Canonical physical position of a global node. Identical no matter
    /// which element or rank asks — this is what makes node attributes
    /// rank-invariant.
    pub fn node_pos(&self, gid: u64) -> [f64; 3] {
        let (i, j, k) = self.lattice_of_gid(gid);
        [
            self.axis_coord(i, self.ex, self.lx),
            self.axis_coord(j, self.ey, self.ly),
            self.axis_coord(k, self.ez, self.lz),
        ]
    }

    /// Physical position of an element-local node, computed *within* the
    /// element (never wrapped). Used for periodic-safe edge geometry.
    pub fn elem_node_pos(&self, e: usize, (a, b, c): (usize, usize, usize)) -> [f64; 3] {
        let (ei, ej, ek) = self.elem_coords(e);
        let hx = self.lx / self.ex as f64;
        let hy = self.ly / self.ey as f64;
        let hz = self.lz / self.ez as f64;
        [
            (ei as f64 + (self.gll.nodes[a] + 1.0) * 0.5) * hx,
            (ej as f64 + (self.gll.nodes[b] + 1.0) * 0.5) * hy,
            (ek as f64 + (self.gll.nodes[c] + 1.0) * 0.5) * hz,
        ]
    }

    /// Iterate all `(a, b, c)` local lattice coordinates of an element.
    pub fn local_nodes(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let n = self.p + 1;
        (0..n).flat_map(move |c| (0..n).flat_map(move |b| (0..n).map(move |a| (a, b, c))))
    }

    /// Linear index of a local lattice coordinate, `a + (p+1)(b + (p+1)c)`.
    pub fn local_index(&self, (a, b, c): (usize, usize, usize)) -> usize {
        let n = self.p + 1;
        a + n * (b + n * c)
    }

    /// Elements (by axis index) whose lattice range contains axis lattice
    /// coordinate `i`. One element for interior coordinates, two for
    /// element-boundary coordinates (coincident planes).
    fn axis_elems(&self, i: usize, n_elems: usize, out: &mut Vec<usize>) {
        out.clear();
        if i.is_multiple_of(self.p) {
            let right = i / self.p;
            // Element to the left of the shared plane.
            if right > 0 {
                out.push(right - 1);
            } else if self.periodic {
                out.push(n_elems - 1);
            }
            if right < n_elems {
                out.push(right);
            }
        } else {
            out.push(i / self.p);
        }
    }

    /// All elements containing global node `gid` (up to 8).
    pub fn elements_of_node(&self, gid: u64) -> Vec<usize> {
        let (i, j, k) = self.lattice_of_gid(gid);
        let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
        self.axis_elems(i, self.ex, &mut xs);
        self.axis_elems(j, self.ey, &mut ys);
        self.axis_elems(k, self.ez, &mut zs);
        let mut out = Vec::with_capacity(xs.len() * ys.len() * zs.len());
        for &ek in &zs {
            for &ej in &ys {
                for &ei in &xs {
                    out.push(self.elem_id((ei, ej, ek)));
                }
            }
        }
        out
    }

    /// Undirected nearest-neighbour links of the local `(p+1)^3` GLL
    /// lattice, as pairs of local linear indices. This is the paper's edge
    /// generation rule: p=1 gives 12 links (24 directed edges), p=3 gives
    /// 144, p=5 gives 540 (Fig. 2).
    pub fn lattice_links(&self) -> Vec<(usize, usize)> {
        let n = self.p + 1;
        let mut links = Vec::with_capacity(3 * n * n * (n - 1));
        let idx = |a: usize, b: usize, c: usize| a + n * (b + n * c);
        for c in 0..n {
            for b in 0..n {
                for a in 0..n {
                    if a + 1 < n {
                        links.push((idx(a, b, c), idx(a + 1, b, c)));
                    }
                    if b + 1 < n {
                        links.push((idx(a, b, c), idx(a, b + 1, c)));
                    }
                    if c + 1 < n {
                        links.push((idx(a, b, c), idx(a, b, c + 1)));
                    }
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_link_counts_match_paper_fig2() {
        for (p, nodes, directed_edges) in [(1, 8, 24), (3, 64, 288), (5, 216, 1080)] {
            let m = BoxMesh::unit_cube(2, p);
            assert_eq!(m.nodes_per_element(), nodes);
            assert_eq!(m.lattice_links().len() * 2, directed_edges, "p={p}");
        }
    }

    #[test]
    fn global_node_count_non_periodic() {
        let m = BoxMesh::new((2, 3, 4), 2, (1.0, 1.0, 1.0), false);
        assert_eq!(m.num_global_nodes(), 5 * 7 * 9);
    }

    #[test]
    fn global_node_count_periodic() {
        let m = BoxMesh::new((2, 3, 4), 2, (1.0, 1.0, 1.0), true);
        assert_eq!(m.num_global_nodes(), 4 * 6 * 8);
    }

    #[test]
    fn face_sharing_elements_share_gids() {
        let m = BoxMesh::unit_cube(2, 3);
        let e0 = m.elem_id((0, 0, 0));
        let e1 = m.elem_id((1, 0, 0));
        // Right face of e0 (a = p) coincides with left face of e1 (a = 0).
        for b in 0..=3 {
            for c in 0..=3 {
                assert_eq!(
                    m.elem_node_gid(e0, (3, b, c)),
                    m.elem_node_gid(e1, (0, b, c))
                );
            }
        }
    }

    #[test]
    fn periodic_wraps_far_face_to_near_face() {
        let m = BoxMesh::new((3, 3, 3), 2, (1.0, 1.0, 1.0), true);
        let last = m.elem_id((2, 0, 0));
        let first = m.elem_id((0, 0, 0));
        for b in 0..=2 {
            for c in 0..=2 {
                assert_eq!(
                    m.elem_node_gid(last, (2, b, c)),
                    m.elem_node_gid(first, (0, b, c))
                );
            }
        }
    }

    #[test]
    fn node_positions_consistent_across_sharing_elements() {
        let m = BoxMesh::unit_cube(3, 4);
        for e in 0..m.num_elements() {
            for local in m.local_nodes().collect::<Vec<_>>() {
                let gid = m.elem_node_gid(e, local);
                let canon = m.node_pos(gid);
                let direct = m.elem_node_pos(e, local);
                for d in 0..3 {
                    assert!(
                        (canon[d] - direct[d]).abs() < 1e-12,
                        "e={e} local={local:?} dim {d}: {} vs {}",
                        canon[d],
                        direct[d]
                    );
                }
            }
        }
    }

    #[test]
    fn elements_of_node_multiplicity() {
        let m = BoxMesh::unit_cube(2, 2);
        // Center of the box: corner shared by all 8 elements.
        let gid = m.gid_of_lattice((2, 2, 2));
        assert_eq!(m.elements_of_node(gid).len(), 8);
        // Center of a face between two elements.
        let gid = m.gid_of_lattice((2, 1, 1));
        assert_eq!(m.elements_of_node(gid).len(), 2);
        // Interior node of one element.
        let gid = m.gid_of_lattice((1, 1, 1));
        assert_eq!(m.elements_of_node(gid).len(), 1);
        // Domain corner: exactly one element (non-periodic).
        let gid = m.gid_of_lattice((0, 0, 0));
        assert_eq!(m.elements_of_node(gid).len(), 1);
    }

    #[test]
    fn elements_of_node_periodic_corner() {
        let m = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), true);
        // Periodic: the origin corner is shared by 8 elements through wrap.
        let gid = m.gid_of_lattice((0, 0, 0));
        assert_eq!(m.elements_of_node(gid).len(), 8);
    }

    #[test]
    fn elements_of_node_contains_consistent_gid() {
        let m = BoxMesh::new((3, 2, 2), 3, (2.0, 1.0, 1.0), false);
        for gid in 0..m.num_global_nodes() as u64 {
            let elems = m.elements_of_node(gid);
            assert!(!elems.is_empty());
            for e in elems {
                // The element must indeed contain a local node with this gid.
                let found = m
                    .local_nodes()
                    .any(|local| m.elem_node_gid(e, local) == gid);
                assert!(found, "element {e} does not contain gid {gid}");
            }
        }
    }

    #[test]
    fn total_element_nodes_vs_unique_nodes() {
        // Sum over elements of (p+1)^3 = sum over gids of multiplicity.
        let m = BoxMesh::unit_cube(2, 3);
        let total = m.num_elements() * m.nodes_per_element();
        let mult_sum: usize = (0..m.num_global_nodes() as u64)
            .map(|g| m.elements_of_node(g).len())
            .sum();
        assert_eq!(total, mult_sum);
    }
}
