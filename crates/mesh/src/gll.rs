//! Gauss-Legendre-Lobatto (GLL) quadrature: nodes, weights, and the
//! Lagrange differentiation matrix on the reference interval `[-1, 1]`.
//!
//! NekRS discretizes each spectral element with a `(p+1)^3` GLL lattice;
//! graph nodes in the paper coincide with these quadrature points (paper
//! Fig. 2). The differentiation matrix drives the `cgnn-sem` mini-solver.

/// GLL rule of polynomial order `p` (`p + 1` points).
#[derive(Debug, Clone)]
pub struct GllRule {
    /// Quadrature nodes in `[-1, 1]`, ascending; endpoints are exactly ±1.
    pub nodes: Vec<f64>,
    /// Quadrature weights; sum to 2.
    pub weights: Vec<f64>,
}

impl GllRule {
    /// Construct the GLL rule for polynomial order `p >= 1`.
    ///
    /// Interior nodes are the roots of `P'_p` (derivative of the Legendre
    /// polynomial), found by Newton iteration from Chebyshev-Gauss-Lobatto
    /// initial guesses; weights are `2 / (p (p+1) P_p(x)^2)`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "GLL rule requires polynomial order >= 1");
        let n = p + 1;
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        nodes[0] = -1.0;
        nodes[p] = 1.0;
        // Chebyshev-Gauss-Lobatto initial guesses, then Newton on
        // (1 - x^2) P'_p(x) = 0 <=> P'_p(x) = 0 for interior points.
        for i in 1..p {
            let mut x = -(std::f64::consts::PI * i as f64 / p as f64).cos();
            for _ in 0..100 {
                let (pp, dp, d2p) = legendre_with_derivs(p, x);
                let _ = pp;
                let step = dp / d2p;
                x -= step;
                if step.abs() < 1e-15 {
                    break;
                }
            }
            nodes[i] = x;
        }
        nodes.sort_by(|a, b| a.partial_cmp(b).expect("GLL nodes are finite"));
        // Enforce exact antisymmetry (x_i = -x_{p-i}). Newton converges to
        // ~1 ulp but not necessarily bitwise-symmetric roots; downstream
        // rank-invariance arguments (edge displacements computed in
        // different elements) rely on exact lattice symmetry.
        for i in 0..n / 2 {
            let s = 0.5 * (nodes[i] - nodes[n - 1 - i]);
            nodes[i] = s;
            nodes[n - 1 - i] = -s;
        }
        if n % 2 == 1 {
            nodes[n / 2] = 0.0;
        }
        let c = 2.0 / (p as f64 * (p + 1) as f64);
        for i in 0..n {
            let (pp, _, _) = legendre_with_derivs(p, nodes[i]);
            weights[i] = c / (pp * pp);
        }
        GllRule { nodes, weights }
    }

    /// Number of points, `p + 1`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Polynomial order `p`.
    pub fn order(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Dense Lagrange differentiation matrix `D` with
    /// `D[i][j] = l'_j(x_i)` (row-major `(p+1) x (p+1)`), such that for
    /// nodal values `u`, `(D u)_i` approximates `u'(x_i)`.
    pub fn diff_matrix(&self) -> Vec<f64> {
        let n = self.len();
        let x = &self.nodes;
        // Barycentric weights.
        let mut w = vec![1.0; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    w[i] *= x[i] - x[j];
                }
            }
            w[i] = 1.0 / w[i];
        }
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            let mut diag = 0.0;
            for j in 0..n {
                if i != j {
                    let v = (w[j] / w[i]) / (x[i] - x[j]);
                    d[i * n + j] = v;
                    diag -= v;
                }
            }
            d[i * n + i] = diag;
        }
        d
    }
}

/// Evaluate `P_p(x)`, `P'_p(x)`, `P''_p(x)` via the three-term recurrence
/// and the standard derivative identities.
fn legendre_with_derivs(p: usize, x: f64) -> (f64, f64, f64) {
    let mut p0 = 1.0;
    let mut p1 = x;
    if p == 0 {
        return (1.0, 0.0, 0.0);
    }
    for k in 2..=p {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // p1 = P_p, p0 = P_{p-1}
    let pf = p as f64;
    let denom = 1.0 - x * x;
    let (dp, d2p);
    if denom.abs() > 1e-14 {
        dp = pf * (p0 - x * p1) / denom;
        d2p = (2.0 * x * dp - pf * (pf + 1.0) * p1) / denom;
    } else {
        // Endpoint values (only used defensively; Newton never lands here).
        let sign: f64 = if x > 0.0 { 1.0 } else { -1.0 };
        dp = sign.powi(p as i32 + 1) * pf * (pf + 1.0) / 2.0;
        d2p = 0.0;
    }
    (p1, dp, d2p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_is_trapezoid() {
        let r = GllRule::new(1);
        assert_eq!(r.nodes, vec![-1.0, 1.0]);
        assert!((r.weights[0] - 1.0).abs() < 1e-15);
        assert!((r.weights[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn p2_known_values() {
        let r = GllRule::new(2);
        assert!((r.nodes[1]).abs() < 1e-14);
        assert!((r.weights[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((r.weights[1] - 4.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn p5_known_values() {
        // Interior nodes of GLL(5): ±sqrt((7 ± 2 sqrt(7)) / 21).
        let r = GllRule::new(5);
        let a = ((7.0 - 2.0 * 7.0f64.sqrt()) / 21.0).sqrt();
        let b = ((7.0 + 2.0 * 7.0f64.sqrt()) / 21.0).sqrt();
        assert!((r.nodes[2] + a).abs() < 1e-12, "{} vs {}", r.nodes[2], -a);
        assert!((r.nodes[1] + b).abs() < 1e-12);
        assert!((r.nodes[3] - a).abs() < 1e-12);
        assert!((r.nodes[4] - b).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_two() {
        for p in 1..=12 {
            let r = GllRule::new(p);
            let s: f64 = r.weights.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "p={p} sum={s}");
        }
    }

    #[test]
    fn quadrature_exact_for_polynomials() {
        // GLL(p) integrates polynomials up to degree 2p-1 exactly.
        for p in 2..=8 {
            let r = GllRule::new(p);
            let deg = 2 * p - 1;
            // integral of x^deg over [-1,1] = 0 (odd), x^(deg-1): 2/deg.
            let int_odd: f64 = r
                .nodes
                .iter()
                .zip(&r.weights)
                .map(|(&x, &w)| w * x.powi(deg as i32))
                .sum();
            assert!(int_odd.abs() < 1e-12, "p={p}");
            let d = (deg - 1) as i32;
            let int_even: f64 = r
                .nodes
                .iter()
                .zip(&r.weights)
                .map(|(&x, &w)| w * x.powi(d))
                .sum();
            assert!((int_even - 2.0 / (d as f64 + 1.0)).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn diff_matrix_differentiates_polynomials_exactly() {
        for p in 1..=7 {
            let r = GllRule::new(p);
            let d = r.diff_matrix();
            let n = r.len();
            // f(x) = x^p has derivative p x^(p-1); exact for degree <= p.
            let f: Vec<f64> = r.nodes.iter().map(|&x| x.powi(p as i32)).collect();
            for i in 0..n {
                let mut df = 0.0;
                for j in 0..n {
                    df += d[i * n + j] * f[j];
                }
                let exact = p as f64 * r.nodes[i].powi(p as i32 - 1);
                assert!((df - exact).abs() < 1e-9, "p={p} i={i}: {df} vs {exact}");
            }
        }
    }

    #[test]
    fn diff_matrix_annihilates_constants() {
        let r = GllRule::new(6);
        let d = r.diff_matrix();
        let n = r.len();
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| d[i * n + j]).sum();
            assert!(row_sum.abs() < 1e-12);
        }
    }
}
