//! detlint integration tests: per-rule fixtures with a golden JSON
//! report, plus the meta-test that the live workspace itself is clean
//! under `--deny`.

use std::path::{Path, PathBuf};

use cgnn_analyze::context::FileKind;
use cgnn_analyze::{Config, Engine, Report};

/// Fixture groups under `tests/fixtures/`, scanned with
/// [`FileKind::Lib`] and [`fixture_config`]. Each group is analyzed as
/// one mini-workspace (its files share a call graph; groups are
/// isolated from each other so names never resolve across fixtures).
/// Every rule has a positive (must fire) and a suppressed negative
/// (must not). `hotpath-reachability` needs two files: the hot entry
/// and the helper it reaches live a file apart by construction.
const FIXTURE_GROUPS: &[&[&str]] = &[
    &["atomic_in_kernel.rs"],
    &["bad_suppression.rs"],
    &["blocking_in_overlap_window.rs"],
    &["collective_divergence.rs"],
    &["env_var_registry.rs"],
    &["float_reduction_order.rs"],
    &["hotpath_alloc.rs"],
    &["hotpath_reachability.rs", "hotpath_reachability_hot.rs"],
    &["lock_discipline.rs"],
    &["nondet_iteration.rs"],
    &["panic_reachability.rs"],
    &["unwrap_in_lib.rs"],
];

/// Map fixture basenames into the roles the path-scoped rules look for.
fn fixture_config() -> Config {
    Config {
        kernel_modules: vec!["atomic_in_kernel.rs".into()],
        hot_modules: vec![
            "hotpath_alloc.rs".into(),
            "hotpath_reachability_hot.rs".into(),
        ],
        lock_modules: vec!["lock_discipline.rs".into()],
        registry_files: vec![],
        registered_env: ["CGNN_REGISTERED"].map(String::from).into(),
        env_allowlist: ["CARGO_MANIFEST_DIR"].map(String::from).into(),
        ..Config::default()
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_report() -> Report {
    let engine = Engine::new(fixture_config());
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    for group in FIXTURE_GROUPS {
        let files: Vec<(String, FileKind, String)> = group
            .iter()
            .map(|name| {
                let src = std::fs::read_to_string(fixture_dir().join(name))
                    .unwrap_or_else(|e| panic!("fixture {name} must be readable: {e}"));
                (name.to_string(), FileKind::Lib, src)
            })
            .collect();
        files_scanned += files.len();
        diagnostics.extend(engine.analyze_sources(&files));
    }
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Report {
        diagnostics,
        files_scanned,
    }
}

/// Every rule's positive fires, every suppressed negative stays quiet,
/// and the full rendered JSON matches the checked-in golden byte for
/// byte.
#[test]
fn fixture_report_matches_golden() {
    let report = fixture_report();
    let json = serde_json::to_string_pretty(&report.to_json())
        .expect("value tree always serializes")
        + "\n";
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fixtures.json");
    if std::env::var("DETLINT_BLESS").is_ok() {
        std::fs::write(&path, &json).expect("golden must be writable under DETLINT_BLESS");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden missing: regenerate with DETLINT_BLESS=1 cargo test -p cgnn-analyze");
    assert_eq!(
        json, golden,
        "fixture diagnostics drifted from tests/golden/fixtures.json; \
         if the change is intended, regenerate with DETLINT_BLESS=1"
    );
}

/// Structural guard independent of the golden text: each rule fires at
/// least once across the fixtures, so a rule silently dying cannot hide
/// behind a stale golden refresh.
#[test]
fn every_rule_fires_on_its_fixture() {
    let report = fixture_report();
    for rule in [
        "nondet-iteration",
        "atomic-in-kernel",
        "float-reduction-order",
        "hotpath-alloc",
        "unwrap-in-lib",
        "env-var-registry",
        "lock-discipline",
        "collective-divergence",
        "blocking-in-overlap-window",
        "hotpath-reachability",
        "panic-reachability",
        "suppression-syntax",
    ] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "rule `{rule}` produced no fixture diagnostics"
        );
    }
}

/// The interprocedural positives must carry their proof: a diagnostic
/// that claims reachability without the chain is unreviewable.
#[test]
fn interprocedural_diagnostics_carry_chains() {
    let report = fixture_report();
    for (rule, via) in [
        ("collective-divergence", "write_and_sync"),
        ("blocking-in-overlap-window", "drain_stragglers"),
        ("hotpath-reachability", "step_epoch → refresh_buffers"),
        ("panic-reachability", "lookup → deep_get"),
    ] {
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == rule && d.message.contains(via)),
            "rule `{rule}` produced no diagnostic whose chain mentions `{via}`"
        );
    }
}

/// Suppressed negatives: no diagnostic may point at a line covered by a
/// well-formed fixture suppression (each fixture places its negative
/// directly under a `detlint: allow` comment).
#[test]
fn suppressed_negatives_stay_quiet() {
    let report = fixture_report();
    for d in &report.diagnostics {
        // suppression-syntax diagnostics legitimately point at malformed
        // `detlint: allow` lines; every other rule must honor them.
        if d.rule == "suppression-syntax" {
            continue;
        }
        assert!(
            !d.snippet.contains("detlint: allow"),
            "diagnostic escaped its suppression: {}",
            d.render()
        );
    }
}

/// Every registered rule has a matching `### <rule>` anchor in
/// docs/ANALYSIS.md (the `docs:` line under each diagnostic links
/// there), and so does the suppression pseudo-rule.
#[test]
fn every_rule_has_a_docs_anchor() {
    let docs_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/ANALYSIS.md");
    let docs = std::fs::read_to_string(&docs_path)
        .unwrap_or_else(|e| panic!("docs/ANALYSIS.md must be readable: {e}"));
    for rule in cgnn_analyze::rules::all_rules() {
        let name = rule.name();
        assert!(
            docs.contains(&format!("### {name}")),
            "docs/ANALYSIS.md has no `### {name}` section; every rule's \
             `docs:` link must resolve to a written rationale"
        );
    }
    // The suppression pseudo-rule links to the `## Suppressions` heading.
    assert!(
        docs.contains("## Suppressions"),
        "docs/ANALYSIS.md has no `## Suppressions` section"
    );
}

/// The meta-test: the live workspace must be clean, i.e.
/// `cargo run -p cgnn-analyze -- --workspace --deny` exits 0.
#[test]
fn workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut engine = Engine::new(Config::default());
    let report = engine
        .analyze_workspace(&root)
        .expect("workspace scan must succeed");
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must stay detlint-clean:\n{}",
        rendered.join("\n")
    );
}

/// `Report::retain_paths` filters what is *reported* without touching
/// `files_scanned` — the contract `--changed-only` depends on.
#[test]
fn retain_paths_filters_report_only() {
    let mut report = fixture_report();
    let total = report.diagnostics.len();
    let scanned = report.files_scanned;
    assert!(total > 0, "fixtures must produce diagnostics");
    let keep: std::collections::BTreeSet<String> =
        ["unwrap_in_lib.rs".to_string()].into_iter().collect();
    report.retain_paths(&keep);
    assert!(report.diagnostics.len() < total);
    assert!(!report.diagnostics.is_empty());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.path == "unwrap_in_lib.rs"));
    assert_eq!(report.files_scanned, scanned);
}
