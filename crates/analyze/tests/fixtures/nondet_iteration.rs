// Fixture: nondet-iteration. Not compiled — scanned by detlint's golden
// tests only.
use std::collections::HashMap;

pub fn positive() -> Vec<u64> {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(1, 2);
    let mut out = Vec::new();
    for (k, v) in &m {
        out.push(k + v);
    }
    let keys: Vec<u64> = m.keys().copied().collect();
    out.extend(keys);
    out
}

pub fn suppressed() -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(1, 2);
    // detlint: allow(nondet-iteration, "fixture: values are summed and integer addition is order-free")
    m.values().sum()
}
