// Fixture: hotpath-alloc. The test config lists this file as a hot-path
// module. Not compiled — scanned by detlint's golden tests only.

pub fn new() -> Vec<f64> {
    // Constructors are exempt: setup-time allocation is fine.
    Vec::with_capacity(8)
}

pub fn positive(n: usize) -> Vec<f64> {
    let mut buf = Vec::new();
    buf.extend(vec![0.0; n]);
    buf
}

pub fn suppressed(xs: &[f64]) -> Vec<f64> {
    // detlint: allow(hotpath-alloc, "fixture: one-time export copy outside the steady-state step loop")
    xs.to_vec()
}
