// Fixture: lock-discipline. The test config scopes the lock graph to this
// file. Not compiled — scanned by detlint's golden tests only.
use std::sync::Mutex;

pub struct Slots {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
    d: Mutex<u32>,
}

pub fn forward(s: &Slots) {
    let _ga = s.a.lock();
    let _gb = s.b.lock();
}

pub fn backward(s: &Slots) {
    let _gb = s.b.lock();
    let _ga = s.a.lock();
}

pub fn cd_forward(s: &Slots) {
    let _gc = s.c.lock();
    let _gd = s.d.lock();
}

pub fn cd_backward(s: &Slots) {
    let _gd = s.d.lock();
    // detlint: allow(lock-discipline, "fixture: the c/d pair is serialized by an external ordering token in this demo")
    let _gc = s.c.lock();
}
