// Fixture: panic-reachability. Not compiled — scanned by detlint's
// golden tests only. A pub entry reaches an unwrap two frames down; the
// documented and suppressed variants stay quiet.

// POSITIVE: pub API reaching an undocumented panic site transitively.
pub fn entry_point(key: &str) -> usize {
    lookup(key)
}

fn lookup(key: &str) -> usize {
    deep_get(key)
}

fn deep_get(key: &str) -> usize {
    // detlint: allow(unwrap-in-lib, "fixture: this panic site is the subject of the panic-reachability cases above")
    key.parse().unwrap()
}

/// Resolve `key` to its index.
///
/// # Panics
///
/// If `key` is not a decimal integer: the docs own the abort contract,
/// so panic-reachability treats this fn as opaque.
pub fn documented_entry(key: &str) -> usize {
    lookup(key)
}

// NEGATIVE (suppressed): audited reach, documented upstream.
// detlint: allow(panic-reachability, "audited: callers pre-validate key at parse time; the builder docs own this contract")
pub fn audited_entry(key: &str) -> usize {
    lookup(key)
}
