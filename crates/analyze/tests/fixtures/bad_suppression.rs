// Fixture: suppression-syntax. Reasonless or malformed suppressions are
// diagnostics themselves. Not compiled — scanned by detlint's golden
// tests only.

// detlint: allow(unwrap-in-lib)
pub fn missing_reason() {}

// detlint: allow(unwrap-in-lib, "")
pub fn empty_reason() {}

// detlint: deny(everything)
pub fn wrong_verb() {}
