// Fixture: hotpath-reachability, helper half. NOT in `hot_modules` —
// the lexical hotpath-alloc rule never looks here, which is exactly the
// loophole: hot code in `hotpath_reachability_hot.rs` calls into these
// helpers, so their per-call allocations still land on the hot path.

// POSITIVE: reachable from the hot entry `step_epoch`, allocates per
// call. The diagnostic must carry the hot-entry chain.
pub fn refresh_buffers(state: &mut Vec<f64>) {
    let mut staged = Vec::with_capacity(state.len());
    staged.extend_from_slice(state);
    state.clear();
    state.extend_from_slice(&staged);
}

// NEGATIVE: allocates, but no hot entry reaches it.
pub fn debug_dump(state: &[f64]) -> Vec<f64> {
    state.to_vec()
}

// NEGATIVE (suppressed): reachable, but the allocation is warm-up only.
pub fn reserve_scratch(cap: usize) -> Vec<f64> {
    // detlint: allow(hotpath-reachability, "warm-up allocation: runs once before the steady-state loop, not per step")
    Vec::with_capacity(cap)
}
