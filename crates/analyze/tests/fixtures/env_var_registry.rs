// Fixture: env-var-registry. The test config registers only
// `CGNN_REGISTERED`. Not compiled — scanned by detlint's golden tests
// only.

pub fn positive() -> Option<String> {
    std::env::var("CGNN_UNREGISTERED").ok()
}

pub fn dynamic(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

pub fn registered() -> Option<String> {
    std::env::var("CGNN_REGISTERED").ok()
}

pub fn suppressed() -> Option<String> {
    // detlint: allow(env-var-registry, "fixture: probing a foreign tool's variable that is not ours to document")
    std::env::var("EXTERNAL_TOOL_FLAG").ok()
}
