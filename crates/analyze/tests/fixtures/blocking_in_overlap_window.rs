// Fixture: blocking-in-overlap-window. Not compiled — scanned by
// detlint's golden tests only. Mocks the split-phase halo exchange:
// `begin` opens the overlap window, first use of the pending binding
// (its `finish`) closes it.

pub struct Comm;

impl Comm {
    pub fn barrier(&self) {}
    pub fn recv(&self) -> Vec<f64> {
        Vec::new()
    }
}

pub struct PendingExchange;

impl PendingExchange {
    pub fn finish(self, _out: &mut [f64]) {}
}

pub struct Strategy;

impl Strategy {
    pub fn begin(&self, _comm: &Comm) -> PendingExchange {
        PendingExchange
    }
}

fn compute_interior(_out: &mut [f64]) {}

fn drain_stragglers(comm: &Comm) {
    let _ = comm.recv();
}

// POSITIVE: a blocking collective sits squarely inside the window,
// serializing the latency the overlap exists to hide.
pub fn overlapped_update(strategy: &Strategy, comm: &Comm, out: &mut [f64]) {
    let pending = strategy.begin(comm);
    comm.barrier();
    compute_interior(out);
    pending.finish(out);
}

// POSITIVE (transitive): the blocking receive hides one call down; the
// diagnostic must carry the chain.
pub fn overlapped_drain(strategy: &Strategy, comm: &Comm, out: &mut [f64]) {
    let pending = strategy.begin(comm);
    drain_stragglers(comm);
    pending.finish(out);
}

// POSITIVE (delegated window): a `PendingExchange` parameter means this
// fn owns an in-flight exchange from its first statement.
pub fn finish_after_sync(pending: PendingExchange, comm: &Comm, out: &mut [f64]) {
    comm.barrier();
    pending.finish(out);
}

// NEGATIVE: only interior compute between begin and finish — the
// pattern the window is for.
pub fn overlapped_clean(strategy: &Strategy, comm: &Comm, out: &mut [f64]) {
    let pending = strategy.begin(comm);
    compute_interior(out);
    pending.finish(out);
}

// NEGATIVE (suppressed): an audited probe that polls without blocking.
pub fn overlapped_probe(strategy: &Strategy, comm: &Comm, out: &mut [f64]) {
    let pending = strategy.begin(comm);
    // detlint: allow(blocking-in-overlap-window, "audited: the straggler probe polls a ready flag and never blocks this rank")
    drain_stragglers(comm);
    pending.finish(out);
}
