// Fixture: unwrap-in-lib. Not compiled — scanned by detlint's golden
// tests only.

/// # Panics
///
/// Documented abort, so panic-reachability stays quiet here and the
/// diagnostics below belong to unwrap-in-lib alone.
pub fn positive(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    if a > 100 {
        panic!("too big");
    }
    let b: u32 = "7".parse().expect("ok");
    a + b
}

pub fn documented(x: Option<u32>) -> u32 {
    x.expect("caller guarantees Some: the id was validated at parse time")
}

/// # Panics
///
/// Documented abort (see `positive` above for why).
pub fn suppressed(x: Option<u32>) -> u32 {
    // detlint: allow(unwrap-in-lib, "fixture: demo of a reasoned suppression on a deliberate abort")
    x.unwrap()
}
