// Fixture: collective-divergence. Not compiled — scanned by detlint's
// golden tests only. The Comm mock gives the call graph real nodes so
// the transitive positive proves its chain.

pub struct Comm;

impl Comm {
    pub fn rank(&self) -> usize {
        0
    }
    pub fn barrier(&self) {}
    pub fn all_reduce_sum(&self, xs: Vec<f64>) -> Vec<f64> {
        xs
    }
}

// POSITIVE: a collective directly under a rank-conditioned branch —
// ranks that skip the branch never reach the rendezvous.
pub fn checkpoint(comm: &Comm) {
    if comm.rank() == 0 {
        comm.barrier();
    }
}

// POSITIVE (transitive): the collective is a call away; the diagnostic
// must carry the chain that proves reachability.
pub fn checkpoint_then_sync(comm: &Comm) {
    if comm.rank() == 0 {
        write_and_sync(comm);
    }
}

fn write_and_sync(comm: &Comm) {
    flush_manifest();
    comm.barrier();
}

fn flush_manifest() {}

// NEGATIVE: rank-conditioned work that reaches no collective.
pub fn log_on_root(comm: &Comm) {
    if comm.rank() == 0 {
        flush_manifest();
    }
}

// NEGATIVE (suppressed): a deliberate rank-gated rendezvous with the
// matching collective audited on the peer side.
pub fn audited_sync(comm: &Comm) {
    if comm.rank() == 0 {
        // detlint: allow(collective-divergence, "audited: peer ranks issue the matching barrier in their own rank-gated arm")
        comm.barrier();
    }
}
