// Fixture: float-reduction-order. This file is *not* a kernel module in
// the test config. Not compiled — scanned by detlint's golden tests only.
use rayon::prelude::*;

pub fn positive(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn sequential_is_fine(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * 2.0).sum()
}

pub fn suppressed(xs: &[f64]) -> f64 {
    // detlint: allow(float-reduction-order, "fixture: summands are integer-valued so f64 addition is exact here")
    xs.par_iter().map(|x| x.round()).sum()
}
