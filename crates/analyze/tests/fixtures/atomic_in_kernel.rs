// Fixture: atomic-in-kernel. The test config lists this file as a kernel
// module. Not compiled — scanned by detlint's golden tests only.

pub fn positive(flag: &core::sync::atomic::AtomicBool) -> bool {
    let v = unsafe { core::ptr::read_volatile(flag as *const _ as *const u8) };
    flag.fetch_or(v != 0, core::sync::atomic::Ordering::Relaxed)
}

pub fn suppressed() {
    // detlint: allow(atomic-in-kernel, "fixture: counter feeds a log line only, never a float reduction")
    let n = core::sync::atomic::AtomicUsize::new(0);
    let _ = n;
}
