// Fixture: hotpath-reachability, hot half. The test config lists THIS
// file in `hot_modules`; its fns are the reachability entry points. The
// allocations live one file over, in `hotpath_reachability.rs` — the
// loophole the interprocedural rule closes.

pub fn step_epoch(state: &mut Vec<f64>) {
    let scratch = reserve_scratch(state.len());
    refresh_buffers(state);
    drop(scratch);
}
