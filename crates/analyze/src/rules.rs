//! The detlint rule set.
//!
//! Each rule encodes one determinism or hot-path invariant from
//! `docs/PERFORMANCE.md` / `docs/ANALYSIS.md`. Rules are token-stream
//! scanners over [`FileContext`] — no type information — so they are
//! deliberately conservative pattern matchers: false positives are
//! expected occasionally and must be silenced with a **reasoned**
//! `// detlint: allow(<rule>, "<why>")` suppression, which doubles as
//! in-source documentation of the hazard analysis.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Workspace;
use crate::context::{ident_of, is_ident, is_punct, FileContext, FileKind};
use crate::lexer::{Tok, Token};
use crate::parser::FnInfo;

/// Engine configuration: which files play which role, and the env-var
/// registry contents.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path suffixes of tensor-kernel modules: no atomics/unsafe allowed
    /// inside, and float reductions over parallel adaptors are allowed
    /// only here.
    pub kernel_modules: Vec<String>,
    /// Path suffixes of hot-path modules where ad-hoc allocation is
    /// flagged (route through the tape buffer pool instead).
    pub hot_modules: Vec<String>,
    /// Path fragments of the crate(s) whose lock acquisition order is
    /// graphed for cycles.
    pub lock_modules: Vec<String>,
    /// Path suffixes of the env-knob registry: the only files allowed to
    /// read `std::env::var` with a non-literal name.
    pub registry_files: Vec<String>,
    /// Environment variable names declared in the registry.
    pub registered_env: BTreeSet<String>,
    /// Names exempt from registration (cargo/tooling variables).
    pub env_allowlist: BTreeSet<String>,
    /// Method names that are collectives: every rank must execute the
    /// same sequence of these, so reaching one under a rank-conditioned
    /// branch is a cross-rank deadlock hazard (`collective-divergence`).
    pub collectives: BTreeSet<String>,
    /// Method names that block on communication (collectives plus
    /// blocking point-to-point and request waits) — forbidden inside the
    /// halo overlap window (`blocking-in-overlap-window`).
    pub blocking_comm: BTreeSet<String>,
    /// Path fragments of the wire layer: allocation inside these files
    /// is the comm API's owned-buffer contract, audited separately, so
    /// `hotpath-reachability` does not traverse into or report them.
    pub wire_modules: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kernel_modules: vec![
                "crates/tensor/src/tensor.rs".into(),
                "crates/tensor/src/par.rs".into(),
                "crates/tensor/src/nn.rs".into(),
                "crates/tensor/src/tape.rs".into(),
            ],
            hot_modules: vec![
                "crates/tensor/src/tape.rs".into(),
                "crates/tensor/src/par.rs".into(),
                "crates/tensor/src/nn.rs".into(),
                "crates/core/src/mp_layer.rs".into(),
            ],
            lock_modules: vec!["crates/comm/src/".into()],
            registry_files: vec!["crates/core/src/config.rs".into()],
            registered_env: BTreeSet::new(),
            env_allowlist: ["CARGO_MANIFEST_DIR"].map(String::from).into(),
            collectives: [
                "barrier",
                "all_gather",
                "all_to_all",
                "all_reduce",
                "all_reduce_sum",
                "all_reduce_max",
                "all_reduce_scalar",
            ]
            .map(String::from)
            .into(),
            blocking_comm: [
                "barrier",
                "all_gather",
                "all_to_all",
                "all_reduce",
                "all_reduce_sum",
                "all_reduce_max",
                "all_reduce_scalar",
                "send",
                "recv",
                "wait",
                "exchange",
                "halo_exchange_apply",
            ]
            .map(String::from)
            .into(),
            wire_modules: vec!["crates/comm/src/".into()],
        }
    }
}

impl Config {
    fn is_kernel(&self, path: &str) -> bool {
        self.kernel_modules.iter().any(|m| path.ends_with(m))
    }

    fn is_hot(&self, path: &str) -> bool {
        self.hot_modules.iter().any(|m| path.ends_with(m))
    }

    fn is_lock_scoped(&self, path: &str) -> bool {
        self.lock_modules.iter().any(|m| path.contains(m))
    }

    fn is_registry(&self, path: &str) -> bool {
        self.registry_files.iter().any(|m| path.ends_with(m))
    }

    fn is_wire(&self, path: &str) -> bool {
        self.wire_modules.iter().any(|m| path.contains(m))
    }
}

/// One raw finding; the engine attaches snippets/docs and applies
/// suppressions.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human message.
    pub message: String,
}

/// A detlint rule: scanned per file, then once over the workspace call
/// graph, finalized after all files (for rules that aggregate cross-file
/// state, like the lock graph).
pub trait Rule {
    /// The rule's kebab-case name (diagnostic tag + suppression key +
    /// docs anchor).
    fn name(&self) -> &'static str;
    /// Scan one file.
    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>);
    /// Scan the whole workspace with the call graph available — the hook
    /// the interprocedural rules implement.
    fn check_workspace(&mut self, _ws: &Workspace<'_>, _cfg: &Config, _out: &mut Vec<Finding>) {}
    /// Emit whole-workspace findings after every file was scanned.
    fn finalize(&mut self, _cfg: &Config, _out: &mut Vec<Finding>) {}
}

/// The full rule set, in documentation order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NondetIteration),
        Box::new(AtomicInKernel),
        Box::new(FloatReductionOrder),
        Box::new(HotpathAlloc),
        Box::new(UnwrapInLib),
        Box::new(EnvVarRegistry),
        Box::new(LockDiscipline::default()),
        Box::new(CollectiveDivergence),
        Box::new(BlockingInOverlapWindow),
        Box::new(HotpathReachability),
        Box::new(PanicReachability),
    ]
}

fn finding(rule: &'static str, ctx: &FileContext, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Walk left from the token at `dot` (a `.`) to the base identifier of
/// the receiver, skipping balanced `[...]` / `(...)` groups, e.g.
/// `self.world.slots[self.rank]` → `slots`.
pub(crate) fn receiver_name(tokens: &[Token], dot: usize) -> Option<String> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match tokens[k].kind {
            Tok::Punct(']') | Tok::Punct(')') => {
                let close = if matches!(tokens[k].kind, Tok::Punct(']')) {
                    (']', '[')
                } else {
                    (')', '(')
                };
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match &tokens[k].kind {
                        Tok::Punct(c) if *c == close.0 => depth += 1,
                        Tok::Punct(c) if *c == close.1 => depth -= 1,
                        _ => {}
                    }
                }
                // Continue: the token before the group names the receiver.
            }
            Tok::Ident(ref s) => return Some(s.clone()),
            _ => return None,
        }
    }
}

/// Bracket-nesting depth before each token (counting `(`, `[`, `{`).
fn depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d = 0u32;
    for t in tokens {
        match t.kind {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                out.push(d);
                d += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                d = d.saturating_sub(1);
                out.push(d);
            }
            _ => out.push(d),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 1: nondet-iteration
// ---------------------------------------------------------------------

/// Iterating a `HashMap`/`HashSet` in library code: the visit order is
/// seeded per map instance, so anything order-sensitive downstream
/// (reductions, wire payloads, Vec construction) silently loses
/// determinism. Fix: `BTreeMap`/`BTreeSet`, or collect + sort keys.
struct NondetIteration;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn check(&mut self, ctx: &FileContext, _cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind == FileKind::Test {
            return;
        }
        let toks = &ctx.tokens;
        // Pass 1: names bound to a hash collection (let bindings, struct
        // fields, fn params — anything of the form `name: HashMap<…>` or
        // `name = HashMap::new()`).
        let mut hash_names: BTreeSet<String> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            let Some(s) = ident_of(t) else { continue };
            if s != "HashMap" && s != "HashSet" {
                continue;
            }
            if let Some(name) = bound_name(toks, i) {
                hash_names.insert(name);
            }
        }
        if hash_names.is_empty() {
            return;
        }
        // Pass 2: iteration over those names.
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            // `name.iter()` style.
            if let Some(m) = ident_of(t).filter(|m| ITER_METHODS.contains(m)) {
                if i > 0
                    && is_punct(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, '('))
                {
                    if let Some(recv) = receiver_name(toks, i - 1) {
                        if hash_names.contains(&recv) {
                            out.push(finding(
                                self.name(),
                                ctx,
                                t,
                                format!(
                                    "`{recv}.{m}()` iterates a HashMap/HashSet in \
                                     nondeterministic order; use BTreeMap/BTreeSet or \
                                     sort the keys first"
                                ),
                            ));
                        }
                    }
                }
            }
            // `for x in &name {` style.
            if is_ident(t, "in") {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| is_punct(t, '&') || is_ident(t, "mut"))
                {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(ident_of) {
                    if hash_names.contains(name)
                        && toks.get(j + 1).is_some_and(|t| is_punct(t, '{'))
                    {
                        out.push(finding(
                            self.name(),
                            ctx,
                            &toks[j],
                            format!(
                                "`for … in {name}` iterates a HashMap/HashSet in \
                                 nondeterministic order; use BTreeMap/BTreeSet or sort \
                                 the keys first"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Backwards scan from a `HashMap`/`HashSet` token to the name it is
/// bound to: the identifier directly before the nearest single `:` or `=`
/// (skipping `::` path separators).
fn bound_name(tokens: &[Token], hash_idx: usize) -> Option<String> {
    let mut k = hash_idx;
    let stop = hash_idx.saturating_sub(24);
    while k > stop {
        k -= 1;
        match &tokens[k].kind {
            Tok::Punct(':') => {
                if k > 0 && is_punct(&tokens[k - 1], ':') {
                    // `::` path separator: skip it and the segment ident.
                    k -= 1;
                    continue;
                }
                return tokens
                    .get(k.checked_sub(1)?)
                    .and_then(ident_of)
                    .map(String::from);
            }
            Tok::Punct('=') => {
                return tokens
                    .get(k.checked_sub(1)?)
                    .and_then(ident_of)
                    .map(String::from);
            }
            Tok::Ident(_) | Tok::Punct('<') | Tok::Punct('>') => continue,
            _ => return None,
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule 2: atomic-in-kernel
// ---------------------------------------------------------------------

/// Kernel modules must stay atomics-free (and `unsafe`-free): the
/// worker-count-invariance proof in docs/PERFORMANCE.md rests on
/// chunk-local writes with input-order reductions — an atomic RMW would
/// reintroduce schedule-dependent float ordering invisibly.
struct AtomicInKernel;

const ATOMIC_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

impl Rule for AtomicInKernel {
    fn name(&self) -> &'static str {
        "atomic-in-kernel"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !cfg.is_kernel(&ctx.path) {
            return;
        }
        for (i, t) in ctx.tokens.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            let msg = if s.starts_with("Atomic") && s.len() > 6 {
                format!(
                    "`{s}` in a kernel module: kernels must use chunk-local writes, not atomics"
                )
            } else if ATOMIC_RMW.contains(&s) {
                format!("atomic RMW `{s}` in a kernel module breaks schedule-invariant reductions")
            } else if s == "unsafe" {
                "`unsafe` in a kernel module: kernels must stay safe, bounds-checked Rust".into()
            } else {
                continue;
            };
            out.push(finding(self.name(), ctx, t, msg));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: float-reduction-order
// ---------------------------------------------------------------------

/// A `.sum()`/`.fold()`/`.reduce()` directly chained onto a parallel
/// adaptor outside the audited kernel modules: float addition is not
/// associative, so the reduction order must be fixed by construction
/// (the kernel modules do this; ad-hoc call sites usually don't).
struct FloatReductionOrder;

const PAR_ADAPTORS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];

impl Rule for FloatReductionOrder {
    fn name(&self) -> &'static str {
        "float-reduction-order"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind == FileKind::Test || cfg.is_kernel(&ctx.path) {
            return;
        }
        let toks = &ctx.tokens;
        let depth = depths(toks);
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            if !PAR_ADAPTORS.contains(&s) || i == 0 || !is_punct(&toks[i - 1], '.') {
                continue;
            }
            let d0 = depth[i];
            // Scan the rest of the method chain at the same depth.
            for j in i + 1..toks.len() {
                if depth[j] < d0 || (is_punct(&toks[j], ';') && depth[j] == d0) {
                    break;
                }
                if depth[j] == d0
                    && is_punct(&toks[j - 1], '.')
                    && ident_of(&toks[j]).is_some_and(|r| REDUCERS.contains(&r))
                {
                    let r = ident_of(&toks[j]).unwrap_or_default();
                    out.push(finding(
                        self.name(),
                        ctx,
                        &toks[j],
                        format!(
                            "`.{r}()` chained onto `.{s}()` outside the kernel modules: \
                             parallel float reduction order is schedule-dependent; use a \
                             sequential reduction over a deterministically ordered \
                             collect, or move it into an audited kernel"
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: hotpath-alloc
// ---------------------------------------------------------------------

/// Fresh heap allocation inside the training hot path: steady-state
/// steps are designed to allocate nothing (tape buffer pool, PR 5), and
/// a stray `vec![…]`/`to_vec()` per step costs page faults and memset
/// churn. Constructors (`new`/`default`/`with_*`/`from_*`) are exempt —
/// setup-time allocation is fine.
struct HotpathAlloc;

impl Rule for HotpathAlloc {
    fn name(&self) -> &'static str {
        "hotpath-alloc"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !cfg.is_hot(&ctx.path) {
            return;
        }
        let toks = &ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let ctor = ctx.enclosing_fn(i).is_some_and(|f| {
                f.name == "new"
                    || f.name == "default"
                    || f.name.starts_with("with_")
                    || f.name.starts_with("from_")
            });
            if ctor {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            let msg = match s {
                "Vec"
                    if toks.get(i + 1).is_some_and(|a| is_punct(a, ':'))
                        && toks.get(i + 2).is_some_and(|a| is_punct(a, ':'))
                        && toks
                            .get(i + 3)
                            .and_then(ident_of)
                            .is_some_and(|m| m == "new" || m == "with_capacity") =>
                {
                    format!(
                        "`Vec::{}` in a hot-path module; draw scratch from the tape \
                         buffer pool instead",
                        ident_of(&toks[i + 3]).unwrap_or_default()
                    )
                }
                "vec" if toks.get(i + 1).is_some_and(|a| is_punct(a, '!')) => {
                    "`vec![…]` in a hot-path module; draw scratch from the tape buffer \
                     pool instead"
                        .into()
                }
                "to_vec"
                    if i > 0
                        && is_punct(&toks[i - 1], '.')
                        && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
                {
                    "`.to_vec()` in a hot-path module copies per call; reuse a pooled \
                     buffer instead"
                        .into()
                }
                _ => continue,
            };
            out.push(finding(self.name(), ctx, t, msg));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: unwrap-in-lib
// ---------------------------------------------------------------------

/// `unwrap()` / `panic!` (and terse `expect`s) in library code: every
/// abort point must either become a typed error or carry an invariant
/// message long enough to act on. `expect` with a descriptive message is
/// the sanctioned form; suppressions document deliberate fail-fast
/// sites.
struct UnwrapInLib;

impl Rule for UnwrapInLib {
    fn name(&self) -> &'static str {
        "unwrap-in-lib"
    }

    fn check(&mut self, ctx: &FileContext, _cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind != FileKind::Lib {
            return;
        }
        let toks = &ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            let msg: String = match s {
                "unwrap"
                    if i > 0
                        && is_punct(&toks[i - 1], '.')
                        && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
                {
                    "`.unwrap()` in library code: return a typed error or use \
                     `.expect(\"<invariant>\")` with a documented invariant"
                        .into()
                }
                "panic" | "todo" | "unimplemented"
                    if toks.get(i + 1).is_some_and(|a| is_punct(a, '!')) =>
                {
                    format!(
                        "`{s}!` in library code: prefer a typed error; if the abort is \
                         a deliberate invariant, suppress with a written reason"
                    )
                }
                "expect"
                    if i > 0
                        && is_punct(&toks[i - 1], '.')
                        && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
                {
                    match toks.get(i + 2).map(|t| &t.kind) {
                        Some(Tok::Str(m)) if m.len() < 8 => format!(
                            "`.expect(\"{m}\")` message is too terse to document an \
                             invariant; state what must hold and why"
                        ),
                        _ => continue,
                    }
                }
                _ => continue,
            };
            out.push(finding(self.name(), ctx, t, msg));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: env-var-registry
// ---------------------------------------------------------------------

/// Every `std::env::var` read must name a knob declared in the central
/// registry (`crates/core/src/config.rs`), which is also the documented
/// `CGNN_*` table in the README. Non-literal names are only allowed in
/// the registry itself ([`EnvKnob::lookup`]).
struct EnvVarRegistry;

impl Rule for EnvVarRegistry {
    fn name(&self) -> &'static str {
        "env-var-registry"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind == FileKind::Test || cfg.is_registry(&ctx.path) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            if !is_ident(&toks[i], "env")
                || !toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
                || !toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
                || !toks
                    .get(i + 3)
                    .and_then(ident_of)
                    .is_some_and(|m| m == "var" || m == "var_os")
                || !toks.get(i + 4).is_some_and(|t| is_punct(t, '('))
            {
                continue;
            }
            match toks.get(i + 5).map(|t| &t.kind) {
                Some(Tok::Str(name)) => {
                    if !cfg.registered_env.contains(name) && !cfg.env_allowlist.contains(name) {
                        out.push(finding(
                            self.name(),
                            ctx,
                            &toks[i + 5],
                            format!(
                                "env var `{name}` is not declared in the \
                                 crates/core/src/config.rs knob registry"
                            ),
                        ));
                    }
                }
                _ => out.push(finding(
                    self.name(),
                    ctx,
                    &toks[i],
                    "env read with a non-literal name; route it through the EnvKnob \
                     registry (crates/core/src/config.rs)"
                        .into(),
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 7: lock-discipline
// ---------------------------------------------------------------------

/// Static deadlock smell: build the per-function lock acquisition-order
/// graph of the comm crate (receiver field names of `.lock()` /
/// `.borrow_mut()` sites) and report cycles. Complements SerialBackend's
/// runtime deadlock detection — this one fires before any schedule does.
///
/// Known approximation: repeated acquisitions of the *same* field name
/// (e.g. per-peer mailbox arrays) are not self-edges, because the static
/// pass cannot distinguish instances.
#[derive(Default)]
struct LockDiscipline {
    /// edge a→b: b acquired while (syntactically after) a, with one
    /// example site per edge.
    edges: BTreeMap<String, BTreeMap<String, Finding>>,
}

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, _out: &mut Vec<Finding>) {
        if !cfg.is_lock_scoped(&ctx.path) || ctx.kind != FileKind::Lib {
            return;
        }
        let toks = &ctx.tokens;
        for f in &ctx.fns {
            let mut order: Vec<String> = Vec::new();
            for i in f.span.start..f.span.end.min(toks.len()) {
                if ctx.in_test(i) {
                    continue;
                }
                let Some(s) = ident_of(&toks[i]) else {
                    continue;
                };
                if (s != "lock" && s != "borrow_mut")
                    || i == 0
                    || !is_punct(&toks[i - 1], '.')
                    || !toks.get(i + 1).is_some_and(|t| is_punct(t, '('))
                {
                    continue;
                }
                let Some(recv) = receiver_name(toks, i - 1) else {
                    continue;
                };
                if !order.contains(&recv) {
                    for held in order.clone() {
                        self.edges
                            .entry(held)
                            .or_default()
                            .entry(recv.clone())
                            .or_insert(finding(
                                "lock-discipline",
                                ctx,
                                &toks[i],
                                format!(
                                    "`{recv}` acquired while a lock on `{}` may be held \
                                     (fn `{}`)",
                                    order.join("`, `"),
                                    f.name
                                ),
                            ));
                    }
                    order.push(recv);
                }
            }
        }
    }

    fn finalize(&mut self, _cfg: &Config, out: &mut Vec<Finding>) {
        // DFS cycle detection over the (deterministic) BTreeMap graph.
        let nodes: Vec<&String> = self.edges.keys().collect();
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for start in nodes {
            let mut stack = vec![(start.clone(), vec![start.clone()])];
            let mut visited: BTreeSet<String> = BTreeSet::new();
            while let Some((node, path)) = stack.pop() {
                let Some(nexts) = self.edges.get(&node) else {
                    continue;
                };
                for (next, site) in nexts {
                    if next == start {
                        // Normalize the cycle to dedupe rotations.
                        let mut cyc: Vec<String> = path.clone();
                        cyc.sort();
                        let key = cyc.join("->");
                        if reported.insert(key) {
                            let mut f = site.clone();
                            f.message = format!(
                                "lock-order cycle: `{}` → `{start}` — a concurrent \
                                 schedule can deadlock; impose a global acquisition \
                                 order ({})",
                                path.join("` → `"),
                                site.message
                            );
                            out.push(f);
                        }
                    } else if visited.insert(next.clone()) {
                        let mut p = path.clone();
                        p.push(next.clone());
                        stack.push((next.clone(), p));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Interprocedural rules (detlint v2): built on crate::parser +
// crate::callgraph. Each fires on *reachability* of a hazard, so the
// diagnostics carry the call chain that proves the claim.
// ---------------------------------------------------------------------

/// Whether a fn name marks setup-time code exempt from hot-path
/// allocation reasoning (mirrors the `hotpath-alloc` ctor exemption).
fn is_ctor_named(name: &str) -> bool {
    name == "new" || name == "default" || name.starts_with("with_") || name.starts_with("from_")
}

/// Ad-hoc allocation pattern at token `i`, as a short label for
/// messages: `Vec::new`/`Vec::with_capacity`, `vec![…]`, `.to_vec()` —
/// the same patterns `hotpath-alloc` matches lexically.
fn alloc_site_label(toks: &[Token], i: usize) -> Option<String> {
    let s = ident_of(&toks[i])?;
    match s {
        "Vec"
            if toks.get(i + 1).is_some_and(|a| is_punct(a, ':'))
                && toks.get(i + 2).is_some_and(|a| is_punct(a, ':'))
                && toks
                    .get(i + 3)
                    .and_then(ident_of)
                    .is_some_and(|m| m == "new" || m == "with_capacity") =>
        {
            Some(format!(
                "`Vec::{}`",
                ident_of(&toks[i + 3]).unwrap_or_default()
            ))
        }
        "vec" if toks.get(i + 1).is_some_and(|a| is_punct(a, '!')) => Some("`vec![…]`".into()),
        "to_vec"
            if i > 0
                && is_punct(&toks[i - 1], '.')
                && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
        {
            Some("`.to_vec()`".into())
        }
        _ => None,
    }
}

/// Per-node flag: does the fn directly call any method in `names`?
fn direct_call_flags(ws: &Workspace<'_>, names: &BTreeSet<String>) -> Vec<bool> {
    (0..ws.graph.len())
        .map(|n| {
            ws.fn_info(n)
                .calls
                .iter()
                .any(|c| names.contains(&c.callee))
        })
        .collect()
}

/// First direct call in node `n` naming a method in `names`.
fn first_named_call<'w>(
    ws: &'w Workspace<'_>,
    n: usize,
    names: &BTreeSet<String>,
) -> Option<&'w str> {
    ws.fn_info(n)
        .calls
        .iter()
        .find(|c| names.contains(&c.callee))
        .map(|c| c.callee.as_str())
}

// ---------------------------------------------------------------------
// Rule 8: collective-divergence
// ---------------------------------------------------------------------

/// A collective (barrier/all_gather/all_reduce…) executed — directly or
/// through the call graph — under a branch conditioned on the rank.
/// Collectives are rendezvous points: if rank 0 takes the branch and
/// rank 1 does not, rank 0 blocks forever in the collective while rank 1
/// runs ahead (or blocks in a *different* collective — same deadlock,
/// harder log). The consistency proof assumes every rank executes the
/// identical collective sequence.
struct CollectiveDivergence;

impl Rule for CollectiveDivergence {
    fn name(&self) -> &'static str {
        "collective-divergence"
    }

    fn check(&mut self, _ctx: &FileContext, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_workspace(&mut self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Finding>) {
        let has_collective = direct_call_flags(ws, &cfg.collectives);
        for n in 0..ws.graph.len() {
            let ctx = ws.ctx(n);
            let f = ws.fn_info(n);
            for (ci, call) in f.calls.iter().enumerate() {
                if !ctx.parsed.rank_spans.iter().any(|s| s.contains(call.tok)) {
                    continue;
                }
                if cfg.collectives.contains(&call.callee) {
                    out.push(Finding {
                        rule: self.name(),
                        path: ctx.path.clone(),
                        line: call.line,
                        col: call.col,
                        message: format!(
                            "collective `{}` is called under a rank-conditioned branch: \
                             ranks that skip the branch never reach the rendezvous \
                             (cross-rank deadlock); hoist it so every rank executes the \
                             same collective sequence",
                            call.callee
                        ),
                    });
                    continue;
                }
                for &t in ws.graph.targets(n, ci) {
                    if let Some(path) = ws.graph.find_path(t, |m| has_collective[m], |_| false) {
                        let coll = path
                            .last()
                            .and_then(|&m| first_named_call(ws, m, &cfg.collectives))
                            .unwrap_or("collective");
                        out.push(Finding {
                            rule: self.name(),
                            path: ctx.path.clone(),
                            line: call.line,
                            col: call.col,
                            message: format!(
                                "`{}` is called under a rank-conditioned branch and \
                                 reaches collective `{coll}` via `{}`: ranks that skip \
                                 the branch never reach the rendezvous (cross-rank \
                                 deadlock); every rank must execute the same collective \
                                 sequence",
                                call.callee,
                                ws.chain(&path),
                            ),
                        });
                        break;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 9: blocking-in-overlap-window
// ---------------------------------------------------------------------

/// Blocking communication between `HaloExchange::begin` and
/// `PendingExchange::finish`. The Ovl-SR overlap window exists to hide
/// the halo exchange behind interior compute; a blocking collective,
/// send/recv, or request wait inside the window serializes exactly the
/// latency the split-phase API was built to hide — silently, since the
/// result stays correct.
struct BlockingInOverlapWindow;

/// The binding a `… = x.begin(…)` result is stored into: the ident
/// before the `=` (or the last ident inside a `Some(pending)`-style
/// pattern). `None` when the result is chained or discarded.
fn begin_binding(toks: &[Token], begin_tok: usize, stmt_floor: usize) -> Option<String> {
    let mut k = begin_tok;
    while k > stmt_floor {
        k -= 1;
        match &toks[k].kind {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return None,
            Tok::Punct('=') => {
                let before = k.checked_sub(1)?;
                if let Some(name) = ident_of(&toks[before]) {
                    // Exclude `==`/`!=`/`<=`/`>=` comparisons.
                    if matches!(toks[k - 1].kind, Tok::Punct('=' | '!' | '<' | '>')) {
                        continue;
                    }
                    return Some(name.to_string());
                }
                if is_punct(&toks[before], ')') {
                    // `let Some(pending) = …`: last ident inside parens.
                    let mut depth = 1usize;
                    let mut j = before;
                    let mut last = None;
                    while j > stmt_floor && depth > 0 {
                        j -= 1;
                        match &toks[j].kind {
                            Tok::Punct(')') => depth += 1,
                            Tok::Punct('(') => depth -= 1,
                            Tok::Ident(s) if last.is_none() => last = Some(s.clone()),
                            _ => {}
                        }
                    }
                    return last;
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// Overlap windows inside fn `f`: `(open_tok, close_tok)` pairs. A
/// window opens after a `begin(…)` call (or at body start when the fn
/// receives a `PendingExchange` parameter — the delegated half of a
/// split window) and closes at the first use of the pending binding, or
/// at the `finish(…)` call when the result is chained.
fn overlap_windows(ctx: &FileContext, f: &FnInfo) -> Vec<(usize, usize)> {
    let toks = &ctx.tokens;
    let mut windows = Vec::new();
    let close_at = |binding: Option<&str>, open: usize| -> usize {
        if let Some(b) = binding {
            for (j, t) in toks
                .iter()
                .enumerate()
                .take(f.span.end.min(toks.len()))
                .skip(open + 1)
            {
                if is_ident(t, b) {
                    return j;
                }
            }
        }
        f.calls
            .iter()
            .find(|c| c.callee == "finish" && c.tok > open)
            .map(|c| c.tok)
            .unwrap_or(f.span.end)
    };
    for call in &f.calls {
        if call.callee != "begin" {
            continue;
        }
        let binding = begin_binding(toks, call.tok, f.body.start.max(f.span.start));
        let open = call.args.end; // the `)` — the exchange is in flight after it
        windows.push((open, close_at(binding.as_deref(), open)));
    }
    // Delegated window: a `PendingExchange`-typed parameter means this fn
    // owns an in-flight exchange from its first token.
    for p in f.params.start..f.params.end.min(toks.len()) {
        if !is_ident(&toks[p], "PendingExchange") {
            continue;
        }
        // The parameter name is the ident before the single `:` that
        // precedes the type path (`pending: crate::…::PendingExchange`).
        let mut k = p;
        let mut binding = None;
        while k > f.params.start {
            k -= 1;
            if is_punct(&toks[k], ':') {
                if k > 0 && is_punct(&toks[k - 1], ':') {
                    k -= 1; // `::` path separator
                    continue;
                }
                binding = k.checked_sub(1).and_then(|b| ident_of(&toks[b]));
                break;
            }
        }
        if let Some(b) = binding {
            windows.push((f.body.start, close_at(Some(b), f.body.start)));
        }
        break;
    }
    windows
}

impl Rule for BlockingInOverlapWindow {
    fn name(&self) -> &'static str {
        "blocking-in-overlap-window"
    }

    fn check(&mut self, _ctx: &FileContext, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_workspace(&mut self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Finding>) {
        let has_blocking = direct_call_flags(ws, &cfg.blocking_comm);
        for n in 0..ws.graph.len() {
            let ctx = ws.ctx(n);
            let f = ws.fn_info(n);
            for (open, close) in overlap_windows(ctx, f) {
                for (ci, call) in f.calls.iter().enumerate() {
                    if call.tok <= open || call.tok >= close {
                        continue;
                    }
                    if call.callee == "begin" || call.callee == "finish" {
                        continue;
                    }
                    // The call the pending value is handed to closes the
                    // window by delegation, it does not sit inside it.
                    if call.args.contains(close) {
                        continue;
                    }
                    if cfg.blocking_comm.contains(&call.callee) {
                        out.push(Finding {
                            rule: self.name(),
                            path: ctx.path.clone(),
                            line: call.line,
                            col: call.col,
                            message: format!(
                                "blocking `{}` inside the halo overlap window (after \
                                 `begin`, before `finish`): it stalls the compute that \
                                 is supposed to hide the exchange; move it out of the \
                                 window or use the nonblocking variant",
                                call.callee
                            ),
                        });
                        continue;
                    }
                    for &t in ws.graph.targets(n, ci) {
                        if let Some(path) = ws.graph.find_path(t, |m| has_blocking[m], |_| false) {
                            let what = path
                                .last()
                                .and_then(|&m| first_named_call(ws, m, &cfg.blocking_comm))
                                .unwrap_or("blocking comm");
                            out.push(Finding {
                                rule: self.name(),
                                path: ctx.path.clone(),
                                line: call.line,
                                col: call.col,
                                message: format!(
                                    "`{}` reaches blocking `{what}` via `{}` inside the \
                                     halo overlap window (after `begin`, before \
                                     `finish`); keep the window free of blocking comm \
                                     so the exchange stays hidden",
                                    call.callee,
                                    ws.chain(&path),
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 10: hotpath-reachability
// ---------------------------------------------------------------------

/// `hotpath-alloc`, propagated through the call graph: helpers in
/// NON-hot files that allocate per call are flagged when they are
/// reachable from hot-module code — the file-path allowlist stops being
/// a loophole ("move the alloc into a helper one file over"). The wire
/// layer (`crates/comm`) and the audited kernels are boundaries: the
/// comm API's owned-`Vec` contract is audited separately.
struct HotpathReachability;

impl Rule for HotpathReachability {
    fn name(&self) -> &'static str {
        "hotpath-reachability"
    }

    fn check(&mut self, _ctx: &FileContext, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_workspace(&mut self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Finding>) {
        let entries: Vec<usize> = (0..ws.graph.len())
            .filter(|&n| cfg.is_hot(&ws.ctx(n).path) && !is_ctor_named(&ws.fn_info(n).name))
            .collect();
        let reached = ws.graph.reach_from(&entries, |n| {
            let p = &ws.ctx(n).path;
            is_ctor_named(&ws.fn_info(n).name) || cfg.is_kernel(p) || cfg.is_wire(p)
        });
        for &n in reached.keys() {
            let ctx = ws.ctx(n);
            let f = ws.fn_info(n);
            let p = &ctx.path;
            if cfg.is_hot(p)
                || cfg.is_kernel(p)
                || cfg.is_wire(p)
                || is_ctor_named(&f.name)
                || ctx.kind != FileKind::Lib
            {
                continue;
            }
            // Reconstruct one hot entry → n chain from the BFS parents.
            let mut chain = vec![n];
            let mut cur = n;
            while let Some(&Some(parent)) = reached.get(&cur) {
                chain.push(parent);
                cur = parent;
            }
            chain.reverse();
            for i in f.span.start..f.span.end.min(ctx.tokens.len()) {
                let Some(label) = alloc_site_label(&ctx.tokens, i) else {
                    continue;
                };
                out.push(Finding {
                    rule: self.name(),
                    path: ctx.path.clone(),
                    line: ctx.tokens[i].line,
                    col: ctx.tokens[i].col,
                    message: format!(
                        "{label} allocates per call in `{}`, which hot-path code \
                         reaches via `{}`: the steady-state step is designed to \
                         allocate nothing; pool the buffer or suppress with the \
                         ownership story",
                        ws.label(n),
                        ws.chain(&chain),
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 11: panic-reachability
// ---------------------------------------------------------------------

/// A public library fn whose call graph (within its own crate) reaches a
/// `panic!`/`.unwrap()` site in a fn that does not document a `# Panics`
/// section. Callers of public API deserve to know the abort contract;
/// either the panic frontier documents itself (`# Panics` makes the fn
/// opaque to this rule) or the path should return a typed error.
/// `.expect(…)` is deliberately not a target: `unwrap-in-lib` already
/// forces its message to state the invariant.
struct PanicReachability;

/// The crate a workspace path belongs to (`crates/comm/…` → `crates/comm`).
fn crate_of(path: &str) -> &str {
    let mut seps = 0usize;
    let prefix_len = if path.starts_with("crates/") { 2 } else { 1 };
    for (i, c) in path.char_indices() {
        if c == '/' {
            seps += 1;
            if seps == prefix_len {
                return &path[..i];
            }
        }
    }
    path
}

impl Rule for PanicReachability {
    fn name(&self) -> &'static str {
        "panic-reachability"
    }

    fn check(&mut self, _ctx: &FileContext, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_workspace(&mut self, ws: &Workspace<'_>, _cfg: &Config, out: &mut Vec<Finding>) {
        let undocumented_panic: Vec<bool> = (0..ws.graph.len())
            .map(|n| {
                let f = ws.fn_info(n);
                !f.panics.is_empty() && !f.doc_has_panics
            })
            .collect();
        for n in 0..ws.graph.len() {
            let ctx = ws.ctx(n);
            let f = ws.fn_info(n);
            if !f.is_pub || ctx.kind != FileKind::Lib || f.doc_has_panics {
                continue;
            }
            let home = crate_of(&ctx.path);
            // Documented fns are opaque: their `# Panics` section owns
            // everything below them. Other crates own their own contracts.
            let hit = ws.graph.find_path(
                n,
                |m| undocumented_panic[m] && crate_of(&ws.ctx(m).path) == home,
                |m| ws.fn_info(m).doc_has_panics || crate_of(&ws.ctx(m).path) != home,
            );
            let Some(path) = hit else { continue };
            let target = *path.last().unwrap_or(&n);
            let site = &ws.fn_info(target).panics[0];
            let fn_tok = &ctx.tokens[f.span.start];
            let via = if path.len() > 1 {
                format!(" via `{}`", ws.chain(&path))
            } else {
                String::new()
            };
            out.push(Finding {
                rule: self.name(),
                path: ctx.path.clone(),
                line: fn_tok.line,
                col: fn_tok.col,
                message: format!(
                    "pub fn `{}` can reach {} ({}:{}){via}, but its docs have no \
                     `# Panics` section: document the abort contract at the panic \
                     frontier or return a typed error",
                    ws.label(n),
                    site.what,
                    ws.ctx(target).path,
                    site.line,
                ),
            });
        }
    }
}
