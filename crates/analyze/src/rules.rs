//! The detlint rule set.
//!
//! Each rule encodes one determinism or hot-path invariant from
//! `docs/PERFORMANCE.md` / `docs/ANALYSIS.md`. Rules are token-stream
//! scanners over [`FileContext`] — no type information — so they are
//! deliberately conservative pattern matchers: false positives are
//! expected occasionally and must be silenced with a **reasoned**
//! `// detlint: allow(<rule>, "<why>")` suppression, which doubles as
//! in-source documentation of the hazard analysis.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::{ident_of, is_ident, is_punct, FileContext, FileKind};
use crate::lexer::{Tok, Token};

/// Engine configuration: which files play which role, and the env-var
/// registry contents.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path suffixes of tensor-kernel modules: no atomics/unsafe allowed
    /// inside, and float reductions over parallel adaptors are allowed
    /// only here.
    pub kernel_modules: Vec<String>,
    /// Path suffixes of hot-path modules where ad-hoc allocation is
    /// flagged (route through the tape buffer pool instead).
    pub hot_modules: Vec<String>,
    /// Path fragments of the crate(s) whose lock acquisition order is
    /// graphed for cycles.
    pub lock_modules: Vec<String>,
    /// Path suffixes of the env-knob registry: the only files allowed to
    /// read `std::env::var` with a non-literal name.
    pub registry_files: Vec<String>,
    /// Environment variable names declared in the registry.
    pub registered_env: BTreeSet<String>,
    /// Names exempt from registration (cargo/tooling variables).
    pub env_allowlist: BTreeSet<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kernel_modules: vec![
                "crates/tensor/src/tensor.rs".into(),
                "crates/tensor/src/par.rs".into(),
                "crates/tensor/src/nn.rs".into(),
                "crates/tensor/src/tape.rs".into(),
            ],
            hot_modules: vec![
                "crates/tensor/src/tape.rs".into(),
                "crates/tensor/src/par.rs".into(),
                "crates/tensor/src/nn.rs".into(),
                "crates/core/src/mp_layer.rs".into(),
            ],
            lock_modules: vec!["crates/comm/src/".into()],
            registry_files: vec!["crates/core/src/config.rs".into()],
            registered_env: BTreeSet::new(),
            env_allowlist: ["CARGO_MANIFEST_DIR"].map(String::from).into(),
        }
    }
}

impl Config {
    fn is_kernel(&self, path: &str) -> bool {
        self.kernel_modules.iter().any(|m| path.ends_with(m))
    }

    fn is_hot(&self, path: &str) -> bool {
        self.hot_modules.iter().any(|m| path.ends_with(m))
    }

    fn is_lock_scoped(&self, path: &str) -> bool {
        self.lock_modules.iter().any(|m| path.contains(m))
    }

    fn is_registry(&self, path: &str) -> bool {
        self.registry_files.iter().any(|m| path.ends_with(m))
    }
}

/// One raw finding; the engine attaches snippets/docs and applies
/// suppressions.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human message.
    pub message: String,
}

/// A detlint rule: scanned per file, finalized once after all files (for
/// rules that aggregate cross-file state, like the lock graph).
pub trait Rule {
    /// The rule's kebab-case name (diagnostic tag + suppression key +
    /// docs anchor).
    fn name(&self) -> &'static str;
    /// Scan one file.
    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>);
    /// Emit whole-workspace findings after every file was scanned.
    fn finalize(&mut self, _cfg: &Config, _out: &mut Vec<Finding>) {}
}

/// The full rule set, in documentation order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NondetIteration),
        Box::new(AtomicInKernel),
        Box::new(FloatReductionOrder),
        Box::new(HotpathAlloc),
        Box::new(UnwrapInLib),
        Box::new(EnvVarRegistry),
        Box::new(LockDiscipline::default()),
    ]
}

fn finding(rule: &'static str, ctx: &FileContext, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Walk left from the token at `dot` (a `.`) to the base identifier of
/// the receiver, skipping balanced `[...]` / `(...)` groups, e.g.
/// `self.world.slots[self.rank]` → `slots`.
fn receiver_name(tokens: &[Token], dot: usize) -> Option<String> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match tokens[k].kind {
            Tok::Punct(']') | Tok::Punct(')') => {
                let close = if matches!(tokens[k].kind, Tok::Punct(']')) {
                    (']', '[')
                } else {
                    (')', '(')
                };
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match &tokens[k].kind {
                        Tok::Punct(c) if *c == close.0 => depth += 1,
                        Tok::Punct(c) if *c == close.1 => depth -= 1,
                        _ => {}
                    }
                }
                // Continue: the token before the group names the receiver.
            }
            Tok::Ident(ref s) => return Some(s.clone()),
            _ => return None,
        }
    }
}

/// Bracket-nesting depth before each token (counting `(`, `[`, `{`).
fn depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d = 0u32;
    for t in tokens {
        match t.kind {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                out.push(d);
                d += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                d = d.saturating_sub(1);
                out.push(d);
            }
            _ => out.push(d),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 1: nondet-iteration
// ---------------------------------------------------------------------

/// Iterating a `HashMap`/`HashSet` in library code: the visit order is
/// seeded per map instance, so anything order-sensitive downstream
/// (reductions, wire payloads, Vec construction) silently loses
/// determinism. Fix: `BTreeMap`/`BTreeSet`, or collect + sort keys.
struct NondetIteration;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn check(&mut self, ctx: &FileContext, _cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind == FileKind::Test {
            return;
        }
        let toks = &ctx.tokens;
        // Pass 1: names bound to a hash collection (let bindings, struct
        // fields, fn params — anything of the form `name: HashMap<…>` or
        // `name = HashMap::new()`).
        let mut hash_names: BTreeSet<String> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            let Some(s) = ident_of(t) else { continue };
            if s != "HashMap" && s != "HashSet" {
                continue;
            }
            if let Some(name) = bound_name(toks, i) {
                hash_names.insert(name);
            }
        }
        if hash_names.is_empty() {
            return;
        }
        // Pass 2: iteration over those names.
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            // `name.iter()` style.
            if let Some(m) = ident_of(t).filter(|m| ITER_METHODS.contains(m)) {
                if i > 0
                    && is_punct(&toks[i - 1], '.')
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, '('))
                {
                    if let Some(recv) = receiver_name(toks, i - 1) {
                        if hash_names.contains(&recv) {
                            out.push(finding(
                                self.name(),
                                ctx,
                                t,
                                format!(
                                    "`{recv}.{m}()` iterates a HashMap/HashSet in \
                                     nondeterministic order; use BTreeMap/BTreeSet or \
                                     sort the keys first"
                                ),
                            ));
                        }
                    }
                }
            }
            // `for x in &name {` style.
            if is_ident(t, "in") {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| is_punct(t, '&') || is_ident(t, "mut"))
                {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(ident_of) {
                    if hash_names.contains(name)
                        && toks.get(j + 1).is_some_and(|t| is_punct(t, '{'))
                    {
                        out.push(finding(
                            self.name(),
                            ctx,
                            &toks[j],
                            format!(
                                "`for … in {name}` iterates a HashMap/HashSet in \
                                 nondeterministic order; use BTreeMap/BTreeSet or sort \
                                 the keys first"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Backwards scan from a `HashMap`/`HashSet` token to the name it is
/// bound to: the identifier directly before the nearest single `:` or `=`
/// (skipping `::` path separators).
fn bound_name(tokens: &[Token], hash_idx: usize) -> Option<String> {
    let mut k = hash_idx;
    let stop = hash_idx.saturating_sub(24);
    while k > stop {
        k -= 1;
        match &tokens[k].kind {
            Tok::Punct(':') => {
                if k > 0 && is_punct(&tokens[k - 1], ':') {
                    // `::` path separator: skip it and the segment ident.
                    k -= 1;
                    continue;
                }
                return tokens
                    .get(k.checked_sub(1)?)
                    .and_then(ident_of)
                    .map(String::from);
            }
            Tok::Punct('=') => {
                return tokens
                    .get(k.checked_sub(1)?)
                    .and_then(ident_of)
                    .map(String::from);
            }
            Tok::Ident(_) | Tok::Punct('<') | Tok::Punct('>') => continue,
            _ => return None,
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule 2: atomic-in-kernel
// ---------------------------------------------------------------------

/// Kernel modules must stay atomics-free (and `unsafe`-free): the
/// worker-count-invariance proof in docs/PERFORMANCE.md rests on
/// chunk-local writes with input-order reductions — an atomic RMW would
/// reintroduce schedule-dependent float ordering invisibly.
struct AtomicInKernel;

const ATOMIC_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

impl Rule for AtomicInKernel {
    fn name(&self) -> &'static str {
        "atomic-in-kernel"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !cfg.is_kernel(&ctx.path) {
            return;
        }
        for (i, t) in ctx.tokens.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            let msg = if s.starts_with("Atomic") && s.len() > 6 {
                format!(
                    "`{s}` in a kernel module: kernels must use chunk-local writes, not atomics"
                )
            } else if ATOMIC_RMW.contains(&s) {
                format!("atomic RMW `{s}` in a kernel module breaks schedule-invariant reductions")
            } else if s == "unsafe" {
                "`unsafe` in a kernel module: kernels must stay safe, bounds-checked Rust".into()
            } else {
                continue;
            };
            out.push(finding(self.name(), ctx, t, msg));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: float-reduction-order
// ---------------------------------------------------------------------

/// A `.sum()`/`.fold()`/`.reduce()` directly chained onto a parallel
/// adaptor outside the audited kernel modules: float addition is not
/// associative, so the reduction order must be fixed by construction
/// (the kernel modules do this; ad-hoc call sites usually don't).
struct FloatReductionOrder;

const PAR_ADAPTORS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];

impl Rule for FloatReductionOrder {
    fn name(&self) -> &'static str {
        "float-reduction-order"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind == FileKind::Test || cfg.is_kernel(&ctx.path) {
            return;
        }
        let toks = &ctx.tokens;
        let depth = depths(toks);
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            if !PAR_ADAPTORS.contains(&s) || i == 0 || !is_punct(&toks[i - 1], '.') {
                continue;
            }
            let d0 = depth[i];
            // Scan the rest of the method chain at the same depth.
            for j in i + 1..toks.len() {
                if depth[j] < d0 || (is_punct(&toks[j], ';') && depth[j] == d0) {
                    break;
                }
                if depth[j] == d0
                    && is_punct(&toks[j - 1], '.')
                    && ident_of(&toks[j]).is_some_and(|r| REDUCERS.contains(&r))
                {
                    let r = ident_of(&toks[j]).unwrap_or_default();
                    out.push(finding(
                        self.name(),
                        ctx,
                        &toks[j],
                        format!(
                            "`.{r}()` chained onto `.{s}()` outside the kernel modules: \
                             parallel float reduction order is schedule-dependent; use a \
                             sequential reduction over a deterministically ordered \
                             collect, or move it into an audited kernel"
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: hotpath-alloc
// ---------------------------------------------------------------------

/// Fresh heap allocation inside the training hot path: steady-state
/// steps are designed to allocate nothing (tape buffer pool, PR 5), and
/// a stray `vec![…]`/`to_vec()` per step costs page faults and memset
/// churn. Constructors (`new`/`default`/`with_*`/`from_*`) are exempt —
/// setup-time allocation is fine.
struct HotpathAlloc;

impl Rule for HotpathAlloc {
    fn name(&self) -> &'static str {
        "hotpath-alloc"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if !cfg.is_hot(&ctx.path) {
            return;
        }
        let toks = &ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let ctor = ctx.enclosing_fn(i).is_some_and(|f| {
                f.name == "new"
                    || f.name == "default"
                    || f.name.starts_with("with_")
                    || f.name.starts_with("from_")
            });
            if ctor {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            let msg = match s {
                "Vec"
                    if toks.get(i + 1).is_some_and(|a| is_punct(a, ':'))
                        && toks.get(i + 2).is_some_and(|a| is_punct(a, ':'))
                        && toks
                            .get(i + 3)
                            .and_then(ident_of)
                            .is_some_and(|m| m == "new" || m == "with_capacity") =>
                {
                    format!(
                        "`Vec::{}` in a hot-path module; draw scratch from the tape \
                         buffer pool instead",
                        ident_of(&toks[i + 3]).unwrap_or_default()
                    )
                }
                "vec" if toks.get(i + 1).is_some_and(|a| is_punct(a, '!')) => {
                    "`vec![…]` in a hot-path module; draw scratch from the tape buffer \
                     pool instead"
                        .into()
                }
                "to_vec"
                    if i > 0
                        && is_punct(&toks[i - 1], '.')
                        && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
                {
                    "`.to_vec()` in a hot-path module copies per call; reuse a pooled \
                     buffer instead"
                        .into()
                }
                _ => continue,
            };
            out.push(finding(self.name(), ctx, t, msg));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: unwrap-in-lib
// ---------------------------------------------------------------------

/// `unwrap()` / `panic!` (and terse `expect`s) in library code: every
/// abort point must either become a typed error or carry an invariant
/// message long enough to act on. `expect` with a descriptive message is
/// the sanctioned form; suppressions document deliberate fail-fast
/// sites.
struct UnwrapInLib;

impl Rule for UnwrapInLib {
    fn name(&self) -> &'static str {
        "unwrap-in-lib"
    }

    fn check(&mut self, ctx: &FileContext, _cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind != FileKind::Lib {
            return;
        }
        let toks = &ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let Some(s) = ident_of(t) else { continue };
            let msg: String = match s {
                "unwrap"
                    if i > 0
                        && is_punct(&toks[i - 1], '.')
                        && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
                {
                    "`.unwrap()` in library code: return a typed error or use \
                     `.expect(\"<invariant>\")` with a documented invariant"
                        .into()
                }
                "panic" | "todo" | "unimplemented"
                    if toks.get(i + 1).is_some_and(|a| is_punct(a, '!')) =>
                {
                    format!(
                        "`{s}!` in library code: prefer a typed error; if the abort is \
                         a deliberate invariant, suppress with a written reason"
                    )
                }
                "expect"
                    if i > 0
                        && is_punct(&toks[i - 1], '.')
                        && toks.get(i + 1).is_some_and(|a| is_punct(a, '(')) =>
                {
                    match toks.get(i + 2).map(|t| &t.kind) {
                        Some(Tok::Str(m)) if m.len() < 8 => format!(
                            "`.expect(\"{m}\")` message is too terse to document an \
                             invariant; state what must hold and why"
                        ),
                        _ => continue,
                    }
                }
                _ => continue,
            };
            out.push(finding(self.name(), ctx, t, msg));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: env-var-registry
// ---------------------------------------------------------------------

/// Every `std::env::var` read must name a knob declared in the central
/// registry (`crates/core/src/config.rs`), which is also the documented
/// `CGNN_*` table in the README. Non-literal names are only allowed in
/// the registry itself ([`EnvKnob::lookup`]).
struct EnvVarRegistry;

impl Rule for EnvVarRegistry {
    fn name(&self) -> &'static str {
        "env-var-registry"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, out: &mut Vec<Finding>) {
        if ctx.kind == FileKind::Test || cfg.is_registry(&ctx.path) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            if !is_ident(&toks[i], "env")
                || !toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
                || !toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
                || !toks
                    .get(i + 3)
                    .and_then(ident_of)
                    .is_some_and(|m| m == "var" || m == "var_os")
                || !toks.get(i + 4).is_some_and(|t| is_punct(t, '('))
            {
                continue;
            }
            match toks.get(i + 5).map(|t| &t.kind) {
                Some(Tok::Str(name)) => {
                    if !cfg.registered_env.contains(name) && !cfg.env_allowlist.contains(name) {
                        out.push(finding(
                            self.name(),
                            ctx,
                            &toks[i + 5],
                            format!(
                                "env var `{name}` is not declared in the \
                                 crates/core/src/config.rs knob registry"
                            ),
                        ));
                    }
                }
                _ => out.push(finding(
                    self.name(),
                    ctx,
                    &toks[i],
                    "env read with a non-literal name; route it through the EnvKnob \
                     registry (crates/core/src/config.rs)"
                        .into(),
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 7: lock-discipline
// ---------------------------------------------------------------------

/// Static deadlock smell: build the per-function lock acquisition-order
/// graph of the comm crate (receiver field names of `.lock()` /
/// `.borrow_mut()` sites) and report cycles. Complements SerialBackend's
/// runtime deadlock detection — this one fires before any schedule does.
///
/// Known approximation: repeated acquisitions of the *same* field name
/// (e.g. per-peer mailbox arrays) are not self-edges, because the static
/// pass cannot distinguish instances.
#[derive(Default)]
struct LockDiscipline {
    /// edge a→b: b acquired while (syntactically after) a, with one
    /// example site per edge.
    edges: BTreeMap<String, BTreeMap<String, Finding>>,
}

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &Config, _out: &mut Vec<Finding>) {
        if !cfg.is_lock_scoped(&ctx.path) || ctx.kind != FileKind::Lib {
            return;
        }
        let toks = &ctx.tokens;
        for f in &ctx.fns {
            let mut order: Vec<String> = Vec::new();
            for i in f.span.start..f.span.end.min(toks.len()) {
                if ctx.in_test(i) {
                    continue;
                }
                let Some(s) = ident_of(&toks[i]) else {
                    continue;
                };
                if (s != "lock" && s != "borrow_mut")
                    || i == 0
                    || !is_punct(&toks[i - 1], '.')
                    || !toks.get(i + 1).is_some_and(|t| is_punct(t, '('))
                {
                    continue;
                }
                let Some(recv) = receiver_name(toks, i - 1) else {
                    continue;
                };
                if !order.contains(&recv) {
                    for held in order.clone() {
                        self.edges
                            .entry(held)
                            .or_default()
                            .entry(recv.clone())
                            .or_insert(finding(
                                "lock-discipline",
                                ctx,
                                &toks[i],
                                format!(
                                    "`{recv}` acquired while a lock on `{}` may be held \
                                     (fn `{}`)",
                                    order.join("`, `"),
                                    f.name
                                ),
                            ));
                    }
                    order.push(recv);
                }
            }
        }
    }

    fn finalize(&mut self, _cfg: &Config, out: &mut Vec<Finding>) {
        // DFS cycle detection over the (deterministic) BTreeMap graph.
        let nodes: Vec<&String> = self.edges.keys().collect();
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for start in nodes {
            let mut stack = vec![(start.clone(), vec![start.clone()])];
            let mut visited: BTreeSet<String> = BTreeSet::new();
            while let Some((node, path)) = stack.pop() {
                let Some(nexts) = self.edges.get(&node) else {
                    continue;
                };
                for (next, site) in nexts {
                    if next == start {
                        // Normalize the cycle to dedupe rotations.
                        let mut cyc: Vec<String> = path.clone();
                        cyc.sort();
                        let key = cyc.join("->");
                        if reported.insert(key) {
                            let mut f = site.clone();
                            f.message = format!(
                                "lock-order cycle: `{}` → `{start}` — a concurrent \
                                 schedule can deadlock; impose a global acquisition \
                                 order ({})",
                                path.join("` → `"),
                                site.message
                            );
                            out.push(f);
                        }
                    } else if visited.insert(next.clone()) {
                        let mut p = path.clone();
                        p.push(next.clone());
                        stack.push((next.clone(), p));
                    }
                }
            }
        }
    }
}
