//! Workspace-wide call graph over the [`crate::parser`] output.
//!
//! Nodes are live (non-test) function items; edges come from heuristic
//! call resolution: name match first, refined by receiver shape —
//! `self.m()` prefers methods of the caller's own impl type,
//! `Type::f()` prefers associated fns of `Type`, and `var.m()` prefers
//! impl types whose snake_case matches the receiver variable
//! (`comm.barrier()` → `Comm::barrier`, `node_mlp.forward()` →
//! `Mlp::forward`). When the refinement finds nothing the resolver
//! falls back to every same-named candidate: the graph deliberately
//! **over**-approximates, because the rules built on it reason about
//! reachability of hazards — a missing edge hides a bug, a spurious one
//! costs at most a reasoned suppression.

use std::collections::{btree_map::Entry, BTreeMap, BTreeSet, VecDeque};

use crate::context::FileContext;
use crate::parser::{CallSite, FnInfo, Receiver};

/// One node: fn `f` of `files[file]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub f: usize,
}

/// The resolved call graph.
pub struct CallGraph {
    nodes: Vec<NodeRef>,
    /// Per node: per call site, the resolved target node ids (sorted).
    call_targets: Vec<Vec<Vec<usize>>>,
    /// Per node: union of all targets (sorted, deduped).
    edges: Vec<Vec<usize>>,
}

/// `CamelCase` → `camel_case`, for receiver-variable ↔ type matching.
fn snake_case(ty: &str) -> String {
    let mut out = String::with_capacity(ty.len() + 4);
    for (i, c) in ty.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Whether receiver variable `var` plausibly holds a value of type `ty`:
/// `comm` ↔ `Comm`, `node_mlp` ↔ `Mlp`, `pending` ↔ `PendingExchange`
/// (prefix), but not accidental substring hits. Deliberately NOT a
/// suffix match (`layer` ↔ `ConsistentMpLayer`): generic words like
/// `layer` name the *nearest* such type, not a specific one, and a
/// wrong confident match is worse than falling back.
fn var_matches_ty(var: &str, ty: &str) -> bool {
    let snake = snake_case(ty);
    var == snake || var.ends_with(&format!("_{snake}")) || snake.starts_with(var) && var.len() >= 4
}

impl CallGraph {
    /// Build the graph over every live fn in `files`. Test files and
    /// `#[cfg(test)]` regions contribute no nodes, so a same-named test
    /// helper can never create false reachability into live code.
    pub fn build(files: &[FileContext]) -> CallGraph {
        use crate::context::FileKind;
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (file, ctx) in files.iter().enumerate() {
            if ctx.kind == FileKind::Test {
                continue;
            }
            for (f, info) in ctx.parsed.fns.iter().enumerate() {
                if ctx.in_test(info.span.start) {
                    continue;
                }
                by_name
                    .entry(info.name.as_str())
                    .or_default()
                    .push(nodes.len());
                nodes.push(NodeRef { file, f });
            }
        }
        let fn_of = |n: &NodeRef| -> &FnInfo { &files[n.file].parsed.fns[n.f] };
        let mut call_targets = Vec::with_capacity(nodes.len());
        let mut edges = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let caller = fn_of(node);
            let mut per_call = Vec::with_capacity(caller.calls.len());
            let mut union: BTreeSet<usize> = BTreeSet::new();
            for call in &caller.calls {
                let targets = resolve(call, caller, node.file, &by_name, &nodes, files);
                union.extend(targets.iter().copied());
                per_call.push(targets);
            }
            call_targets.push(per_call);
            edges.push(union.into_iter().collect());
        }
        CallGraph {
            nodes,
            call_targets,
            edges,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `(file, fn)` reference of node `n`.
    pub fn node(&self, n: usize) -> NodeRef {
        self.nodes[n]
    }

    /// Resolved targets of call `c` of node `n` (indices follow
    /// `parsed.fns[..].calls`).
    pub fn targets(&self, n: usize, c: usize) -> &[usize] {
        &self.call_targets[n][c]
    }

    /// All outgoing edges of node `n`.
    pub fn callees(&self, n: usize) -> &[usize] {
        &self.edges[n]
    }

    /// Breadth-first search from `start`: the first node satisfying
    /// `hit`, with the node path from `start` to it. Nodes matching
    /// `skip` are neither expanded nor reported (except `start` itself,
    /// which is always expanded). Deterministic: edges are sorted.
    pub fn find_path(
        &self,
        start: usize,
        hit: impl Fn(usize) -> bool,
        skip: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if hit(start) {
            return Some(vec![start]);
        }
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([start]);
        let mut seen = BTreeSet::from([start]);
        while let Some(n) = queue.pop_front() {
            for &m in self.callees(n) {
                if !seen.insert(m) || (skip(m) && m != start) {
                    continue;
                }
                parent.insert(m, n);
                if hit(m) {
                    let mut path = vec![m];
                    let mut cur = m;
                    while let Some(&p) = parent.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(m);
            }
        }
        None
    }

    /// All nodes reachable from any of `starts` (inclusive), with one
    /// canonical BFS parent per node for path reconstruction. Nodes
    /// matching `skip` are reached but not expanded.
    pub fn reach_from(
        &self,
        starts: &[usize],
        skip: impl Fn(usize) -> bool,
    ) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &s in starts {
            if let Entry::Vacant(e) = parent.entry(s) {
                e.insert(None);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            if skip(n) && parent[&n].is_some() {
                continue;
            }
            for &m in self.callees(n) {
                if let Entry::Vacant(e) = parent.entry(m) {
                    e.insert(Some(n));
                    queue.push_back(m);
                }
            }
        }
        parent
    }
}

/// The workspace view handed to interprocedural rules: every file's
/// context plus the call graph over them.
pub struct Workspace<'a> {
    /// All analyzed files, in walk order.
    pub files: &'a [FileContext],
    /// The call graph over `files`.
    pub graph: CallGraph,
}

impl<'a> Workspace<'a> {
    /// Build the graph over `files`.
    pub fn new(files: &'a [FileContext]) -> Workspace<'a> {
        Workspace {
            files,
            graph: CallGraph::build(files),
        }
    }

    /// The file context node `n` lives in.
    pub fn ctx(&self, n: usize) -> &FileContext {
        &self.files[self.graph.node(n).file]
    }

    /// The fn item of node `n`.
    pub fn fn_info(&self, n: usize) -> &FnInfo {
        let r = self.graph.node(n);
        &self.files[r.file].parsed.fns[r.f]
    }

    /// Human label of node `n`: `Type::name` or `name`.
    pub fn label(&self, n: usize) -> String {
        let f = self.fn_info(n);
        match &f.self_ty {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Render a node path as `a → b → c` for diagnostics.
    pub fn chain(&self, path: &[usize]) -> String {
        path.iter()
            .map(|&n| self.label(n))
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// First path components identifying the crate a file belongs to:
/// `crates/<name>/…` → `crates/<name>`, anything else → its first
/// component. Mirrors the layout the workspace walker scans.
fn crate_of(path: &str) -> &str {
    let mut it = path.match_indices('/');
    let first = it.next().map(|(i, _)| i);
    if path.starts_with("crates/") {
        let second = it.next().map(|(i, _)| i);
        &path[..second.unwrap_or(path.len())]
    } else {
        &path[..first.unwrap_or(path.len())]
    }
}

/// Resolve one call site to candidate nodes.
fn resolve(
    call: &CallSite,
    caller: &FnInfo,
    caller_file: usize,
    by_name: &BTreeMap<&str, Vec<usize>>,
    nodes: &[NodeRef],
    files: &[FileContext],
) -> Vec<usize> {
    let Some(cands) = by_name.get(call.callee.as_str()) else {
        return Vec::new();
    };
    let self_ty_of = |id: usize| -> Option<&str> {
        let n = nodes[id];
        files[n.file].parsed.fns[n.f].self_ty.as_deref()
    };
    // Fallback pool for receivers we can't type: same-crate candidates.
    // A var named after nothing we know (`pool`, `layer`, `st`) almost
    // always holds a local type; letting it bind across crate
    // boundaries drowned real chains in `Option::take`-shaped noise.
    let same_crate = |ids: &[usize]| -> Vec<usize> {
        let home = crate_of(&files[caller_file].path);
        ids.iter()
            .copied()
            .filter(|&id| crate_of(&files[nodes[id].file].path) == home)
            .collect()
    };
    let with_ty = |ty: &str| -> Vec<usize> {
        cands
            .iter()
            .copied()
            .filter(|&id| self_ty_of(id) == Some(ty))
            .collect()
    };
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| self_ty_of(id).is_none())
        .collect();
    match &call.recv {
        Receiver::Free => free,
        Receiver::SelfDot => {
            let refined = caller.self_ty.as_deref().map(&with_ty).unwrap_or_default();
            if refined.is_empty() {
                same_crate(cands)
            } else {
                refined
            }
        }
        Receiver::Ty(ty) => {
            let ty = if ty == "Self" {
                caller.self_ty.as_deref().unwrap_or("Self")
            } else {
                ty.as_str()
            };
            let refined = with_ty(ty);
            if refined.is_empty() {
                // `module::f(…)` paths resolve as free fns; a qualifier
                // naming no known type otherwise contributes no edge
                // (enum variants, std types).
                free
            } else {
                refined
            }
        }
        Receiver::Var(var) => {
            let refined: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| self_ty_of(id).is_some_and(|ty| var_matches_ty(var, ty)))
                .collect();
            if refined.is_empty() {
                same_crate(cands)
            } else {
                refined
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileContext, FileKind};

    fn graph_of(files: &[(&str, &str)]) -> (Vec<FileContext>, CallGraph) {
        let ctxs: Vec<FileContext> = files
            .iter()
            .map(|(path, src)| FileContext::new(path, FileKind::Lib, src))
            .collect();
        let g = CallGraph::build(&ctxs);
        (ctxs, g)
    }

    fn node_named(ctxs: &[FileContext], g: &CallGraph, name: &str) -> usize {
        (0..g.len())
            .find(|&n| {
                let r = g.node(n);
                ctxs[r.file].parsed.fns[r.f].name == name
            })
            .unwrap_or_else(|| panic!("node `{name}` must exist"))
    }

    #[test]
    fn free_and_qualified_calls_resolve() {
        let (ctxs, g) = graph_of(&[(
            "a.rs",
            "
            fn top() { helper(); Registry::fetch(); }
            fn helper() {}
            struct Registry;
            impl Registry { fn fetch() {} }
            ",
        )]);
        let top = node_named(&ctxs, &g, "top");
        let helper = node_named(&ctxs, &g, "helper");
        let fetch = node_named(&ctxs, &g, "fetch");
        assert_eq!(g.callees(top), &[helper, fetch]);
    }

    #[test]
    fn receiver_type_heuristic_prefers_matching_impl() {
        // Two `forward` impls: `node_mlp.forward()` must resolve to
        // Mlp::forward only, NOT to Layer::forward (whose transitive
        // effects would differ).
        let (ctxs, g) = graph_of(&[(
            "a.rs",
            "
            struct Mlp; struct Layer;
            impl Mlp { fn forward(&self) {} }
            impl Layer { fn forward(&self) { blocking_sync(); } }
            fn blocking_sync() {}
            fn caller(node_mlp: &Mlp) { node_mlp.forward(); }
            ",
        )]);
        let caller = node_named(&ctxs, &g, "caller");
        let mlp_fwd = (0..g.len())
            .find(|&n| {
                let r = g.node(n);
                let f = &ctxs[r.file].parsed.fns[r.f];
                f.name == "forward" && f.self_ty.as_deref() == Some("Mlp")
            })
            .expect("Mlp::forward node");
        assert_eq!(g.callees(caller), &[mlp_fwd]);
    }

    #[test]
    fn untyped_receiver_fallback_stays_in_crate() {
        // `pool.take()` where no known type matches `pool`: the
        // fallback may bind any same-crate `take`, but must NOT cross
        // into another crate (that's how Option::take-shaped calls in
        // crates/tensor were binding blocking comm ops in crates/comm).
        let (ctxs, g) = graph_of(&[
            (
                "crates/tensor/src/tape.rs",
                "
                struct BufPool;
                impl BufPool { fn take(&mut self) {} }
                fn value_copy(pool: &mut BufPool) { pool.take(); }
                ",
            ),
            (
                "crates/comm/src/backend.rs",
                "
                struct ThreadRecvOp;
                impl ThreadRecvOp { fn take(&mut self) { recv(); } }
                fn recv() {}
                ",
            ),
        ]);
        let copy = node_named(&ctxs, &g, "value_copy");
        let pool_take = (0..g.len())
            .find(|&n| {
                let r = g.node(n);
                let f = &ctxs[r.file].parsed.fns[r.f];
                f.name == "take" && f.self_ty.as_deref() == Some("BufPool")
            })
            .expect("BufPool::take node");
        assert_eq!(g.callees(copy), &[pool_take]);
    }

    #[test]
    fn self_calls_prefer_own_impl_and_fall_back_across_files() {
        let (ctxs, g) = graph_of(&[
            (
                "a.rs",
                "
                struct A;
                impl A {
                    fn run(&self) { self.step(); }
                    fn step(&self) {}
                }
                ",
            ),
            (
                "b.rs",
                "
                struct B;
                impl B { fn step(&self) {} }
                fn poke(b: &B) { b.step(); }
                ",
            ),
        ]);
        let run = node_named(&ctxs, &g, "run");
        let a_step = (0..g.len())
            .find(|&n| {
                let r = g.node(n);
                let f = &ctxs[r.file].parsed.fns[r.f];
                f.name == "step" && f.self_ty.as_deref() == Some("A")
            })
            .expect("A::step node");
        assert_eq!(g.callees(run), &[a_step], "self.step() stays in impl A");
        // `b.step()` matches B via the snake_case heuristic… which here
        // ("b" vs "B") falls back to all candidates — over-approximation
        // is the documented contract.
        let poke = node_named(&ctxs, &g, "poke");
        assert!(!g.callees(poke).is_empty());
    }

    #[test]
    fn reachability_paths_are_reconstructible() {
        let (ctxs, g) = graph_of(&[(
            "a.rs",
            "
            fn entry() { middle(); }
            fn middle() { deep(); }
            fn deep() { hazard(); }
            fn hazard() {}
            ",
        )]);
        let entry = node_named(&ctxs, &g, "entry");
        let hazard = node_named(&ctxs, &g, "hazard");
        let path = g
            .find_path(entry, |n| n == hazard, |_| false)
            .expect("hazard is reachable");
        let names: Vec<&str> = path
            .iter()
            .map(|&n| {
                let r = g.node(n);
                ctxs[r.file].parsed.fns[r.f].name.as_str()
            })
            .collect();
        assert_eq!(names, ["entry", "middle", "deep", "hazard"]);
    }

    #[test]
    fn test_fns_contribute_no_nodes() {
        let (ctxs, g) = graph_of(&[(
            "a.rs",
            "
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn live() { hazard_only_in_tests(); }
            }
            ",
        )]);
        assert_eq!(g.len(), 1, "only the live fn is a node");
        assert_eq!(node_named(&ctxs, &g, "live"), 0);
    }
}
