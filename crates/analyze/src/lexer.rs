//! A minimal Rust lexer: just enough token structure for detlint's rules.
//!
//! The lexer understands comments (line, nested block), string/char/byte
//! literals (including raw strings), lifetimes, identifiers, numbers, and
//! single-character punctuation. It deliberately does **not** build an
//! AST: every rule in detlint is expressible over the token stream plus
//! the lightweight scopes recovered by [`crate::context`]. Comments are
//! returned out-of-band so rules never see them (doc-comment code
//! examples cannot trip a rule) while the suppression scanner still can.

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// Token payload kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword. Raw identifiers keep their `r#` prefix
    /// (`r#fn` is an *identifier*, never the `fn` keyword), so structure
    /// recovery cannot mistake an escaped keyword for the real thing.
    Ident(String),
    /// String literal (cooked or raw); payload is the raw source slice
    /// between the delimiters, escapes unprocessed.
    Str(String),
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal. Floats and exponents are one token (`1.5`,
    /// `1e-3`, `2.5e+7`); a range like `1..2` stays `Num`, `.`, `.`,
    /// `Num` because the `.` is only folded in when a digit follows it.
    Num,
    /// Any other single character. Multi-character operators (`>>`, `->`,
    /// `::`) are deliberately left as individual characters: generic
    /// nesting like `Vec<Vec<f64>>` closes with two separate `>` tokens,
    /// so consumers never need to split a shift token.
    Punct(char),
}

/// A comment, returned separately from the token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Text after the `//` / between `/* */`, including doc-comment
    /// markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// Lex `src` into (tokens, comments). Invalid input never panics: the
/// lexer treats anything unrecognized as punctuation and keeps going, so
/// detlint degrades to fewer findings rather than crashing on exotic
/// syntax.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    line_has_code: bool,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            line_has_code: false,
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
                self.line_has_code = false;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32, col: u32) {
        self.line_has_code = true;
        self.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col, false),
                'r' | 'b' if self.raw_or_byte_string(line, col) => {}
                'r' if self.raw_ident_ahead() => self.raw_ident(line, col),
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), line, col);
                }
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let own_line = !self.line_has_code;
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            text,
            line,
            own_line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let own_line = !self.line_has_code;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.comments.push(Comment {
            text,
            line,
            own_line,
        });
    }

    fn string(&mut self, line: u32, col: u32, raw: bool) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' && !raw {
                self.bump();
                if let Some(esc) = self.peek(0) {
                    text.push('\\');
                    text.push(esc);
                    self.bump();
                }
                continue;
            }
            if c == '"' {
                self.bump();
                self.push(Tok::Str(text), line, col);
                return;
            }
            text.push(c);
            self.bump();
        }
        // Unterminated string: emit what we have.
        self.push(Tok::Str(text), line, col);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`. Returns false when the
    /// leading `r`/`b` is actually an identifier start.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut j = 1; // past the r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            j = 2;
        }
        let mut hashes = 0usize;
        while self.peek(j + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(j + hashes) != Some('"') {
            return false;
        }
        for _ in 0..j + hashes + 1 {
            self.bump();
        }
        let mut text = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    // A raw string ends at `"` followed by `hashes` #s.
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes + 1 {
                            self.bump();
                        }
                        break;
                    }
                    text.push('"');
                    self.bump();
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(Tok::Str(text), line, col);
        true
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'a` lifetime vs `'a'` char: a lifetime is `'` + ident NOT
        // followed by a closing `'`.
        if self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_') {
            let mut j = 2;
            while self
                .peek(j)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                j += 1;
            }
            if self.peek(j) != Some('\'') {
                for _ in 0..j {
                    self.bump();
                }
                self.push(Tok::Lifetime, line, col);
                return;
            }
        }
        // Char literal: consume until the closing quote, honoring escapes.
        self.bump(); // opening '
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump(); // escaped char
        } else {
            self.bump(); // the char
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.push(Tok::Char, line, col);
    }

    /// True when the cursor sits on `r#ident` (a raw identifier). Raw
    /// *strings* (`r#"…"#`) are claimed by [`Self::raw_or_byte_string`]
    /// first, so here a `#` followed by an identifier start is decisive.
    fn raw_ident_ahead(&self) -> bool {
        self.peek(1) == Some('#') && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
    }

    /// Lex `r#name` as the single identifier `r#name`. Keeping the `r#`
    /// prefix means an escaped keyword (`r#fn`, `r#match`) never compares
    /// equal to the keyword itself, so structure recovery in
    /// [`crate::context`]/[`crate::parser`] cannot see a phantom item.
    fn raw_ident(&mut self, line: u32, col: u32) {
        let mut name = String::from("r#");
        self.bump(); // r
        self.bump(); // #
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line, col);
    }

    /// Lex a numeric literal as ONE token, including fraction and signed
    /// exponent (`1.5`, `1e-3`, `2.5E+7`, `1_000.25`). The `.` is folded
    /// in only when a digit follows it and the literal has no `.` yet, so
    /// a range `1..2` keeps its two `.` puncts and a tuple access `t.0`
    /// keeps the field number separate from the receiver.
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        loop {
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let radix_prefixed =
                text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o");
            // Signed exponent: `1e` / `2.5E` followed by `+`/`-` digit.
            if !radix_prefixed
                && (text.ends_with('e') || text.ends_with('E'))
                && matches!(self.peek(0), Some('+' | '-'))
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                text.push(self.bump().unwrap_or('-'));
                continue;
            }
            // Fraction: `.` + digit, at most once, never after 0x/0b/0o.
            if !radix_prefixed
                && !text.contains('.')
                && self.peek(0) == Some('.')
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                self.bump();
                text.push('.');
                continue;
            }
            break;
        }
        self.push(Tok::Num, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_out_of_band() {
        let (toks, comments) = lex("let x = 1; // trailing .unwrap()\n/* block */ let y = 2;");
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].own_line);
        assert!(comments[1].own_line);
        assert!(toks
            .iter()
            .all(|t| !matches!(&t.kind, Tok::Ident(s) if s == "unwrap")));
    }

    #[test]
    fn doc_comment_examples_do_not_leak_tokens() {
        let src = "/// let v = map.iter().unwrap();\nfn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let (toks, _) = lex(r##"let s = r#"a "quoted" b"#; let t = "esc \" done";"##);
        let strs: Vec<&String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0], "a \"quoted\" b");
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // `r#fn` must not decay into `r`, `#`, `fn` — the phantom `fn`
        // keyword would corrupt item recovery downstream.
        assert_eq!(idents("fn r#fn() {}"), vec!["fn", "r#fn"]);
        assert_eq!(
            idents("let r#match = r#loop;"),
            vec!["let", "r#match", "r#loop"]
        );
        // Raw *strings* still win over raw identifiers…
        let (toks, _) = lex(r###"let s = r#"text"#;"###);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, Tok::Str(s) if s == "text")));
        // …and a bare `r` stays an ordinary identifier.
        assert_eq!(idents("let r = 1;"), vec!["let", "r"]);
    }

    #[test]
    fn floats_and_ranges_disambiguate() {
        let kinds = |src: &str| -> Vec<Tok> { lex(src).0.into_iter().map(|t| t.kind).collect() };
        // One Num per float, exponent sign included.
        assert_eq!(kinds("1.5"), vec![Tok::Num]);
        assert_eq!(kinds("1e-3"), vec![Tok::Num]);
        assert_eq!(kinds("2.5E+7"), vec![Tok::Num]);
        assert_eq!(kinds("1_000.25"), vec![Tok::Num]);
        // A range keeps both dots as punctuation.
        assert_eq!(
            kinds("1..2"),
            vec![Tok::Num, Tok::Punct('.'), Tok::Punct('.'), Tok::Num]
        );
        assert_eq!(
            kinds("0..=10"),
            vec![
                Tok::Num,
                Tok::Punct('.'),
                Tok::Punct('.'),
                Tok::Punct('='),
                Tok::Num
            ]
        );
        // Hex literals never absorb an exponent-looking suffix.
        assert_eq!(kinds("0x1e-3"), vec![Tok::Num, Tok::Punct('-'), Tok::Num]);
        // Method call on a float: the receiver stays one Num token.
        assert_eq!(
            kinds("0.5.max(x)"),
            vec![
                Tok::Num,
                Tok::Punct('.'),
                Tok::Ident("max".into()),
                Tok::Punct('('),
                Tok::Ident("x".into()),
                Tok::Punct(')')
            ]
        );
    }

    #[test]
    fn nested_generic_close_stays_two_tokens() {
        // `>>` must close two generic depths, not lex as a shift token.
        let (toks, _) = lex("let m: BTreeMap<String, Vec<Vec<f64>>> = x;");
        let closes = toks.iter().filter(|t| t.kind == Tok::Punct('>')).count();
        assert_eq!(closes, 3);
        // Depth bookkeeping over the token stream balances to zero.
        let mut depth = 0i32;
        for t in &toks {
            match t.kind {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn positions_are_one_based() {
        let (toks, _) = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
