//! Per-file analysis context: the token stream plus the lightweight
//! structure every rule needs — `#[cfg(test)]`/`#[test]` regions, function
//! spans (for per-function rules and constructor exemptions), and parsed
//! `// detlint: allow(rule, "reason")` suppressions.

use crate::lexer::{lex, Comment, Tok, Token};

/// What kind of source a file is; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A library target (`crates/*/src/**` except `src/bin`, root `src/`).
    Lib,
    /// A binary target (`src/bin/**`, `src/main.rs`).
    Bin,
    /// An example (`examples/**`).
    Example,
    /// Test-like code: integration `tests/**`, `benches/**`.
    Test,
}

/// A half-open token-index span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index of the span.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    /// Whether token index `i` lies inside the span.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// A function item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Span covering the whole item from the `fn` keyword.
    pub span: Span,
}

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
}

/// A malformed suppression comment (missing rule or missing/empty
/// reason) — reported as a diagnostic by the engine, because reasonless
/// suppressions defeat the whole point of mandatory justifications.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// 1-based line of the malformed comment.
    pub line: u32,
    /// Why it is malformed.
    pub why: &'static str,
}

/// Everything the rules need about one file.
pub struct FileContext {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The file's role.
    pub kind: FileKind,
    /// Comment-free token stream.
    pub tokens: Vec<Token>,
    /// Source lines, for diagnostics snippets.
    pub lines: Vec<String>,
    /// Token spans under `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<Span>,
    /// All function items, outermost first.
    pub fns: Vec<FnSpan>,
    /// Well-formed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression comments.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Structural recovery: fn items with calls/panics, rank-conditioned
    /// branch spans (see [`crate::parser`]).
    pub parsed: crate::parser::ParsedFile,
}

impl FileContext {
    /// Lex and structure `src`.
    pub fn new(path: &str, kind: FileKind, src: &str) -> Self {
        let (tokens, comments) = lex(src);
        let test_spans = find_test_spans(&tokens);
        let fns = find_fns(&tokens);
        let (suppressions, bad_suppressions) = parse_suppressions(&comments);
        let parsed = crate::parser::parse(&tokens, &comments);
        FileContext {
            path: path.to_string(),
            kind,
            tokens,
            lines: src.lines().map(|l| l.to_string()).collect(),
            test_spans,
            fns,
            suppressions,
            bad_suppressions,
            parsed,
        }
    }

    /// Whether token index `i` is inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.kind == FileKind::Test || self.test_spans.iter().any(|s| s.contains(i))
    }

    /// Innermost function containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        // fns is in source order; the innermost match is the one with the
        // largest start among those containing i.
        self.fns
            .iter()
            .filter(|f| f.span.contains(i))
            .max_by_key(|f| f.span.start)
    }

    /// Whether a finding of `rule` at `line` is suppressed: a suppression
    /// comment covers its own line and the line immediately below it (the
    /// conventional "comment above the offending line" placement).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }

    /// The trimmed source line for a diagnostic snippet.
    pub fn snippet(&self, line: u32) -> String {
        let text = self
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or_default();
        let mut s: String = text.chars().take(96).collect();
        if s.len() < text.len() {
            s.push('\u{2026}');
        }
        s
    }
}

/// Matching an identifier token.
pub fn is_ident(tok: &Token, name: &str) -> bool {
    matches!(&tok.kind, Tok::Ident(s) if s == name)
}

/// The identifier payload, if this token is one.
pub fn ident_of(tok: &Token) -> Option<&str> {
    match &tok.kind {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Whether the token is a specific punctuation character.
pub fn is_punct(tok: &Token, c: char) -> bool {
    matches!(tok.kind, Tok::Punct(p) if p == c)
}

/// Find the token index of the brace matching the `{` at `open` (which
/// must point at a `{`); returns the index one past the matching `}` — or
/// the end of the stream for unbalanced input.
fn matching_brace_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Token spans of items attributed `#[test]` or `#[cfg(test)]` (but not
/// `#[cfg(not(test))]`). The span runs from the attribute to the end of
/// the following item's braces (or its terminating `;`).
fn find_test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(&tokens[i], '#') || i + 1 >= tokens.len() || !is_punct(&tokens[i + 1], '[') {
            i += 1;
            continue;
        }
        // Collect idents inside the attribute's brackets.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) => idents.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then span the item body.
        let mut k = j;
        while k + 1 < tokens.len() && is_punct(&tokens[k], '#') && is_punct(&tokens[k + 1], '[') {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                match tokens[k].kind {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Find the item's opening brace (or `;` for brace-less items).
        let mut open = k;
        while open < tokens.len() && !is_punct(&tokens[open], '{') && !is_punct(&tokens[open], ';')
        {
            open += 1;
        }
        let end = if open < tokens.len() && is_punct(&tokens[open], '{') {
            matching_brace_end(tokens, open)
        } else {
            open.saturating_add(1).min(tokens.len())
        };
        spans.push(Span { start: i, end });
        i = end;
    }
    spans
}

/// Recover all `fn name … { … }` items (including nested ones).
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(&tokens[i], "fn") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(ident_of) else {
            continue;
        };
        // First `{` outside parens/brackets opens the body (skips the
        // parameter list, return type, and where clauses).
        let mut depth = 0i32;
        let mut open = None;
        for (j, t) in tokens.iter().enumerate().skip(i + 2) {
            match t.kind {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                // A `;` at depth 0 means a body-less fn (trait method).
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
        }
        if let Some(open) = open {
            fns.push(FnSpan {
                name: name.to_string(),
                span: Span {
                    start: i,
                    end: matching_brace_end(tokens, open),
                },
            });
        }
    }
    fns
}

/// Parse `detlint: allow(rule, "reason")` comments. The reason is
/// mandatory and must be a non-empty quoted string.
fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Only comments that *start* with the marker are suppressions;
        // prose that merely mentions `detlint:` (doc comments, this very
        // function) is not.
        let Some(rest) = c.text.trim_start().strip_prefix("detlint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            bad.push(BadSuppression {
                line: c.line,
                why: "expected `detlint: allow(<rule>, \"<reason>\")`",
            });
            continue;
        };
        let Some((rule, reason)) = args.split_once(',') else {
            bad.push(BadSuppression {
                line: c.line,
                why: "suppression must carry a reason: `allow(<rule>, \"<reason>\")`",
            });
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        let documented = reason.len() > 2 && reason.starts_with('"') && reason.ends_with('"');
        if rule.is_empty() || !documented {
            bad.push(BadSuppression {
                line: c.line,
                why: "suppression reason must be a non-empty quoted string",
            });
            continue;
        }
        good.push(Suppression {
            line: c.line,
            rule: rule.to_string(),
        });
    }
    (good, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn inner() { x.iter(); }\n}\n";
        let ctx = FileContext::new("a.rs", FileKind::Lib, src);
        let iter_idx = ctx
            .tokens
            .iter()
            .position(|t| is_ident(t, "iter"))
            .expect("iter token present");
        assert!(ctx.in_test(iter_idx));
        assert!(!ctx.in_test(0));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nmod live { fn f() { x.iter(); } }\n";
        let ctx = FileContext::new("a.rs", FileKind::Lib, src);
        assert!(ctx.test_spans.is_empty());
    }

    #[test]
    fn test_attr_fn_is_covered() {
        let src = "#[test]\nfn check() { map.keys(); }\nfn live() {}\n";
        let ctx = FileContext::new("a.rs", FileKind::Lib, src);
        let keys_idx = ctx
            .tokens
            .iter()
            .position(|t| is_ident(t, "keys"))
            .expect("keys token present");
        assert!(ctx.in_test(keys_idx));
        let live_idx = ctx
            .tokens
            .iter()
            .position(|t| is_ident(t, "live"))
            .expect("live token present");
        assert!(!ctx.in_test(live_idx));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() { fn inner() { body(); } }";
        let ctx = FileContext::new("a.rs", FileKind::Lib, src);
        let body_idx = ctx
            .tokens
            .iter()
            .position(|t| is_ident(t, "body"))
            .expect("body token present");
        assert_eq!(
            ctx.enclosing_fn(body_idx).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn suppressions_require_reasons() {
        let src = "\
// detlint: allow(nondet-iteration, \"keys sorted on the next line\")\n\
// detlint: allow(unwrap-in-lib)\n\
// detlint: allow(hotpath-alloc, \"\")\n";
        let ctx = FileContext::new("a.rs", FileKind::Lib, src);
        assert_eq!(ctx.suppressions.len(), 1);
        assert_eq!(ctx.bad_suppressions.len(), 2);
        assert!(ctx.suppressed("nondet-iteration", 1));
        assert!(ctx.suppressed("nondet-iteration", 2));
        assert!(!ctx.suppressed("nondet-iteration", 3));
    }
}
