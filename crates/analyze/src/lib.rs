//! # cgnn-analyze — "detlint"
//!
//! A self-contained static analyzer for this workspace's determinism and
//! hot-path invariants. It lexes every crate's Rust sources with a
//! hand-rolled lexer ([`lexer`]), recovers lightweight structure
//! ([`context`]: test regions, fn spans, suppressions), and runs a
//! pluggable rule set ([`rules`]) producing rich diagnostics with
//! file:line:col positions, source snippets, and docs links.
//!
//! Since v2 the engine is *interprocedural*: a lightweight parser
//! ([`parser`]) recovers items, call expressions, and branch structure,
//! and a workspace-wide call graph ([`callgraph`]) with receiver-type
//! heuristic resolution lets rules reason about **reachability** of
//! hazards, not just tokens.
//!
//! Rules (see `docs/ANALYSIS.md` for rationale):
//!
//! | rule | invariant |
//! |---|---|
//! | `nondet-iteration` | no HashMap/HashSet iteration in lib code |
//! | `atomic-in-kernel` | tensor kernels stay atomics- and `unsafe`-free |
//! | `float-reduction-order` | parallel float reductions only in audited kernels |
//! | `hotpath-alloc` | no ad-hoc allocation in hot modules (use the pool) |
//! | `unwrap-in-lib` | no `unwrap()`/`panic!` without a documented invariant |
//! | `env-var-registry` | every env read names a registered knob |
//! | `lock-discipline` | no lock acquisition-order cycles in cgnn-comm |
//! | `collective-divergence` | no collective reachable under a rank-conditioned branch |
//! | `blocking-in-overlap-window` | no blocking comm between `begin` and `finish` |
//! | `hotpath-reachability` | no per-call allocation reachable from hot-path code |
//! | `panic-reachability` | public API reaching a panic documents `# Panics` |
//!
//! False positives are silenced *per site* with
//! `// detlint: allow(<rule>, "<reason>")` — the reason is mandatory, so
//! every suppression documents its own hazard analysis. Malformed
//! suppressions are themselves diagnostics (`suppression-syntax`).

#![warn(missing_docs)]

pub mod callgraph;
pub mod context;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::Value;

pub use callgraph::{CallGraph, Workspace};
use context::{FileContext, FileKind};
pub use rules::{Config, Finding};

/// A fully rendered diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (also the suppression key and docs anchor).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Where the rule is documented.
    pub docs: String,
}

impl Diagnostic {
    /// Render as the human-readable two-line form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    | {}\n    = docs: {}",
            self.path, self.line, self.col, self.rule, self.message, self.snippet, self.docs
        )
    }
}

/// Result of one analyzer run.
pub struct Report {
    /// All diagnostics, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Keep only diagnostics whose path is in `keep`, for
    /// `--changed-only` mode. The full workspace is still *analyzed*
    /// (so the call graph stays sound); this filters what is reported.
    /// `files_scanned` is unchanged — it counts analysis, not output.
    pub fn retain_paths(&mut self, keep: &std::collections::BTreeSet<String>) {
        self.diagnostics.retain(|d| keep.contains(&d.path));
    }

    /// Render the report as a JSON value tree (stable field order).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "files_scanned".into(),
                Value::Int(self.files_scanned as i64),
            ),
            ("count".into(), Value::Int(self.diagnostics.len() as i64)),
            (
                "diagnostics".into(),
                Value::Array(
                    self.diagnostics
                        .iter()
                        .map(|d| {
                            Value::Object(vec![
                                ("rule".into(), Value::String(d.rule.clone())),
                                ("path".into(), Value::String(d.path.clone())),
                                ("line".into(), Value::Int(d.line as i64)),
                                ("col".into(), Value::Int(d.col as i64)),
                                ("snippet".into(), Value::String(d.snippet.clone())),
                                ("message".into(), Value::String(d.message.clone())),
                                ("docs".into(), Value::String(d.docs.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "shims", ".git", "fixtures", "results"];

/// Classify a workspace-relative path into a [`FileKind`].
pub fn classify(rel: &str) -> FileKind {
    if rel.contains("/tests/") || rel.starts_with("tests/") || rel.contains("/benches/") {
        FileKind::Test
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// The analyzer: owns the rule set and configuration.
pub struct Engine {
    cfg: Config,
}

impl Engine {
    /// Build an engine with the given configuration. The env-var registry
    /// is loaded lazily from `cfg.registry_files` during
    /// [`Engine::analyze_workspace`].
    pub fn new(cfg: Config) -> Self {
        Engine { cfg }
    }

    /// Read the env-knob registry file(s) under `root` and record every
    /// `name: "<VAR>"` field, so `env-var-registry` can cross-check
    /// literal reads anywhere in the workspace (including crates that
    /// cannot depend on cgnn-core).
    fn load_registry(&mut self, root: &Path) {
        for rel in self.cfg.registry_files.clone() {
            let Ok(src) = fs::read_to_string(root.join(&rel)) else {
                continue;
            };
            let (tokens, _) = lexer::lex(&src);
            for i in 0..tokens.len() {
                if context::is_ident(&tokens[i], "name")
                    && tokens.get(i + 1).is_some_and(|t| context::is_punct(t, ':'))
                {
                    if let Some(lexer::Tok::Str(s)) = tokens.get(i + 2).map(|t| &t.kind) {
                        self.cfg.registered_env.insert(s.clone());
                    }
                }
            }
        }
    }

    /// Analyze one already-loaded file, returning rendered diagnostics
    /// (suppressions applied). The file forms a one-file workspace, so
    /// the interprocedural rules run over its local call graph.
    pub fn analyze_source(&self, path: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
        self.analyze_sources(&[(path.to_string(), kind, src.to_string())])
    }

    /// Analyze a set of already-loaded files as one workspace: per-file
    /// rules, then the call-graph pass over all of them together. Used
    /// directly by the fixture tests (whose interprocedural fixtures
    /// span files) and by [`Engine::analyze_workspace`].
    pub fn analyze_sources(&self, files: &[(String, FileKind, String)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileContext> = files
            .iter()
            .map(|(path, kind, src)| FileContext::new(path, *kind, src))
            .collect();
        self.run_rules(&ctxs)
    }

    /// The shared rule pipeline: per-file checks, the workspace
    /// call-graph pass, finalizers, rendering, suppression application.
    fn run_rules(&self, ctxs: &[FileContext]) -> Vec<Diagnostic> {
        let mut rules = rules::all_rules();
        let mut findings = Vec::new();
        for ctx in ctxs {
            for r in rules.iter_mut() {
                r.check(ctx, &self.cfg, &mut findings);
            }
        }
        let ws = Workspace::new(ctxs);
        for r in rules.iter_mut() {
            r.check_workspace(&ws, &self.cfg, &mut findings);
        }
        for r in rules.iter_mut() {
            r.finalize(&self.cfg, &mut findings);
        }
        let mut diagnostics = render(findings, |p| ctxs.iter().find(|c| c.path == p));
        for ctx in ctxs {
            diagnostics.extend(bad_suppression_diags(ctx));
        }
        sort_diags(&mut diagnostics);
        diagnostics
    }

    /// Walk the workspace at `root`, analyze every `.rs` file outside
    /// `target`/`shims`/fixtures, and return the sorted report.
    pub fn analyze_workspace(&mut self, root: &Path) -> io::Result<Report> {
        self.load_registry(root);
        let mut files = Vec::new();
        walk(root, &mut files)?;
        files.sort();

        let mut ctxs: Vec<FileContext> = Vec::with_capacity(files.len());
        for f in &files {
            let src = fs::read_to_string(f)?;
            let rel = f
                .strip_prefix(root)
                .unwrap_or(f)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = classify(&rel);
            ctxs.push(FileContext::new(&rel, kind, &src));
        }

        let diagnostics = self.run_rules(&ctxs);
        Ok(Report {
            diagnostics,
            files_scanned: ctxs.len(),
        })
    }
}

/// Apply suppressions and attach snippets/docs links.
fn render<'a>(
    findings: Vec<Finding>,
    lookup: impl Fn(&str) -> Option<&'a FileContext>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in findings {
        let Some(ctx) = lookup(&f.path) else { continue };
        if ctx.suppressed(f.rule, f.line) {
            continue;
        }
        out.push(Diagnostic {
            rule: f.rule.to_string(),
            path: f.path,
            line: f.line,
            col: f.col,
            snippet: ctx.snippet(f.line),
            message: f.message,
            docs: format!("docs/ANALYSIS.md#{}", f.rule),
        });
    }
    out
}

/// Malformed suppressions become diagnostics themselves (and cannot be
/// suppressed).
fn bad_suppression_diags(ctx: &FileContext) -> Vec<Diagnostic> {
    ctx.bad_suppressions
        .iter()
        .map(|b| Diagnostic {
            rule: "suppression-syntax".into(),
            path: ctx.path.clone(),
            line: b.line,
            col: 1,
            snippet: ctx.snippet(b.line),
            message: b.why.to_string(),
            docs: "docs/ANALYSIS.md#suppressions".into(),
        })
        .collect()
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_by_path() {
        assert_eq!(classify("crates/tensor/src/tape.rs"), FileKind::Lib);
        assert_eq!(classify("crates/core/tests/consistency.rs"), FileKind::Test);
        assert_eq!(classify("tests/integration.rs"), FileKind::Test);
        assert_eq!(classify("examples/tgv_surrogate.rs"), FileKind::Example);
        assert_eq!(classify("crates/bench/src/bin/hotpath.rs"), FileKind::Bin);
        assert_eq!(classify("src/main.rs"), FileKind::Bin);
    }

    #[test]
    fn suppression_silences_and_bad_suppression_reports() {
        let engine = Engine::new(Config::default());
        let src = "\
// detlint: allow(unwrap-in-lib, \"demo: the value is checked two lines up\")\n\
fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = engine.analyze_source("demo.rs", FileKind::Lib, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unwrap-in-lib");
        assert_eq!(diags[0].line, 3);

        let bad = "// detlint: allow(unwrap-in-lib)\nfn f() {}\n";
        let diags = engine.analyze_source("demo.rs", FileKind::Lib, bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "suppression-syntax");
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "unwrap-in-lib".into(),
                path: "a.rs".into(),
                line: 3,
                col: 7,
                snippet: "x.unwrap()".into(),
                message: "m".into(),
                docs: "docs/ANALYSIS.md#unwrap-in-lib".into(),
            }],
            files_scanned: 1,
        };
        let json = serde_json::to_string(&report.to_json()).expect("value tree always serializes");
        assert!(json.contains("\"files_scanned\":1"));
        assert!(json.contains("\"rule\":\"unwrap-in-lib\""));
        assert!(json.contains("\"line\":3"));
    }
}
