//! detlint CLI.
//!
//! ```text
//! cargo run -p cgnn-analyze -- --workspace [--deny] [--json] [--root <path>]
//!                              [--changed-only [--changed-base <ref>]]
//! ```
//!
//! Human mode prints one rich diagnostic per finding plus a summary line;
//! `--json` prints a machine-readable report. With `--deny`, any finding
//! makes the process exit 1 (the CI gate). `--changed-only` still scans
//! the whole workspace (the interprocedural rules need the full call
//! graph) but reports only diagnostics in files that differ from
//! `--changed-base` (default `HEAD`) or are untracked.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cgnn_analyze::{Config, Engine};

fn usage() -> &'static str {
    "detlint — determinism & hot-path lints for the cgnn workspace\n\
     \n\
     USAGE: cgnn-analyze --workspace [--deny] [--json] [--root <path>]\n\
     \u{20}                           [--changed-only [--changed-base <ref>]]\n\
     \n\
     OPTIONS:\n\
       --workspace           scan every crate in the workspace (required)\n\
       --deny                exit nonzero when any diagnostic is produced\n\
       --json                emit the report as JSON instead of human text\n\
       --root <path>         workspace root (default: the checkout containing\n\
                             this crate, via CARGO_MANIFEST_DIR)\n\
       --changed-only        report only diagnostics in files changed vs the\n\
                             base ref (plus untracked files); the full\n\
                             workspace is still analyzed so call-graph rules\n\
                             stay sound. Falls back to the full report when\n\
                             git is unavailable.\n\
       --changed-base <ref>  base ref for --changed-only (default: HEAD)\n\
     \n\
     Rules and suppression syntax: docs/ANALYSIS.md"
}

/// Files changed relative to `base`, plus untracked files, as paths
/// relative to `root` with forward slashes — the same shape diagnostics
/// carry. `None` when git can't answer (not a repo, no git binary).
fn changed_paths(root: &Path, base: &str) -> Option<BTreeSet<String>> {
    let mut keep = BTreeSet::new();
    for extra_args in [
        vec!["diff", "--name-only", base],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(&extra_args)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                keep.insert(line.replace('\\', "/"));
            }
        }
    }
    Some(keep)
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut changed_only = false;
    let mut changed_base = String::from("HEAD");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--json" => json = true,
            "--changed-only" => changed_only = true,
            "--changed-base" => match args.next() {
                Some(r) => changed_base = r,
                None => {
                    eprintln!("error: --changed-base requires a git ref\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!(
            "error: pass --workspace to scan the workspace\n\n{}",
            usage()
        );
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(|| {
        // This crate lives at <root>/crates/analyze.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });

    let mut engine = Engine::new(Config::default());
    let mut report = match engine.analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if changed_only {
        match changed_paths(&root, &changed_base) {
            Some(keep) => report.retain_paths(&keep),
            None => eprintln!(
                "warning: --changed-only: git diff against `{changed_base}` \
                 failed; reporting the full workspace"
            ),
        }
    }

    if json {
        match serde_json::to_string_pretty(&report.to_json()) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: JSON rendering failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &report.diagnostics {
            println!("{}\n", d.render());
        }
        println!(
            "detlint: scanned {} files, {} diagnostic{}",
            report.files_scanned,
            report.diagnostics.len(),
            if report.diagnostics.len() == 1 {
                ""
            } else {
                "s"
            }
        );
    }

    if deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
