//! detlint CLI.
//!
//! ```text
//! cargo run -p cgnn-analyze -- --workspace [--deny] [--json] [--root <path>]
//! ```
//!
//! Human mode prints one rich diagnostic per finding plus a summary line;
//! `--json` prints a machine-readable report. With `--deny`, any finding
//! makes the process exit 1 (the CI gate).

use std::path::PathBuf;
use std::process::ExitCode;

use cgnn_analyze::{Config, Engine};

fn usage() -> &'static str {
    "detlint — determinism & hot-path lints for the cgnn workspace\n\
     \n\
     USAGE: cgnn-analyze --workspace [--deny] [--json] [--root <path>]\n\
     \n\
     OPTIONS:\n\
       --workspace    scan every crate in the workspace (required)\n\
       --deny         exit nonzero when any diagnostic is produced\n\
       --json         emit the report as JSON instead of human text\n\
       --root <path>  workspace root (default: the checkout containing\n\
                      this crate, via CARGO_MANIFEST_DIR)\n\
     \n\
     Rules and suppression syntax: docs/ANALYSIS.md"
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!(
            "error: pass --workspace to scan the workspace\n\n{}",
            usage()
        );
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(|| {
        // This crate lives at <root>/crates/analyze.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });

    let mut engine = Engine::new(Config::default());
    let report = match engine.analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        match serde_json::to_string_pretty(&report.to_json()) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: JSON rendering failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &report.diagnostics {
            println!("{}\n", d.render());
        }
        println!(
            "detlint: scanned {} files, {} diagnostic{}",
            report.files_scanned,
            report.diagnostics.len(),
            if report.diagnostics.len() == 1 {
                ""
            } else {
                "s"
            }
        );
    }

    if deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
