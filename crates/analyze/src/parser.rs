//! Structure recovery over the token stream: items, call expressions,
//! and branch structure — the "recursive descent" layer detlint v2's
//! interprocedural rules are built on.
//!
//! This is deliberately **not** a full Rust parser. It recovers exactly
//! what the call-graph rules need:
//!
//! - every `fn` item with its name, enclosing `impl` type, visibility,
//!   parameter/body spans, and whether its doc comment has a `# Panics`
//!   section;
//! - every call expression inside each fn, classified by receiver shape
//!   (`free()`, `self.method()`, `var.method()`, `Type::assoc()`);
//! - every direct panic site (`panic!`/`todo!`/`unimplemented!`,
//!   `.unwrap()`);
//! - every branch body whose condition mentions `rank` (the spans the
//!   `collective-divergence` rule treats as rank-conditioned).
//!
//! Anything it cannot confidently classify it drops, so downstream rules
//! degrade to fewer findings rather than wrong ones.

use crate::context::{ident_of, is_ident, is_punct, Span};
use crate::lexer::{Comment, Tok, Token};

/// Everything recovered from one file's token stream.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All function items with bodies, in source order.
    pub fns: Vec<FnInfo>,
    /// Token spans of branch bodies guarded by a rank-dependent
    /// condition (`if comm.rank() == 0 { … }`, `match rank { … }`,
    /// including the `else`/`else if` arms of a rank-guarded `if`).
    pub rank_spans: Vec<Span>,
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// The `impl` type the fn is an associated item of, if any — the
    /// last path segment before generics (`impl foo::Bar<T>` → `Bar`;
    /// `impl Trait for Baz` → `Baz`).
    pub self_ty: Option<String>,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True when the doc comment block directly above the item contains
    /// a `# Panics` line — the fn documents its abort contract.
    pub doc_has_panics: bool,
    /// Whole item span, from the `fn` keyword to the closing brace.
    pub span: Span,
    /// Parameter-list tokens (inside the parens).
    pub params: Span,
    /// Body tokens (inside the braces).
    pub body: Span,
    /// Call expressions lexically inside this fn (innermost-fn wins for
    /// nested items; closure bodies belong to the enclosing fn).
    pub calls: Vec<CallSite>,
    /// Direct panic sites lexically inside this fn.
    pub panics: Vec<PanicSite>,
}

/// The receiver shape of a call expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `name(…)` — a free (or locally imported) function.
    Free,
    /// `self.name(…)` — a method on the enclosing impl type.
    SelfDot,
    /// `var.name(…)` — method call; payload is the base identifier of
    /// the receiver expression (`ctx.comm.barrier()` → `comm`).
    Var(String),
    /// `Type::name(…)` — associated call; payload is the qualifier's
    /// last ident (`Self` is resolved by the call graph).
    Ty(String),
}

/// One call expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (method or function).
    pub callee: String,
    /// Receiver shape, for heuristic resolution.
    pub recv: Receiver,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Argument tokens (inside the parens).
    pub args: Span,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
}

/// One direct panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Human label: `panic!`, `todo!`, `unimplemented!`, `.unwrap()`.
    pub what: &'static str,
    /// Token index of the site.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Names that look like calls syntactically but are control flow or
/// binding forms — never recorded as call sites.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "impl", "where", "in",
    "as", "move", "unsafe", "break", "continue", "use", "pub", "mod", "struct", "enum", "trait",
    "type", "dyn", "ref", "mut", "crate", "super", "self", "Self",
];

/// Parse a file's token stream (plus its out-of-band comments, for doc
/// sections) into [`ParsedFile`].
pub fn parse(tokens: &[Token], comments: &[Comment]) -> ParsedFile {
    let impls = find_impl_spans(tokens);
    let mut fns = find_fn_items(tokens, comments, &impls);
    let rank_spans = find_rank_spans(tokens);
    attribute_calls(tokens, &mut fns);
    ParsedFile { fns, rank_spans }
}

/// Index one past the token matching the opener at `open` (`open_c` …
/// `close_c`), or the end of the stream for unbalanced input.
fn matching_group_end(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct(c) if c == open_c => depth += 1,
            Tok::Punct(c) if c == close_c => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// One past the `>` closing the `<` at `open`. A `>` directly preceded
/// by `-` is the arrow of a fn-pointer type (`Fn(A) -> B`) inside the
/// generics, not a closer.
fn generic_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                if j > 0 && is_punct(&tokens[j - 1], '-') {
                    continue;
                }
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            Tok::Punct(';') | Tok::Punct('{') => return j, // bail: unbalanced
            _ => {}
        }
    }
    tokens.len()
}

/// `(self type name, body span)` for every `impl` block. The self type
/// is the last path segment before generics; `impl Trait for Type` takes
/// `Type`.
fn find_impl_spans(tokens: &[Token]) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(&tokens[i], "impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| is_punct(t, '<')) {
            j = generic_end(tokens, j);
        }
        let mut candidate: Option<String> = None;
        let mut angle = 0i32;
        let mut open = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !(j > 0 && is_punct(&tokens[j - 1], '-')) => angle -= 1,
                Tok::Punct('{') if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break, // `impl Trait for Type;` — no body
                Tok::Ident(s) if angle <= 0 => {
                    if s == "for" {
                        candidate = None;
                    } else if s == "where" {
                        // The where clause mentions other types; the self
                        // type is settled. Scan on for the brace only.
                        while j < tokens.len() && !is_punct(&tokens[j], '{') {
                            j += 1;
                        }
                        continue;
                    } else if candidate.is_none() || (j > 0 && is_punct(&tokens[j - 1], ':')) {
                        // First segment, or a later `::` path segment.
                        candidate = Some(s.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        match (candidate, open) {
            (Some(ty), Some(open)) => {
                let end = matching_group_end(tokens, open, '{', '}');
                out.push((ty, Span { start: open, end }));
                i = open + 1; // fns inside are found by the fn pass
            }
            _ => i = j.max(i + 1),
        }
    }
    out
}

/// Innermost impl block containing token `i`.
fn enclosing_impl(impls: &[(String, Span)], i: usize) -> Option<&str> {
    impls
        .iter()
        .filter(|(_, s)| s.contains(i))
        .max_by_key(|(_, s)| s.start)
        .map(|(ty, _)| ty.as_str())
}

/// Walk backwards from the `fn` keyword over visibility, qualifiers
/// (`const`/`async`/`unsafe`/`extern "C"`) and attributes to the first
/// token of the item. Returns `(item_start_token, is_pub)`.
fn item_start(tokens: &[Token], fn_idx: usize) -> (usize, bool) {
    let mut k = fn_idx;
    let mut is_pub = false;
    while k > 0 {
        let prev = k - 1;
        match &tokens[prev].kind {
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "pub"
                        | "const"
                        | "async"
                        | "unsafe"
                        | "extern"
                        | "crate"
                        | "super"
                        | "in"
                        | "default"
                ) =>
            {
                if s == "pub" {
                    // `pub(crate)`/`pub(super)` is restricted visibility.
                    is_pub = !tokens.get(k).is_some_and(|t| is_punct(t, '('));
                }
                k = prev;
            }
            Tok::Str(_) => k = prev, // extern "C"
            Tok::Punct(')') => {
                // The parens of a restricted visibility: rewind to `(`.
                let mut depth = 1usize;
                let mut j = prev;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                k = j;
            }
            Tok::Punct(']') => {
                // An attribute `#[…]`: rewind to its `#`.
                let mut depth = 1usize;
                let mut j = prev;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                if j > 0 && is_punct(&tokens[j - 1], '#') {
                    k = j - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (k, is_pub)
}

/// Whether the contiguous doc-comment block ending directly above
/// `item_line` contains a `# Panics` section.
fn doc_block_has_panics(comments: &[Comment], item_line: u32) -> bool {
    let mut expected = item_line.saturating_sub(1);
    let mut found = false;
    // Comments are in source order; walk the block upward.
    let mut by_line = comments
        .iter()
        .filter(|c| c.own_line && (c.text.starts_with('/') || c.text.starts_with('!')))
        .collect::<Vec<_>>();
    by_line.reverse();
    for c in by_line {
        if c.line > expected {
            continue;
        }
        if c.line < expected {
            break;
        }
        if c.text.contains("# Panics") {
            found = true;
        }
        expected = expected.saturating_sub(1);
    }
    found
}

/// Recover every `fn` item that has a body.
fn find_fn_items(tokens: &[Token], comments: &[Comment], impls: &[(String, Span)]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(&tokens[i], "fn") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(ident_of) else {
            continue;
        };
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| is_punct(t, '<')) {
            j = generic_end(tokens, j);
        }
        if !tokens.get(j).is_some_and(|t| is_punct(t, '(')) {
            continue;
        }
        let params_end = matching_group_end(tokens, j, '(', ')');
        let params = Span {
            start: j + 1,
            end: params_end.saturating_sub(1),
        };
        // First `{` outside parens/brackets opens the body; a `;` first
        // means a body-less trait method — skipped (nothing to analyze).
        let mut depth = 0i32;
        let mut open = None;
        for (b, t) in tokens.iter().enumerate().skip(params_end) {
            match t.kind {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    open = Some(b);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let end = matching_group_end(tokens, open, '{', '}');
        let (start_tok, is_pub) = item_start(tokens, i);
        fns.push(FnInfo {
            name: name.to_string(),
            self_ty: enclosing_impl(impls, i).map(String::from),
            is_pub,
            doc_has_panics: doc_block_has_panics(comments, tokens[start_tok].line),
            span: Span { start: i, end },
            params,
            body: Span {
                start: open + 1,
                end: end.saturating_sub(1),
            },
            calls: Vec::new(),
            panics: Vec::new(),
        });
    }
    fns
}

/// Token span of a condition: from `start` to the first `{` at
/// paren/bracket depth 0. Returns `(cond_span, brace_index)`.
fn cond_span(tokens: &[Token], start: usize) -> Option<(Span, usize)> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        match t.kind {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => {
                return Some((Span { start, end: j }, j));
            }
            Tok::Punct(';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Whether any token in `span` is the exact identifier `rank` (the
/// conventional spelling across the workspace: `comm.rank()`,
/// `self.rank`, a `rank` local).
fn mentions_rank(tokens: &[Token], span: Span) -> bool {
    tokens[span.start..span.end.min(tokens.len())]
        .iter()
        .any(|t| is_ident(t, "rank"))
}

/// Branch bodies guarded by a rank-dependent condition. For `if` chains,
/// the `else`/`else if` arms of a rank-guarded `if` are rank-conditioned
/// too (they execute on the complementary rank set).
fn find_rank_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        let Some(kw) = ident_of(&tokens[i]) else {
            continue;
        };
        if kw != "if" && kw != "while" && kw != "match" {
            continue;
        }
        let Some((cond, open)) = cond_span(tokens, i + 1) else {
            continue;
        };
        if !mentions_rank(tokens, cond) {
            continue;
        }
        let mut end = matching_group_end(tokens, open, '{', '}');
        spans.push(Span { start: open, end });
        if kw != "if" {
            continue;
        }
        // Chain the else arms.
        while tokens.get(end).is_some_and(|t| is_ident(t, "else")) {
            if tokens.get(end + 1).is_some_and(|t| is_punct(t, '{')) {
                let e = matching_group_end(tokens, end + 1, '{', '}');
                spans.push(Span {
                    start: end + 1,
                    end: e,
                });
                end = e;
            } else if tokens.get(end + 1).is_some_and(|t| is_ident(t, "if")) {
                let Some((_, o2)) = cond_span(tokens, end + 2) else {
                    break;
                };
                let e = matching_group_end(tokens, o2, '{', '}');
                spans.push(Span { start: o2, end: e });
                end = e;
            } else {
                break;
            }
        }
    }
    spans
}

/// Find every call expression and panic site, attributing each to the
/// innermost enclosing fn.
fn attribute_calls(tokens: &[Token], fns: &mut [FnInfo]) {
    // Innermost = the containing fn with the largest start.
    let owner = |i: usize, fns: &[FnInfo]| -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.span.contains(i))
            .max_by_key(|(_, f)| f.span.start)
            .map(|(idx, _)| idx)
    };
    for i in 0..tokens.len() {
        let Some(name) = ident_of(&tokens[i]) else {
            continue;
        };
        let next_is = |c: char| tokens.get(i + 1).is_some_and(|t| is_punct(t, c));
        // Panic macros.
        if next_is('!') {
            let what = match name {
                "panic" => "`panic!`",
                "todo" => "`todo!`",
                "unimplemented" => "`unimplemented!`",
                _ => continue, // other macros are neither calls nor panics
            };
            if let Some(o) = owner(i, fns) {
                fns[o].panics.push(PanicSite {
                    what,
                    tok: i,
                    line: tokens[i].line,
                    col: tokens[i].col,
                });
            }
            continue;
        }
        if !next_is('(') {
            continue;
        }
        // `.unwrap()` is a panic site, not a call edge.
        let prev_dot = i > 0 && is_punct(&tokens[i - 1], '.');
        if name == "unwrap" && prev_dot {
            if let Some(o) = owner(i, fns) {
                fns[o].panics.push(PanicSite {
                    what: "`.unwrap()`",
                    tok: i,
                    line: tokens[i].line,
                    col: tokens[i].col,
                });
            }
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if i > 0 && is_ident(&tokens[i - 1], "fn") {
            continue;
        }
        let recv = if prev_dot {
            match crate::rules::receiver_name(tokens, i - 1).as_deref() {
                Some("self") => Receiver::SelfDot,
                Some(base) => Receiver::Var(base.to_string()),
                None => Receiver::Free,
            }
        } else if i >= 2 && is_punct(&tokens[i - 1], ':') && is_punct(&tokens[i - 2], ':') {
            match i.checked_sub(3).and_then(|k| ident_of(&tokens[k])) {
                Some(q) => Receiver::Ty(q.to_string()),
                None => Receiver::Free, // turbofish or `<T as Tr>::f` — drop the qualifier
            }
        } else {
            Receiver::Free
        };
        let args_end = matching_group_end(tokens, i + 1, '(', ')');
        let Some(o) = owner(i, fns) else { continue };
        fns[o].calls.push(CallSite {
            callee: name.to_string(),
            recv,
            tok: i,
            args: Span {
                start: i + 2,
                end: args_end.saturating_sub(1),
            },
            line: tokens[i].line,
            col: tokens[i].col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        let (tokens, comments) = lex(src);
        parse(&tokens, &comments)
    }

    #[test]
    fn fn_items_carry_impl_type_and_visibility() {
        let src = "
            impl Comm {
                pub fn barrier(&self) { self.backend.sync(); }
                pub(crate) fn internal(&self) {}
            }
            impl HaloExchange for NoExchange {
                fn begin(&self) -> Option<u32> { None }
            }
            pub fn free_helper() {}
        ";
        let p = parse_src(src);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).expect("fn present");
        assert_eq!(by_name("barrier").self_ty.as_deref(), Some("Comm"));
        assert!(by_name("barrier").is_pub);
        assert!(!by_name("internal").is_pub, "pub(crate) is not public API");
        assert_eq!(by_name("begin").self_ty.as_deref(), Some("NoExchange"));
        assert_eq!(by_name("free_helper").self_ty, None);
        assert!(by_name("free_helper").is_pub);
    }

    #[test]
    fn calls_classify_by_receiver_shape() {
        let src = "
            fn f(comm: &Comm) {
                helper();
                self.step();
                comm.barrier();
                Vec::with_capacity(4);
                ctx.comm.all_gather(x);
            }
        ";
        let p = parse_src(src);
        let calls = &p.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.callee == n).expect("call present");
        assert_eq!(find("helper").recv, Receiver::Free);
        assert_eq!(find("step").recv, Receiver::SelfDot);
        assert_eq!(find("barrier").recv, Receiver::Var("comm".into()));
        assert_eq!(find("with_capacity").recv, Receiver::Ty("Vec".into()));
        // Chained field access resolves to the base nearest the method.
        assert_eq!(find("all_gather").recv, Receiver::Var("comm".into()));
    }

    #[test]
    fn panic_sites_and_doc_panics_sections() {
        let src = "\
/// Frobnicates.
///
/// # Panics
/// Panics when the graph is empty.
pub fn documented(x: Option<u32>) -> u32 { x.unwrap() }

/// Undocumented abort.
pub fn undocumented() { panic!(\"boom\"); }
";
        let p = parse_src(src);
        let doc = p.fns.iter().find(|f| f.name == "documented").expect("fn");
        let undoc = p.fns.iter().find(|f| f.name == "undocumented").expect("fn");
        assert!(doc.doc_has_panics);
        assert_eq!(doc.panics.len(), 1);
        assert_eq!(doc.panics[0].what, "`.unwrap()`");
        assert!(!undoc.doc_has_panics);
        assert_eq!(undoc.panics[0].what, "`panic!`");
    }

    #[test]
    fn rank_spans_cover_if_chains_and_match() {
        let src = "
            fn f(comm: &Comm) {
                if comm.rank() == 0 { a(); } else { b(); }
                if ready { c(); }
                match comm.rank() { 0 => d(), _ => e() }
                while x < comm.rank() { g(); }
            }
        ";
        let p = parse_src(src);
        let (tokens, _) = lex(src);
        let in_rank = |name: &str| {
            let i = tokens
                .iter()
                .position(|t| is_ident(t, name))
                .expect("token present");
            p.rank_spans.iter().any(|s| s.contains(i))
        };
        assert!(in_rank("a"), "if body is rank-conditioned");
        assert!(in_rank("b"), "else arm of a rank if is rank-conditioned");
        assert!(!in_rank("c"), "unrelated branch is not");
        assert!(in_rank("d"), "match on rank is rank-conditioned");
        assert!(in_rank("e"));
        assert!(in_rank("g"), "while guarded on rank is rank-conditioned");
    }

    #[test]
    fn raw_identifier_fn_is_not_a_phantom_item() {
        // `r#fn` must not start an item; `r#struct` is a plain call name.
        let src = "fn f() { let r#fn = 1; r#struct(); }";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].callee, "r#struct");
    }

    #[test]
    fn nested_generics_do_not_derail_item_recovery() {
        let src = "
            impl Registry {
                fn get<T: Into<Vec<Vec<f64>>>>(&self, key: BTreeMap<String, Vec<u32>>) {
                    self.fetch(key);
                }
            }
        ";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "get");
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Registry"));
        assert_eq!(p.fns[0].calls[0].callee, "fetch");
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "fn outer() { inner_call(); fn inner() { deep_call(); } }";
        let p = parse_src(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("fn");
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("fn");
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, "inner_call");
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].callee, "deep_call");
    }
}
