//! Deterministic fault injection for chaos testing the SPMD stack.
//!
//! A [`FaultInjector`] is a [`CommBackend`] *decorator*: it wraps any
//! transport, counts the communication operations the wrapped rank issues,
//! and executes a [`FaultPlan`] at exact operation indices — kill rank `r`
//! at its `n`-th comm op, poison its `n`-th barrier, delay or drop its
//! `n`-th point-to-point send. Because every rank's op sequence is a pure
//! function of the program (the schedule layer is deterministic by
//! construction), a seeded plan reproduces the *same* failure at the
//! *same* place on every run and under every backend — chaos tests that
//! are replayable, not flaky.
//!
//! Faults are tagged with an `attempt` index so a plan can script
//! *sequences* of failures across recovery: attempt 0's kill fires in the
//! first world, attempt 1's kill fires in the world rebuilt after the
//! first recovery, and so on (the session recovery loop re-wraps each new
//! world with the same plan and an incremented attempt).
//!
//! A killed rank declares itself dead through the backend's liveness
//! probe ([`CommBackend::mark_dead`]) *before* unwinding, so peers abort
//! with [`RankFailure::PeerDead`] within a heartbeat instead of hanging.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::{CommBackend, CompletedSend, P2pMsg, RecvOp, SendOp};
use crate::stats::RankStats;

/// Typed panic payload used to tear down an SPMD world on rank failure.
///
/// The session recovery loop downcasts unwind payloads to this type to
/// distinguish injected/detected failures (recoverable: rebuild the world
/// without the dead ranks) from genuine bugs (propagated unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankFailure {
    /// This rank was killed by fault injection at its `op`-th comm op.
    Killed {
        /// The rank that died.
        rank: usize,
        /// The per-rank comm-op index at which it died.
        op: u64,
    },
    /// This rank aborted because peers died: the world cannot complete
    /// another collective.
    PeerDead {
        /// The aborting (surviving) rank.
        rank: usize,
        /// Every rank known dead at abort time, ascending.
        dead: Vec<usize>,
    },
    /// This rank gave up waiting on a receive that never completed within
    /// the stall deadline (e.g. the matching send was dropped).
    Stalled {
        /// The stalled (receiving) rank.
        rank: usize,
        /// The source rank whose message never arrived.
        src: usize,
    },
}

impl RankFailure {
    /// The ranks this failure identifies as dead. `Stalled` names the
    /// unresponsive source; `PeerDead` carries the world's dead set.
    pub fn dead_ranks(&self) -> Vec<usize> {
        match self {
            RankFailure::Killed { rank, .. } => vec![*rank],
            RankFailure::PeerDead { dead, .. } => dead.clone(),
            RankFailure::Stalled { src, .. } => vec![*src],
        }
    }

    /// Downcast an unwind payload (from `catch_unwind` / `JoinHandle`)
    /// to a `RankFailure`, if that is what it carries.
    pub fn from_payload(payload: &(dyn Any + Send)) -> Option<&RankFailure> {
        payload.downcast_ref::<RankFailure>()
    }

    /// Root-cause ordering for panic propagation: lower is more primary.
    /// A genuine (non-fault) panic outranks an injected kill, which
    /// outranks the stalls and peer-death aborts that cascade from it.
    pub fn severity(payload: &(dyn Any + Send)) -> u8 {
        match Self::from_payload(payload) {
            None => 0,
            Some(RankFailure::Killed { .. }) => 1,
            Some(RankFailure::Stalled { .. }) => 2,
            Some(RankFailure::PeerDead { .. }) => 3,
        }
    }
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailure::Killed { rank, op } => {
                write!(f, "rank {rank} killed by fault injection at comm op {op}")
            }
            RankFailure::PeerDead { rank, dead } => {
                write!(f, "rank {rank} aborted: peer rank(s) {dead:?} died")
            }
            RankFailure::Stalled { rank, src } => {
                write!(
                    f,
                    "rank {rank} stalled waiting on a receive from rank {src}"
                )
            }
        }
    }
}

/// What a single scripted fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the rank at its `at_op`-th communication operation (0-based,
    /// counted across barriers, collectives, sends, and receive posts).
    Kill {
        /// Per-rank comm-op index at which the rank dies.
        at_op: u64,
    },
    /// Kill the rank as it enters its `at_barrier`-th barrier: peers are
    /// left waiting on a rendezvous the victim registered for but will
    /// never complete — the worst-case death point for a barrier.
    PoisonBarrier {
        /// Per-rank barrier index at which the rank dies.
        at_barrier: u64,
    },
    /// Defer the rank's `at_send`-th point-to-point send until its
    /// [`SendOp`] is completed (instead of the transport's eager buffering)
    /// — surfacing latent reorderings that eager sends hide.
    DelaySend {
        /// Per-rank p2p-send index to defer.
        at_send: u64,
    },
    /// Silently drop the rank's `at_send`-th point-to-point send. The
    /// receiver's stall deadline (threads backend) or the deadlock
    /// supervisor (serial backend) converts the resulting hang into a
    /// typed failure.
    DropSend {
        /// Per-rank p2p-send index to drop.
        at_send: u64,
    },
}

/// One scripted fault: *which rank*, on *which attempt* (0 = the initial
/// world, 1 = the world after the first recovery, ...), does *what*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Recovery attempt in which this fault is armed.
    pub attempt: u32,
    /// The rank (in the world of that attempt) the fault applies to.
    pub rank: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of faults, executed by [`FaultInjector`].
///
/// Build one fluently:
///
/// ```
/// use cgnn_comm::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .kill(0, 2, 40) // attempt 0: kill rank 2 at its 40th comm op
///     .kill(1, 1, 25); // after recovery: kill rank 1 at op 25
/// assert_eq!(plan.faults().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    stall: Option<Duration>,
}

impl FaultPlan {
    /// An empty plan (no faults, no stall supervision).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The scripted faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The receive stall deadline, if armed.
    pub fn stall(&self) -> Option<Duration> {
        self.stall
    }

    /// Script a [`FaultKind::Kill`] of `rank` at comm op `at_op` on
    /// `attempt`.
    pub fn kill(mut self, attempt: u32, rank: usize, at_op: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            rank,
            kind: FaultKind::Kill { at_op },
        });
        self
    }

    /// Script a [`FaultKind::PoisonBarrier`] on `rank`'s `at_barrier`-th
    /// barrier on `attempt`.
    pub fn poison_barrier(mut self, attempt: u32, rank: usize, at_barrier: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            rank,
            kind: FaultKind::PoisonBarrier { at_barrier },
        });
        self
    }

    /// Script a [`FaultKind::DelaySend`] of `rank`'s `at_send`-th p2p send
    /// on `attempt`.
    pub fn delay_send(mut self, attempt: u32, rank: usize, at_send: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            rank,
            kind: FaultKind::DelaySend { at_send },
        });
        self
    }

    /// Script a [`FaultKind::DropSend`] of `rank`'s `at_send`-th p2p send
    /// on `attempt`.
    pub fn drop_send(mut self, attempt: u32, rank: usize, at_send: u64) -> Self {
        self.faults.push(Fault {
            attempt,
            rank,
            kind: FaultKind::DropSend { at_send },
        });
        self
    }

    /// Arm a stall deadline on receives: a blocking receive that does not
    /// complete within `deadline` aborts with [`RankFailure::Stalled`].
    /// Applied only on transports with real concurrency (the threads
    /// backend); the serial backend's deadlock supervisor already bounds
    /// its stalls.
    pub fn stall_after(mut self, deadline: Duration) -> Self {
        self.stall = Some(deadline);
        self
    }

    /// A seeded single-kill plan for attempt 0: SplitMix64 on `seed`
    /// picks a victim in `0..world` and a kill op in `op_range`, so CI
    /// chaos runs explore the fault space while any given seed replays
    /// the exact same failure.
    ///
    /// # Panics
    ///
    /// If `world` is zero or `op_range` is empty: a seeded plan over an
    /// empty space is a configuration error worth failing loudly on.
    pub fn seeded(seed: u64, world: usize, op_range: std::ops::Range<u64>) -> Self {
        assert!(world > 0, "seeded fault plan needs a non-empty world");
        assert!(
            op_range.end > op_range.start,
            "seeded fault plan needs a non-empty op range"
        );
        let mut s = seed;
        let rank = (splitmix64(&mut s) % world as u64) as usize;
        let span = op_range.end - op_range.start;
        let at_op = op_range.start + splitmix64(&mut s) % span;
        FaultPlan::new().kill(0, rank, at_op)
    }

    /// The fault armed for `(attempt, rank)`, if any. Plans with several
    /// faults for the same `(attempt, rank)` fire the first by op index.
    fn armed_for(&self, attempt: u32, rank: usize) -> Option<Fault> {
        self.faults
            .iter()
            .copied()
            .find(|f| f.attempt == attempt && f.rank == rank)
    }
}

/// SplitMix64: the same tiny deterministic generator the schedule layer
/// uses, re-derived here because `cgnn-comm` sits below `cgnn-core`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault-injecting [`CommBackend`] decorator. See the module docs.
pub struct FaultInjector {
    inner: Arc<dyn CommBackend>,
    /// The fault armed for this rank on this attempt (resolved at wrap
    /// time: plan lookup is off the hot path).
    armed: Option<Fault>,
    stall: Option<Duration>,
    /// Per-rank comm-op counter (barriers + collectives + p2p ops).
    ops: AtomicU64,
    /// Per-rank barrier counter (for [`FaultKind::PoisonBarrier`]).
    barriers: AtomicU64,
    /// Per-rank p2p send counter (for the send faults).
    sends: AtomicU64,
}

impl FaultInjector {
    /// Wrap `inner` so the faults `plan` scripts for `(attempt,
    /// inner.rank())` fire at their op indices. Ranks with no armed fault
    /// pay two relaxed atomic increments per comm op and nothing else.
    pub fn wrap(
        inner: Arc<dyn CommBackend>,
        plan: &FaultPlan,
        attempt: u32,
    ) -> Arc<dyn CommBackend> {
        let armed = plan.armed_for(attempt, inner.rank());
        Arc::new(FaultInjector {
            armed,
            stall: plan.stall,
            inner,
            ops: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            sends: AtomicU64::new(0),
        })
    }

    /// A decorator closure for [`Backend::launch_with`], capturing the
    /// plan by value.
    ///
    /// [`Backend::launch_with`]: crate::Backend::launch_with
    pub fn decorator(
        plan: FaultPlan,
        attempt: u32,
    ) -> impl Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync {
        move |inner| FaultInjector::wrap(inner, &plan, attempt)
    }

    /// Die now: declare this rank dead through the liveness probe, then
    /// unwind with a typed [`RankFailure::Killed`] payload.
    fn die(&self, op: u64) -> ! {
        self.inner.mark_dead();
        // detlint: allow(unwrap-in-lib, "fault injection: dying is this code's entire purpose")
        std::panic::panic_any(RankFailure::Killed {
            rank: self.inner.rank(),
            op,
        })
    }

    /// Count one comm op; fire a [`FaultKind::Kill`] scheduled for it.
    fn tick_op(&self) -> u64 {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if let Some(Fault {
            kind: FaultKind::Kill { at_op },
            ..
        }) = self.armed
        {
            if op == at_op {
                self.die(op);
            }
        }
        op
    }
}

impl CommBackend for FaultInjector {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn barrier(&self) {
        let op = self.tick_op();
        let barrier = self.barriers.fetch_add(1, Ordering::Relaxed);
        if let Some(Fault {
            kind: FaultKind::PoisonBarrier { at_barrier },
            ..
        }) = self.armed
        {
            if barrier == at_barrier {
                self.die(op);
            }
        }
        self.inner.barrier();
    }

    fn all_gather(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        self.tick_op();
        self.inner.all_gather(label, data)
    }

    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        self.tick_op();
        self.inner.all_to_all(send)
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        self.tick_op();
        let send_idx = self.sends.fetch_add(1, Ordering::Relaxed);
        match self.armed {
            Some(Fault {
                kind: FaultKind::DropSend { at_send },
                ..
            }) if send_idx == at_send => {
                // Swallowed: the receiver's stall deadline or deadlock
                // supervisor turns the missing message into a failure.
            }
            _ => self.inner.send(dst, tag, data),
        }
    }

    fn isend(&self, dst: usize, tag: u32, data: Vec<f64>) -> Box<dyn SendOp> {
        self.tick_op();
        let send_idx = self.sends.fetch_add(1, Ordering::Relaxed);
        match self.armed {
            Some(Fault {
                kind: FaultKind::DropSend { at_send },
                ..
            }) if send_idx == at_send => Box::new(CompletedSend),
            Some(Fault {
                kind: FaultKind::DelaySend { at_send },
                ..
            }) if send_idx == at_send => Box::new(DeferredSend {
                inner: Arc::clone(&self.inner),
                pending: Some((dst, tag, data)),
            }),
            _ => self.inner.isend(dst, tag, data),
        }
    }

    fn irecv(&self, src: usize) -> Box<dyn RecvOp> {
        self.tick_op();
        let op = self.inner.irecv(src);
        // Stall supervision needs real concurrency to poll usefully: on
        // the serial backend a polling waiter would hold the baton and
        // starve the very sender it waits for, so the serial deadlock
        // supervisor keeps that job.
        match self.stall {
            Some(deadline) if self.inner.label() == "threads" => Box::new(StalledRecvOp {
                inner: op,
                rank: self.inner.rank(),
                src,
                deadline,
            }),
            _ => op,
        }
    }

    fn stats(&self) -> &RankStats {
        self.inner.stats()
    }

    fn on_rank_start(&self) {
        self.inner.on_rank_start();
    }

    fn on_rank_finish(&self, panicked: bool) {
        self.inner.on_rank_finish(panicked);
    }

    fn mark_dead(&self) {
        self.inner.mark_dead();
    }

    fn dead_ranks(&self) -> Vec<usize> {
        self.inner.dead_ranks()
    }
}

/// A send deferred by [`FaultKind::DelaySend`]: the payload leaves this op
/// only when the caller completes it, not at post time.
struct DeferredSend {
    inner: Arc<dyn CommBackend>,
    pending: Option<(usize, u32, Vec<f64>)>,
}

impl SendOp for DeferredSend {
    fn try_complete(&mut self) -> bool {
        self.complete();
        true
    }

    fn complete(&mut self) {
        if let Some((dst, tag, data)) = self.pending.take() {
            self.inner.send(dst, tag, data);
        }
    }
}

/// A receive supervised by a stall deadline (armed by
/// [`FaultPlan::stall_after`] on the threads backend).
struct StalledRecvOp {
    inner: Box<dyn RecvOp>,
    rank: usize,
    src: usize,
    deadline: Duration,
}

impl RecvOp for StalledRecvOp {
    fn try_take(&mut self) -> Option<P2pMsg> {
        self.inner.try_take()
    }

    fn take(&mut self) -> P2pMsg {
        let give_up = Instant::now() + self.deadline;
        loop {
            if let Some(msg) = self.inner.try_take() {
                return msg;
            }
            if Instant::now() >= give_up {
                // detlint: allow(unwrap-in-lib, "stall supervision: unwinding is how a dropped-send hang becomes a typed failure")
                std::panic::panic_any(RankFailure::Stalled {
                    rank: self.rank,
                    src: self.src,
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use std::panic::AssertUnwindSafe;

    fn catch(f: impl FnOnce()) -> Box<dyn Any + Send> {
        std::panic::catch_unwind(AssertUnwindSafe(f)).expect_err("expected a panic")
    }

    #[test]
    fn plan_builder_and_lookup() {
        let plan = FaultPlan::new()
            .kill(0, 1, 5)
            .poison_barrier(1, 0, 2)
            .drop_send(0, 2, 3);
        assert_eq!(
            plan.armed_for(0, 1),
            Some(Fault {
                attempt: 0,
                rank: 1,
                kind: FaultKind::Kill { at_op: 5 }
            })
        );
        assert_eq!(plan.armed_for(0, 0), None);
        assert_eq!(
            plan.armed_for(1, 0).map(|f| f.kind),
            Some(FaultKind::PoisonBarrier { at_barrier: 2 })
        );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded(42, 4, 10..50);
        let b = FaultPlan::seeded(42, 4, 10..50);
        assert_eq!(a, b, "same seed must give the same plan");
        let Fault {
            attempt,
            rank,
            kind,
        } = a.faults()[0];
        assert_eq!(attempt, 0);
        assert!(rank < 4);
        let FaultKind::Kill { at_op } = kind else {
            panic!("seeded plan must be a kill");
        };
        assert!((10..50).contains(&at_op));
        assert_ne!(
            FaultPlan::seeded(1, 4, 10..50),
            FaultPlan::seeded(2, 4, 10..50),
            "different seeds should explore the space"
        );
    }

    /// The cross-backend contract of the whole fault layer: a kill tears
    /// down the world with a typed root-cause payload, peers abort (typed
    /// PeerDead) instead of hanging, and the propagated panic is the kill.
    #[test]
    fn kill_tears_down_both_backends_with_typed_payload() {
        for backend in Backend::all() {
            let plan = FaultPlan::new().kill(0, 1, 2);
            let payload = catch(|| {
                backend.launch_with(
                    3,
                    |comm| {
                        for _ in 0..10 {
                            comm.barrier();
                        }
                    },
                    FaultInjector::decorator(plan.clone(), 0),
                );
            });
            match RankFailure::from_payload(payload.as_ref()) {
                Some(RankFailure::Killed { rank: 1, op: 2 }) => {}
                other => panic!("{backend}: expected Killed{{rank:1,op:2}}, got {other:?}"),
            }
        }
    }

    #[test]
    fn faults_on_other_attempts_do_not_fire() {
        for backend in Backend::all() {
            let plan = FaultPlan::new().kill(1, 0, 0);
            let sums = backend.launch_with(
                2,
                |comm| comm.all_reduce_scalar(1.0),
                FaultInjector::decorator(plan, 0),
            );
            assert_eq!(sums, vec![2.0; 2], "{backend}");
        }
    }

    #[test]
    fn poisoned_barrier_kills_at_exact_barrier_index() {
        let plan = FaultPlan::new().poison_barrier(0, 0, 3);
        let payload = catch(|| {
            Backend::Threads.launch_with(
                2,
                |comm| {
                    for _ in 0..8 {
                        comm.barrier();
                    }
                },
                FaultInjector::decorator(plan, 0),
            );
        });
        match RankFailure::from_payload(payload.as_ref()) {
            Some(RankFailure::Killed { rank: 0, .. }) => {}
            other => panic!("expected rank 0 killed at its 4th barrier, got {other:?}"),
        }
    }

    #[test]
    fn dropped_send_is_caught_by_stall_deadline_on_threads() {
        let plan = FaultPlan::new()
            .drop_send(0, 0, 0)
            .stall_after(Duration::from_millis(100));
        let payload = catch(|| {
            Backend::Threads.launch_with(
                2,
                |comm| {
                    if comm.rank() == 0 {
                        comm.send(1, 7, vec![1.0]);
                    } else {
                        comm.recv(0, 7);
                    }
                },
                FaultInjector::decorator(plan, 0),
            );
        });
        match RankFailure::from_payload(payload.as_ref()) {
            Some(RankFailure::Stalled { rank: 1, src: 0 }) => {}
            other => panic!("expected rank 1 stalled on rank 0, got {other:?}"),
        }
    }

    #[test]
    fn delayed_send_still_delivers() {
        let plan = FaultPlan::new().delay_send(0, 0, 0);
        for backend in Backend::all() {
            let out = backend.launch_with(
                2,
                |comm| {
                    if comm.rank() == 0 {
                        comm.isend(1, 3, vec![4.5]).wait();
                        0.0
                    } else {
                        comm.recv(0, 3)[0]
                    }
                },
                FaultInjector::decorator(plan.clone(), 0),
            );
            assert_eq!(out[1], 4.5, "{backend}");
        }
    }

    #[test]
    fn genuine_panic_outranks_injected_noise() {
        let payload = catch(|| {
            Backend::Threads.launch(2, |comm| {
                if comm.rank() == 0 {
                    panic!("genuine bug");
                }
                comm.barrier();
            });
        });
        let msg = payload
            .downcast_ref::<&'static str>()
            .copied()
            .expect("the genuine panic must be the propagated payload");
        assert_eq!(msg, "genuine bug");
    }

    #[test]
    fn peers_detect_death_within_heartbeat_instead_of_hanging() {
        // No fault plan at all: a *genuine* panic on rank 0 must still
        // unblock rank 1's barrier via the liveness probe.
        let t0 = Instant::now();
        let payload = catch(|| {
            Backend::Threads.launch(3, |comm| {
                if comm.rank() == 0 {
                    panic!("boom");
                }
                comm.barrier();
            });
        });
        assert!(payload.downcast_ref::<&'static str>().is_some());
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "peers must not hang when a rank dies"
        );
    }
}
