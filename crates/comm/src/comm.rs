//! The backend-agnostic communicator handle and the [`World`] launcher.
//!
//! [`Comm`] is a thin, cloneable handle over an `Arc<dyn CommBackend>`:
//! the deterministic reduction arithmetic, traffic accounting, and tag
//! checking live here — once — while the trait object supplies raw
//! transport primitives. Swapping transports therefore cannot change
//! arithmetic: every backend is bit-identical by construction.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::backend::{Backend, CommBackend, RecvOp, SendOp};
use crate::stats::{RankStats, StatsSnapshot};

/// Per-rank communicator handle. Cloneable; clones refer to the same world
/// and the same rank (so they can be captured by autodiff backward
/// closures). All operations route through the [`CommBackend`] trait
/// object, so the handle works identically over every transport.
#[derive(Clone)]
pub struct Comm {
    backend: Arc<dyn CommBackend>,
}

/// A collection of `R` ranks executing the same SPMD closure.
///
/// [`World::run`] is a convenience over [`Backend::launch`] using the
/// environment-selected transport ([`Backend::from_env`], i.e. the
/// `CGNN_BACKEND` variable, defaulting to the thread world) — which is how
/// one test suite exercises every backend.
pub struct World;

impl World {
    /// Run `f` on `size` ranks of the environment-selected backend,
    /// returning each rank's result in rank order. Panics in any rank
    /// propagate.
    ///
    /// ```
    /// use cgnn_comm::World;
    /// let sums = World::run(4, |comm| {
    ///     let mut v = [comm.rank() as f64];
    ///     comm.all_reduce_sum(&mut v);
    ///     v[0]
    /// });
    /// assert_eq!(sums, vec![6.0; 4]);
    /// ```
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Backend::from_env().launch(size, f)
    }
}

impl Comm {
    /// Wrap a transport into a communicator handle. This is the entry
    /// point for custom [`CommBackend`] implementations; the in-tree
    /// backends go through [`Backend::launch`].
    pub fn from_backend(backend: Arc<dyn CommBackend>) -> Self {
        Comm { backend }
    }

    /// The transport this handle runs on.
    pub fn backend(&self) -> &Arc<dyn CommBackend> {
        &self.backend
    }

    /// The transport's label (`"threads"`, `"serial"`, ...).
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.backend.rank()
    }

    /// World size (number of SPMD ranks).
    pub fn size(&self) -> usize {
        self.backend.size()
    }

    fn stats(&self) -> &RankStats {
        self.backend.stats()
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.stats().barriers.fetch_add(1, Ordering::Relaxed);
        self.backend.barrier();
    }

    /// Deterministic all-reduce (sum) over `buf`, in place.
    ///
    /// Every rank sums the per-rank contributions in rank order, so all
    /// ranks compute bit-identical results — essential for keeping DDP
    /// replicas in lockstep without parameter broadcasts.
    pub fn all_reduce_sum(&self, buf: &mut [f64]) {
        let parts = self.backend.all_gather("all_reduce_sum", buf.to_vec());
        self.stats().all_reduces.fetch_add(1, Ordering::Relaxed);
        self.stats()
            .all_reduce_bytes
            .fetch_add(std::mem::size_of_val(buf) as u64, Ordering::Relaxed);
        buf.fill(0.0);
        for part in &parts {
            assert_eq!(
                part.len(),
                buf.len(),
                "all_reduce_sum length mismatch across ranks"
            );
            for (b, &p) in buf.iter_mut().zip(part.iter()) {
                *b += p;
            }
        }
    }

    /// All-reduce a single scalar (sum).
    pub fn all_reduce_scalar(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.all_reduce_sum(&mut buf);
        buf[0]
    }

    /// Deterministic all-reduce (max).
    pub fn all_reduce_max(&self, buf: &mut [f64]) {
        let parts = self.backend.all_gather("all_reduce_max", buf.to_vec());
        self.stats().all_reduces.fetch_add(1, Ordering::Relaxed);
        self.stats()
            .all_reduce_bytes
            .fetch_add(std::mem::size_of_val(buf) as u64, Ordering::Relaxed);
        buf.fill(f64::NEG_INFINITY);
        for part in &parts {
            for (b, &p) in buf.iter_mut().zip(part.iter()) {
                *b = b.max(p);
            }
        }
    }

    /// Gather every rank's buffer; result is indexed by rank and identical
    /// on all ranks. Contributions may have different lengths per rank.
    ///
    /// Traffic accounting: the contribution is replicated to every other
    /// rank, so `len * 8 * (R - 1)` bytes are charged (the internal gathers
    /// backing [`Comm::all_reduce_sum`] are charged as all-reduce bytes
    /// instead and do not hit these counters).
    pub fn all_gather(&self, data: Vec<f64>) -> Vec<Vec<f64>> {
        let st = self.stats();
        st.all_gathers.fetch_add(1, Ordering::Relaxed);
        st.all_gather_bytes.fetch_add(
            (data.len() * std::mem::size_of::<f64>()) as u64 * (self.size() as u64 - 1),
            Ordering::Relaxed,
        );
        self.backend.all_gather("all_gather", data)
    }

    /// All-to-all exchange. `send[dst]` is the buffer for rank `dst`; empty
    /// buffers mean "no traffic to that peer" (the paper's Neighbor-AllToAll
    /// trick of passing `torch.empty(0)` for non-neighbours). Returns
    /// `recv[src]`, the buffer sent to this rank by rank `src`.
    pub fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        assert_eq!(
            send.len(),
            self.size(),
            "all_to_all needs one buffer per rank"
        );
        let st = self.stats();
        st.all_to_alls.fetch_add(1, Ordering::Relaxed);
        for (dst, buf) in send.iter().enumerate() {
            if dst != self.rank() && !buf.is_empty() {
                st.a2a_messages.fetch_add(1, Ordering::Relaxed);
                st.a2a_bytes.fetch_add(
                    (buf.len() * std::mem::size_of::<f64>()) as u64,
                    Ordering::Relaxed,
                );
            }
        }
        self.backend.all_to_all(send)
    }

    /// Point-to-point send (buffered, never blocks).
    pub fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        self.count_send(&data);
        self.backend.send(dst, tag, data);
    }

    /// Blocking receive from `src`; the next message's tag must equal `tag`
    /// (matching is FIFO per peer, so a mismatch means the program's
    /// communication schedules diverged).
    pub fn recv(&self, src: usize, tag: u32) -> Vec<f64> {
        assert!(src < self.size(), "recv from invalid rank {src}");
        let (got_tag, data) = self.backend.recv(src);
        self.check_tag(src, tag, got_tag);
        self.count_recv(&data);
        data
    }

    /// Begin a non-blocking send: the payload is handed to the transport
    /// and a wait-able [`SendRequest`] is returned. On the in-tree buffered
    /// backends the request completes immediately; callers must still
    /// [`SendRequest::wait`] it so the code is correct over transports with
    /// real rendezvous sends.
    pub fn isend(&self, dst: usize, tag: u32, data: Vec<f64>) -> SendRequest {
        assert!(dst < self.size(), "isend to invalid rank {dst}");
        self.count_send(&data);
        SendRequest {
            op: self.backend.isend(dst, tag, data),
        }
    }

    /// Post a non-blocking receive for the next unmatched message from
    /// `src`, returning a wait-able [`RecvRequest`]. Matching is FIFO per
    /// source (requests may be *completed* in any order; each still
    /// receives the message matching its posting position). Every posted
    /// request must eventually be waited or tested to completion on the
    /// posting rank, or its matched message is lost.
    pub fn irecv(&self, src: usize, tag: u32) -> RecvRequest {
        assert!(src < self.size(), "irecv from invalid rank {src}");
        RecvRequest {
            op: self.backend.irecv(src),
            comm: self.clone(),
            src,
            tag,
            ready: None,
        }
    }

    fn count_send(&self, data: &[f64]) {
        let st = self.stats();
        st.sends.fetch_add(1, Ordering::Relaxed);
        st.send_bytes
            .fetch_add(std::mem::size_of_val(data) as u64, Ordering::Relaxed);
    }

    fn count_recv(&self, data: &[f64]) {
        let st = self.stats();
        st.recvs.fetch_add(1, Ordering::Relaxed);
        st.recv_bytes
            .fetch_add(std::mem::size_of_val(data) as u64, Ordering::Relaxed);
    }

    fn check_tag(&self, src: usize, want: u32, got: u32) {
        assert_eq!(
            got,
            want,
            "rank {} expected tag {want} from {src} but got {got}",
            self.rank()
        );
    }

    /// Snapshot this rank's traffic counters.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    /// Reset this rank's traffic counters.
    pub fn stats_reset(&self) {
        self.stats().reset()
    }
}

/// Wait-able handle to an in-flight non-blocking send (see
/// [`Comm::isend`]).
pub struct SendRequest {
    op: Box<dyn SendOp>,
}

impl SendRequest {
    /// Poll for completion without blocking.
    pub fn test(&mut self) -> bool {
        self.op.try_complete()
    }

    /// Block until the transport owns the payload.
    pub fn wait(mut self) {
        self.op.complete()
    }
}

/// Wait-able handle to an in-flight non-blocking receive (see
/// [`Comm::irecv`]). Completion — whether through [`RecvRequest::test`] or
/// [`RecvRequest::wait`] — checks the message tag and records the
/// recv-side traffic counters exactly once.
pub struct RecvRequest {
    op: Box<dyn RecvOp>,
    comm: Comm,
    src: usize,
    tag: u32,
    ready: Option<Vec<f64>>,
}

impl RecvRequest {
    /// The rank this request receives from.
    pub fn source(&self) -> usize {
        self.src
    }

    /// The tag this request expects.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Poll: returns true once the matched message has arrived (after
    /// which [`RecvRequest::wait`] returns it without blocking).
    pub fn test(&mut self) -> bool {
        if self.ready.is_none() {
            if let Some((got_tag, data)) = self.op.try_take() {
                self.finish(got_tag, data);
            }
        }
        self.ready.is_some()
    }

    /// Block until the matched message arrives and take its payload.
    pub fn wait(mut self) -> Vec<f64> {
        if self.ready.is_none() {
            let (got_tag, data) = self.op.take();
            self.finish(got_tag, data);
        }
        self.ready.take().expect("payload present after completion")
    }

    fn finish(&mut self, got_tag: u32, data: Vec<f64>) {
        self.comm.check_tag(self.src, self.tag, got_tag);
        self.comm.count_recv(&data);
        self.ready = Some(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a closure on every in-tree backend: the API contract below must
    /// hold transport-independently.
    fn on_every_backend<T: Send, F: Fn(&Comm) -> T + Sync>(size: usize, f: F) -> Vec<Vec<T>> {
        Backend::all()
            .into_iter()
            .map(|b| b.launch(size, &f))
            .collect()
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.all_reduce_scalar(5.0)
        });
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn all_reduce_sum_is_deterministic_and_identical() {
        for out in on_every_backend(7, |comm| {
            let mut v = vec![comm.rank() as f64 * 0.1, 1.0];
            comm.all_reduce_sum(&mut v);
            v
        }) {
            for v in &out {
                assert_eq!(v, &out[0], "ranks disagree on reduced value");
            }
            assert!((out[0][1] - 7.0).abs() < 1e-15);
        }
    }

    #[test]
    fn all_reduce_max_works() {
        for out in on_every_backend(4, |comm| {
            let mut v = vec![-(comm.rank() as f64), comm.rank() as f64];
            comm.all_reduce_max(&mut v);
            v
        }) {
            assert_eq!(out[0], vec![0.0, 3.0]);
        }
    }

    #[test]
    fn all_to_all_exchanges_rank_tagged_buffers() {
        for out in on_every_backend(4, |comm| {
            let send: Vec<Vec<f64>> = (0..4)
                .map(|dst| vec![(comm.rank() * 10 + dst) as f64])
                .collect();
            comm.all_to_all(send)
        }) {
            for (dst, recv) in out.iter().enumerate() {
                for (src, buf) in recv.iter().enumerate() {
                    assert_eq!(buf, &vec![(src * 10 + dst) as f64]);
                }
            }
        }
    }

    #[test]
    fn all_to_all_empty_buffers_skip_traffic() {
        let out = World::run(3, |comm| {
            let send: Vec<Vec<f64>> = (0..3)
                .map(|dst| {
                    if dst == (comm.rank() + 1) % 3 {
                        vec![1.0, 2.0]
                    } else {
                        vec![]
                    }
                })
                .collect();
            let recv = comm.all_to_all(send);
            (recv, comm.stats_snapshot())
        });
        for (rank, (recv, stats)) in out.iter().enumerate() {
            let from = (rank + 2) % 3;
            assert_eq!(recv[from], vec![1.0, 2.0]);
            assert_eq!(stats.a2a_messages, 1, "only one real message per rank");
            assert_eq!(stats.a2a_bytes, 16);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let out = World::run(5, |comm| {
            let mut total = 0.0;
            for i in 0..20 {
                total += comm.all_reduce_scalar((comm.rank() + i) as f64);
            }
            total
        });
        let expect: f64 = (0..20)
            .map(|i| (0..5).map(|r| (r + i) as f64).sum::<f64>())
            .sum();
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn p2p_ring_send_recv() {
        for out in on_every_backend(6, |comm| {
            let next = (comm.rank() + 1) % 6;
            let prev = (comm.rank() + 5) % 6;
            comm.send(next, 7, vec![comm.rank() as f64]);
            comm.recv(prev, 7)
        }) {
            for (rank, v) in out.iter().enumerate() {
                assert_eq!(v, &vec![((rank + 5) % 6) as f64]);
            }
        }
    }

    #[test]
    fn isend_irecv_ring_completes() {
        for out in on_every_backend(5, |comm| {
            let next = (comm.rank() + 1) % 5;
            let prev = (comm.rank() + 4) % 5;
            let send = comm.isend(next, 3, vec![comm.rank() as f64; 4]);
            let recv = comm.irecv(prev, 3);
            let got = recv.wait();
            send.wait();
            got
        }) {
            for (rank, v) in out.iter().enumerate() {
                assert_eq!(v, &vec![((rank + 4) % 5) as f64; 4]);
            }
        }
    }

    /// Requests may be completed in any order; matching stays FIFO per
    /// source, so the first-posted request gets the first-sent message.
    #[test]
    fn irecv_completion_order_is_independent_of_wait_order() {
        for out in on_every_backend(2, |comm| {
            let other = 1 - comm.rank();
            comm.send(other, 10, vec![1.0]);
            comm.send(other, 20, vec![2.0]);
            let first = comm.irecv(other, 10);
            let second = comm.irecv(other, 20);
            // Wait in reverse posting order.
            let b = second.wait();
            let a = first.wait();
            (a, b)
        }) {
            for (a, b) in out {
                assert_eq!(a, vec![1.0]);
                assert_eq!(b, vec![2.0]);
            }
        }
    }

    #[test]
    fn irecv_test_polls_to_completion() {
        for out in on_every_backend(2, |comm| {
            let other = 1 - comm.rank();
            let mut req = comm.irecv(other, 5);
            // Nothing sent yet on the first poll of rank 0 under the serial
            // backend; sends happen below.
            comm.send(other, 5, vec![comm.rank() as f64]);
            // Barrier guarantees delivery on both backends before polling.
            comm.barrier();
            assert!(req.test(), "message must have arrived after barrier");
            assert!(req.test(), "test is idempotent once complete");
            req.wait()
        }) {
            assert_eq!(out[0], vec![1.0]);
            assert_eq!(out[1], vec![0.0]);
        }
    }

    #[test]
    fn recv_counters_mirror_send_counters() {
        for out in on_every_backend(4, |comm| {
            comm.stats_reset();
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.send(next, 1, vec![1.0; 8]);
            let r = comm.irecv(prev, 1);
            let _ = r.wait();
            comm.send(next, 2, vec![2.0; 3]);
            let _ = comm.recv(prev, 2);
            comm.stats_snapshot()
        }) {
            let sends: u64 = out.iter().map(|s| s.sends).sum();
            let recvs: u64 = out.iter().map(|s| s.recvs).sum();
            let send_bytes: u64 = out.iter().map(|s| s.send_bytes).sum();
            let recv_bytes: u64 = out.iter().map(|s| s.recv_bytes).sum();
            assert_eq!(sends, recvs, "every send must be drained by a recv");
            assert_eq!(send_bytes, recv_bytes, "byte accounting must be symmetric");
            for s in &out {
                assert_eq!(s.sends, 2);
                assert_eq!(s.recvs, 2);
                assert_eq!(s.send_bytes, 11 * 8);
                assert_eq!(s.recv_bytes, 11 * 8);
            }
        }
    }

    #[test]
    fn all_gather_returns_rank_ordered() {
        for out in on_every_backend(3, |comm| comm.all_gather(vec![comm.rank() as f64; 2])) {
            for parts in out {
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![r as f64; 2]);
                }
            }
        }
    }

    #[test]
    fn all_gather_records_replicated_traffic() {
        let out = World::run(4, |comm| {
            comm.stats_reset();
            let _ = comm.all_gather(vec![1.0, 2.0, 3.0]);
            comm.stats_snapshot()
        });
        for s in &out {
            assert_eq!(s.all_gathers, 1);
            // 3 doubles replicated to 3 peers.
            assert_eq!(s.all_gather_bytes, 3 * 8 * 3);
            assert_eq!(s.all_reduces, 0, "gathers are not all-reduces");
        }
    }

    #[test]
    fn stats_reset_zeroes() {
        World::run(2, |comm| {
            comm.all_reduce_scalar(1.0);
            assert!(comm.stats_snapshot().all_reduces > 0);
            comm.stats_reset();
            assert_eq!(comm.stats_snapshot().all_reduces, 0);
        });
    }

    /// Arithmetic is transport-independent bit for bit: the reductions are
    /// computed by `Comm` in rank order from gathered contributions, so the
    /// backends cannot diverge.
    #[test]
    fn backends_produce_bit_identical_reductions() {
        let run = |b: Backend| {
            b.launch(6, |comm| {
                let mut acc = Vec::new();
                for i in 0..10 {
                    let x = ((comm.rank() + 1) as f64).powf(1.1 + i as f64 * 0.07);
                    acc.push(comm.all_reduce_scalar(x * 1e-3));
                }
                acc
            })
        };
        assert_eq!(run(Backend::Threads), run(Backend::Serial));
    }
}
