//! Shared stream-transport engine for the cross-process backends.
//!
//! Both [`Backend::Proc`](crate::Backend::Proc) (Unix-domain sockets) and
//! [`Backend::Socket`](crate::Backend::Socket) (TCP) reduce to the same
//! shape once their rendezvous has produced one byte stream per peer:
//! a full mesh of connections carrying checksummed `CGNW` frames, with a
//! per-peer reader thread routing arrivals into shared queues and a
//! per-peer writer thread draining an unbounded job channel (so `send`
//! stays buffered-and-non-blocking even when OS socket buffers fill).
//! [`StreamWorld`] is that engine; the transport modules only differ in
//! how they dial the mesh.
//!
//! # Wire format
//!
//! Every frame is `CGNW` magic, a kind byte, `src` (u32 LE), `tag`
//! (u64 LE; the p2p tag, barrier generation, or dead-rank id), a
//! length-prefixed UTF-8 label (collective label or rendezvous address
//! table), a length-prefixed LE `f64` payload, and a trailing FNV-1a-64
//! digest over everything before it — the same hashing discipline as the
//! `CGNC` checkpoint container in `cgnn-tensor::serialize`, so a
//! truncated or corrupted stream fails loudly instead of deserializing
//! garbage.
//!
//! # Ordering and matching
//!
//! Each connection is a FIFO byte stream, so per-peer frame order equals
//! send order. Collectives need no extra synchronization: the `k`-th
//! gather (or all-to-all) frame popped from a peer's queue belongs to the
//! `k`-th gather this rank performs, and barriers are generation-stamped.
//! Point-to-point matching reuses [`PostQueue`] — identical FIFO-per-peer
//! semantics to the in-process transports.
//!
//! # Liveness
//!
//! A rank that finishes cleanly announces `Bye` before closing; EOF
//! without `Bye` (a crashed or SIGKILLed process) marks the peer dead, as
//! does an explicit `Dead` frame from fault injection. Every blocking
//! wait re-checks the peer table at `CGNN_FAULT_HEARTBEAT_MS` intervals
//! and aborts with [`RankFailure::PeerDead`] instead of hanging — the
//! same contract as the threads backend, but detected through the socket
//! rather than shared memory.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::backend::{CommBackend, P2pMsg, PostQueue, RecvOp, SendOp};
use crate::fault::RankFailure;
use crate::stats::RankStats;

/// FNV-1a-64 offset basis (the `CGNC` checkpoint-container discipline).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a-64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Frame magic.
const MAGIC: [u8; 4] = *b"CGNW";
/// Bound on payload element counts (mirrors `MAX_TENSOR_ELEMS`): anything
/// larger is a corrupted length field, not a real message.
const MAX_FRAME_ELEMS: u64 = 1 << 26;
/// Bound on label bytes.
const MAX_LABEL_BYTES: u64 = 1 << 16;

/// Frame kinds on the wire.
pub(crate) const KIND_HELLO: u8 = 0;
const KIND_P2P: u8 = 1;
const KIND_GATHER: u8 = 2;
const KIND_A2A: u8 = 3;
const KIND_BARRIER: u8 = 4;
const KIND_DEAD: u8 = 5;
const KIND_BYE: u8 = 6;

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Frame {
    pub kind: u8,
    pub src: u32,
    /// P2p tag, barrier generation, or dead-rank id, depending on `kind`.
    pub tag: u64,
    /// Collective label (`Gather`) or rendezvous address payload (`Hello`).
    pub label: String,
    pub data: Vec<f64>,
}

impl Frame {
    /// A frame with empty label and payload.
    pub(crate) fn control(kind: u8, src: u32, tag: u64) -> Frame {
        Frame {
            kind,
            src,
            tag,
            label: String::new(),
            data: Vec::new(),
        }
    }
}

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Serialize one frame with its trailing digest.
pub(crate) fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + frame.label.len() + frame.data.len() * 8);
    buf.extend_from_slice(&MAGIC);
    buf.push(frame.kind);
    buf.extend_from_slice(&frame.src.to_le_bytes());
    buf.extend_from_slice(&frame.tag.to_le_bytes());
    buf.extend_from_slice(&(frame.label.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame.label.as_bytes());
    buf.extend_from_slice(&(frame.data.len() as u64).to_le_bytes());
    for v in &frame.data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let digest = fnv1a(FNV_OFFSET, &buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    buf
}

/// Write one frame to a stream.
pub(crate) fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

fn read_exact_hashed<R: Read>(r: &mut R, buf: &mut [u8], state: &mut u64) -> io::Result<()> {
    r.read_exact(buf)?;
    *state = fnv1a(*state, buf);
    Ok(())
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt frame: {what}"))
}

/// Read one frame from a stream. `Ok(None)` is a clean EOF at a frame
/// boundary; anything else that fails to parse or checksum is an error.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut magic = [0u8; 4];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut state = fnv1a(FNV_OFFSET, &magic);
    let mut head = [0u8; 1 + 4 + 8 + 4];
    read_exact_hashed(r, &mut head, &mut state)?;
    let kind = head[0];
    let src = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    let tag = u64::from_le_bytes([
        head[5], head[6], head[7], head[8], head[9], head[10], head[11], head[12],
    ]);
    let label_len = u32::from_le_bytes([head[13], head[14], head[15], head[16]]) as u64;
    if label_len > MAX_LABEL_BYTES {
        return Err(corrupt("implausible label length"));
    }
    let mut label_bytes = vec![0u8; label_len as usize];
    read_exact_hashed(r, &mut label_bytes, &mut state)?;
    let label = String::from_utf8(label_bytes).map_err(|_| corrupt("label is not UTF-8"))?;
    let mut count_bytes = [0u8; 8];
    read_exact_hashed(r, &mut count_bytes, &mut state)?;
    let count = u64::from_le_bytes(count_bytes);
    if count > MAX_FRAME_ELEMS {
        return Err(corrupt("implausible payload length"));
    }
    let mut payload = vec![0u8; count as usize * 8];
    read_exact_hashed(r, &mut payload, &mut state)?;
    let data = payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    let mut digest_bytes = [0u8; 8];
    r.read_exact(&mut digest_bytes)?;
    if u64::from_le_bytes(digest_bytes) != state {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(Some(Frame {
        kind,
        src,
        tag,
        label,
        data,
    }))
}

/// One established peer connection, transport-erased into cloneable
/// read/write halves plus a shutdown hook to unblock a parked reader.
pub(crate) enum Conn {
    Uds(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Conn {
    fn split(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            Conn::Uds(s) => Ok((Box::new(s.try_clone()?), Box::new(s.try_clone()?))),
            Conn::Tcp(s) => Ok((Box::new(s.try_clone()?), Box::new(s.try_clone()?))),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

/// What this rank last heard from a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerStatus {
    Alive,
    /// Clean protocol finish: its remaining queued data is still valid,
    /// but waiting for *new* data from it can never complete.
    Bye,
    /// Crash: explicit `Dead` frame, EOF without `Bye`, or a write error.
    Dead,
}

/// Per-peer arrival state, all behind one mutex (see [`Shared`]).
struct PeerState {
    gathers: VecDeque<(String, Vec<f64>)>,
    a2as: VecDeque<Vec<f64>>,
    posts: PostQueue,
    /// Highest barrier generation heard from this peer.
    barrier_gen: u64,
    status: PeerStatus,
}

struct Shared {
    peers: Vec<PeerState>,
}

/// Completion flag for a deferred send: raised by the writer thread once
/// the frame has been handed to the OS.
struct SendFlag {
    done: Mutex<bool>,
    cv: Condvar,
}

impl SendFlag {
    fn new() -> Self {
        SendFlag {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn mark(&self) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    fn poll(&self) -> bool {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait(&self) {
        let mut g = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

enum WriteJob {
    Frame(Frame, Option<Arc<SendFlag>>),
    Shutdown,
}

/// The liveness probe period, same knob and default as the threads
/// backend (`CGNN_FAULT_HEARTBEAT_MS`, registered in the `cgnn-core`
/// knob registry).
pub(crate) fn heartbeat_from_env() -> Duration {
    let ms = std::env::var("CGNN_FAULT_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(25)
        .max(1);
    Duration::from_millis(ms)
}

/// One rank's view of a stream-connected SPMD world. Built by the
/// transport modules from an established full mesh; owns the reader and
/// writer threads until [`StreamWorld::teardown`].
pub(crate) struct StreamWorld {
    rank: usize,
    size: usize,
    label: &'static str,
    heartbeat: Duration,
    shared: Mutex<Shared>,
    cv: Condvar,
    /// This rank's own barrier generation counter.
    my_barrier_gen: AtomicU64,
    self_dead: AtomicBool,
    writers: Vec<Option<Sender<WriteJob>>>,
    writer_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    reader_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    conns: Vec<Option<Conn>>,
    stats: RankStats,
}

impl StreamWorld {
    /// Wire an established mesh (`conns[p]` for every peer `p != rank`,
    /// `None` at `rank`) into a running world: spawns one reader and one
    /// writer thread per peer.
    pub(crate) fn start(
        rank: usize,
        size: usize,
        label: &'static str,
        conns: Vec<Option<Conn>>,
    ) -> io::Result<Arc<StreamWorld>> {
        assert_eq!(conns.len(), size, "one connection slot per rank");
        let mut writers: Vec<Option<Sender<WriteJob>>> = Vec::with_capacity(size);
        let mut halves: Vec<Option<(Box<dyn Read + Send>, Box<dyn Write + Send>)>> =
            Vec::with_capacity(size);
        let mut receivers: Vec<Option<Receiver<WriteJob>>> = Vec::with_capacity(size);
        for (p, conn) in conns.iter().enumerate() {
            match conn {
                Some(c) => {
                    assert_ne!(p, rank, "no connection to self");
                    let (tx, rx) = unbounded();
                    writers.push(Some(tx));
                    receivers.push(Some(rx));
                    halves.push(Some(c.split()?));
                }
                None => {
                    writers.push(None);
                    receivers.push(None);
                    halves.push(None);
                }
            }
        }
        let world = Arc::new(StreamWorld {
            rank,
            size,
            label,
            heartbeat: heartbeat_from_env(),
            shared: Mutex::new(Shared {
                peers: (0..size)
                    .map(|_| PeerState {
                        gathers: VecDeque::new(),
                        a2as: VecDeque::new(),
                        posts: PostQueue::default(),
                        barrier_gen: 0,
                        status: PeerStatus::Alive,
                    })
                    .collect(),
            }),
            cv: Condvar::new(),
            my_barrier_gen: AtomicU64::new(0),
            self_dead: AtomicBool::new(false),
            writers,
            writer_threads: Mutex::new(Vec::new()),
            reader_threads: Mutex::new(Vec::new()),
            conns,
            stats: RankStats::default(),
        });
        let mut writer_threads = Vec::new();
        let mut reader_threads = Vec::new();
        for (p, half) in halves.into_iter().enumerate() {
            let Some((reader, writer)) = half else {
                continue;
            };
            let rx = receivers[p]
                .take()
                .expect("writer channel allocated alongside the connection");
            let w = Arc::clone(&world);
            reader_threads.push(std::thread::spawn(move || reader_loop(w, p, reader)));
            let w = Arc::clone(&world);
            writer_threads.push(std::thread::spawn(move || writer_loop(w, p, writer, rx)));
        }
        *world
            .writer_threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = writer_threads;
        *world
            .reader_threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = reader_threads;
        Ok(world)
    }

    /// Flush and stop the writer threads, close the connections, and join
    /// the readers. Called by the launcher after the rank closure (and
    /// its finish hook) has run; the world is unusable afterwards.
    pub(crate) fn teardown(&self) {
        for tx in self.writers.iter().flatten() {
            let _ = tx.send(WriteJob::Shutdown);
        }
        // Join the writers first: that guarantees every queued frame
        // (Bye / Dead included) is flushed to the wire before the
        // sockets close under the peers' readers.
        let writers = std::mem::take(
            &mut *self
                .writer_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for t in writers {
            let _ = t.join();
        }
        // Closing both directions unblocks any reader parked in read()
        // on a peer that never hangs up.
        for conn in self.conns.iter().flatten() {
            conn.shutdown();
        }
        let readers = std::mem::take(
            &mut *self
                .reader_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for t in readers {
            let _ = t.join();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queue a frame to `dst`. Never blocks: the writer thread owns the
    /// actual socket write.
    fn post(&self, dst: usize, frame: Frame, flag: Option<Arc<SendFlag>>) {
        let tx = self.writers[dst]
            .as_ref()
            .expect("posting to self or to a torn-down world");
        if tx.send(WriteJob::Frame(frame, flag.clone())).is_err() {
            // Writer already gone (teardown raced a late send): the
            // payload cannot leave, but nobody may hang on it either.
            if let Some(flag) = flag {
                flag.mark();
            }
        }
    }

    /// Block until `probe` yields, re-checking liveness every heartbeat.
    /// `deps` are the peers this wait cannot complete without: a `Dead`
    /// peer anywhere in the world aborts the wait, and so does a `Bye`
    /// from a dep (it finished its program; the data this wait wants can
    /// never arrive — a diverged schedule or a death we missed).
    fn wait_on<T>(&self, deps: &[usize], mut probe: impl FnMut(&mut Shared) -> Option<T>) -> T {
        let mut g = self.lock();
        loop {
            if let Some(v) = probe(&mut g) {
                return v;
            }
            let dead: Vec<usize> = (0..self.size)
                .filter(|&p| {
                    g.peers[p].status == PeerStatus::Dead
                        || (g.peers[p].status == PeerStatus::Bye && deps.contains(&p))
                })
                .collect();
            if !dead.is_empty() {
                drop(g);
                // detlint: allow(unwrap-in-lib, "liveness abort: unwinding into the recovery loop is how peers escape a dead world")
                std::panic::panic_any(RankFailure::PeerDead {
                    rank: self.rank,
                    dead,
                });
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, self.heartbeat)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
        }
    }

    fn others(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.size).filter(move |&p| p != self.rank)
    }

    /// Route one arrived frame into the shared state.
    fn dispatch(&self, peer: usize, frame: Frame) {
        let mut g = self.lock();
        match frame.kind {
            KIND_P2P => g.peers[peer].posts.deliver((frame.tag as u32, frame.data)),
            KIND_GATHER => g.peers[peer].gathers.push_back((frame.label, frame.data)),
            KIND_A2A => g.peers[peer].a2as.push_back(frame.data),
            KIND_BARRIER => {
                let p = &mut g.peers[peer];
                p.barrier_gen = p.barrier_gen.max(frame.tag);
            }
            KIND_DEAD => {
                let d = frame.tag as usize;
                if d < self.size && d != self.rank {
                    g.peers[d].status = PeerStatus::Dead;
                }
            }
            KIND_BYE if g.peers[peer].status == PeerStatus::Alive => {
                g.peers[peer].status = PeerStatus::Bye;
            }
            // Hello frames belong to rendezvous, before the world exists;
            // anything unknown from a checksummed stream is ignored so a
            // newer peer version cannot wedge an older one.
            _ => {}
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Reader saw EOF or an error: without a prior `Bye` (or `Dead`
    /// already recorded) the peer crashed.
    fn peer_hangup(&self, peer: usize, clean: bool) {
        let mut g = self.lock();
        let p = &mut g.peers[peer];
        if !(clean && p.status == PeerStatus::Bye) && p.status != PeerStatus::Dead {
            p.status = PeerStatus::Dead;
        }
        drop(g);
        self.cv.notify_all();
    }

    fn dead_list(&self) -> Vec<usize> {
        let g = self.lock();
        let mut dead: Vec<usize> = (0..self.size)
            .filter(|&p| g.peers[p].status == PeerStatus::Dead)
            .collect();
        if self.self_dead.load(Ordering::Acquire) {
            dead.push(self.rank);
            dead.sort_unstable();
        }
        dead
    }
}

fn reader_loop(world: Arc<StreamWorld>, peer: usize, mut r: Box<dyn Read + Send>) {
    loop {
        match read_frame(&mut r) {
            Ok(Some(frame)) => {
                let bye = frame.kind == KIND_BYE;
                world.dispatch(peer, frame);
                if bye {
                    // Nothing meaningful follows a Bye; exit without
                    // waiting for the EOF so teardown joins promptly.
                    return;
                }
            }
            Ok(None) => {
                world.peer_hangup(peer, true);
                return;
            }
            Err(_) => {
                // Truncated or corrupt stream: the peer (or the link) is
                // gone; surfacing it as a death is the only safe reading.
                world.peer_hangup(peer, false);
                return;
            }
        }
    }
}

fn writer_loop(
    world: Arc<StreamWorld>,
    peer: usize,
    w: Box<dyn Write + Send>,
    rx: Receiver<WriteJob>,
) {
    let mut w = io::BufWriter::new(w);
    while let Ok(job) = rx.recv() {
        match job {
            WriteJob::Frame(frame, flag) => {
                let res = write_frame(&mut w, &frame).and_then(|_| w.flush());
                if let Some(flag) = flag {
                    flag.mark();
                }
                if res.is_err() {
                    world.peer_hangup(peer, false);
                    break;
                }
            }
            WriteJob::Shutdown => return,
        }
    }
    // Drain whatever is still queued so no SendOp ever hangs on a flag.
    while let Ok(job) = rx.try_recv() {
        if let WriteJob::Frame(_, Some(flag)) = job {
            flag.mark();
        }
    }
}

/// The [`CommBackend`] face of a [`StreamWorld`].
pub(crate) struct StreamRank(pub(crate) Arc<StreamWorld>);

impl CommBackend for StreamRank {
    fn rank(&self) -> usize {
        self.0.rank
    }

    fn size(&self) -> usize {
        self.0.size
    }

    fn label(&self) -> &'static str {
        self.0.label
    }

    fn barrier(&self) {
        let w = &self.0;
        let gen = w.my_barrier_gen.fetch_add(1, Ordering::Relaxed) + 1;
        for p in w.others() {
            w.post(p, Frame::control(KIND_BARRIER, w.rank as u32, gen), None);
        }
        for p in w.others() {
            w.wait_on(&[p], |sh| (sh.peers[p].barrier_gen >= gen).then_some(()));
        }
    }

    fn all_gather(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        let w = &self.0;
        for p in w.others() {
            w.post(
                p,
                Frame {
                    kind: KIND_GATHER,
                    src: w.rank as u32,
                    tag: 0,
                    label: label.to_string(),
                    data: data.clone(),
                },
                None,
            );
        }
        let mut out = Vec::with_capacity(w.size);
        for p in 0..w.size {
            if p == w.rank {
                out.push(data.clone());
            } else {
                let (got, buf) = w.wait_on(&[p], |sh| sh.peers[p].gathers.pop_front());
                assert_eq!(
                    got, label,
                    "collective mismatch: rank {} is in `{label}` while rank {p} sent `{got}`",
                    w.rank
                );
                out.push(buf);
            }
        }
        out
    }

    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let w = &self.0;
        assert_eq!(send.len(), w.size, "all_to_all needs one buffer per rank");
        let mut out: Vec<Option<Vec<f64>>> = (0..w.size).map(|_| None).collect();
        for (dst, buf) in send.into_iter().enumerate() {
            if dst == w.rank {
                out[dst] = Some(buf);
            } else {
                // Empty buffers still travel: the exchange is lockstep, so
                // every rank pops exactly one frame per peer per call.
                w.post(
                    dst,
                    Frame {
                        kind: KIND_A2A,
                        src: w.rank as u32,
                        tag: 0,
                        label: String::new(),
                        data: buf,
                    },
                    None,
                );
            }
        }
        for p in 0..w.size {
            if p != w.rank {
                out[p] = Some(w.wait_on(&[p], |sh| sh.peers[p].a2as.pop_front()));
            }
        }
        out.into_iter()
            .map(|b| b.expect("every all_to_all slot filled"))
            .collect()
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        let w = &self.0;
        w.post(
            dst,
            Frame {
                kind: KIND_P2P,
                src: w.rank as u32,
                tag: tag as u64,
                label: String::new(),
                data,
            },
            None,
        );
    }

    fn isend(&self, dst: usize, tag: u32, data: Vec<f64>) -> Box<dyn SendOp> {
        let w = &self.0;
        let flag = Arc::new(SendFlag::new());
        w.post(
            dst,
            Frame {
                kind: KIND_P2P,
                src: w.rank as u32,
                tag: tag as u64,
                label: String::new(),
                data,
            },
            Some(Arc::clone(&flag)),
        );
        Box::new(StreamSendOp { flag })
    }

    fn irecv(&self, src: usize) -> Box<dyn RecvOp> {
        let seq = self.0.lock().peers[src].posts.post();
        Box::new(StreamRecvOp {
            world: Arc::clone(&self.0),
            src,
            seq,
        })
    }

    fn stats(&self) -> &RankStats {
        &self.0.stats
    }

    fn on_rank_finish(&self, panicked: bool) {
        if panicked {
            self.mark_dead();
        } else {
            let w = &self.0;
            for p in w.others() {
                w.post(p, Frame::control(KIND_BYE, w.rank as u32, 0), None);
            }
        }
    }

    fn mark_dead(&self) {
        let w = &self.0;
        w.self_dead.store(true, Ordering::Release);
        for p in w.others() {
            w.post(
                p,
                Frame::control(KIND_DEAD, w.rank as u32, w.rank as u64),
                None,
            );
        }
    }

    fn dead_ranks(&self) -> Vec<usize> {
        self.0.dead_list()
    }
}

/// A genuinely deferred send: completes when the writer thread has handed
/// the frame to the OS — the "true isend latency" the in-process
/// transports cannot exhibit.
struct StreamSendOp {
    flag: Arc<SendFlag>,
}

impl SendOp for StreamSendOp {
    fn try_complete(&mut self) -> bool {
        self.flag.poll()
    }

    fn complete(&mut self) {
        self.flag.wait();
    }
}

/// A posted receive against a peer's [`PostQueue`].
struct StreamRecvOp {
    world: Arc<StreamWorld>,
    src: usize,
    seq: u64,
}

impl RecvOp for StreamRecvOp {
    fn try_take(&mut self) -> Option<P2pMsg> {
        self.world.lock().peers[self.src].posts.claim(self.seq)
    }

    fn take(&mut self) -> P2pMsg {
        let src = self.src;
        let seq = self.seq;
        self.world
            .wait_on(&[src], |sh| sh.peers[src].posts.claim(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_bit_exactly() {
        let frame = Frame {
            kind: KIND_GATHER,
            src: 3,
            tag: 42,
            label: "all_reduce_sum".to_string(),
            data: vec![1.5, -0.0, f64::MIN_POSITIVE, 1e300],
        };
        let bytes = encode_frame(&frame);
        let back = read_frame(&mut &bytes[..])
            .expect("valid frame decodes")
            .expect("not EOF");
        assert_eq!(back, frame);
        assert_eq!(
            back.data[1].to_bits(),
            (-0.0f64).to_bits(),
            "signed zero survives the wire"
        );
    }

    #[test]
    fn eof_at_boundary_is_clean_and_mid_frame_is_not() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &empty[..]).expect("clean EOF").is_none());
        let bytes = encode_frame(&Frame::control(KIND_BYE, 0, 0));
        let truncated = &bytes[..bytes.len() - 3];
        assert!(read_frame(&mut &truncated[..]).is_err());
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = encode_frame(&Frame {
            kind: KIND_P2P,
            src: 1,
            tag: 7,
            label: String::new(),
            data: vec![2.0; 16],
        });
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = read_frame(&mut &bytes[..]).expect_err("flipped bit must not decode");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn implausible_lengths_are_rejected_without_allocating() {
        let mut bytes = encode_frame(&Frame::control(KIND_P2P, 0, 0));
        // Overwrite the payload count field with an absurd value.
        let count_at = 4 + 1 + 4 + 8 + 4; // magic + kind + src + tag + label len (label empty)
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_frame(&mut &bytes[..]).is_err());
    }
}
