//! Cross-process backend: one OS *process* per rank, launched by
//! re-exec'ing the current binary.
//!
//! # Launch model
//!
//! [`ProcWorld::launch`] inspects the environment to decide its role:
//!
//! * **Spawner** (`CGNN_RANK` unset): the calling process becomes rank 0.
//!   It creates a rendezvous directory, re-execs the current binary once
//!   per remaining rank with `CGNN_RANK`/`CGNN_WORLD`/`CGNN_LAUNCHED`/
//!   `CGNN_PROC_SEQ`/`CGNN_PROC_DIR` set, runs its own rank inline, then
//!   reaps the children. Only rank 0's result is returned (a one-element
//!   vector): the other ranks live in other address spaces.
//! * **Joiner** (`CGNN_RANK` set, and this is the launch named by
//!   `CGNN_PROC_SEQ`): the process is a re-exec'd child. It connects the
//!   mesh, runs its rank, reports failure through a `rank{r}.fail` file
//!   in the rendezvous directory, and exits without returning.
//! * **Replayer** (`CGNN_RANK` set, but an *earlier* launch than the one
//!   this child was spawned for): a re-exec'd child replaying the program
//!   prefix deterministically. The launch is satisfied in-process on the
//!   serial backend — bit-identical to what the parent computed — so the
//!   program reaches the join point with exactly the parent's state.
//!
//! Because a child *re-runs the program from `main`*, any launch that is
//! not the program's first needs the child to replay the earlier launches;
//! the replay rule above makes that correct and deterministic. Test
//! binaries (whose argv selects which tests run) pin the argv for children
//! with [`reexec_scope`], which also restarts the launch numbering so
//! parent and child count launches identically.
//!
//! # Thread budget
//!
//! Multi-rank worlds on one machine oversubscribe the cores if every rank
//! keeps the full kernel worker pool: `ranks × workers` threads contend
//! for `cores`. Unless the worker count is explicitly pinned
//! (`CGNN_NUM_THREADS` / `RAYON_NUM_THREADS`), every launcher in this
//! crate budgets each rank to `max(1, cores / world_size)` workers
//! (`budget_for`), which the process launchers export to children as an
//! explicit `CGNN_NUM_THREADS` pin. `CGNN_THREAD_BUDGET=off` disables the
//! clamp, `CGNN_THREAD_BUDGET=<n>` forces a per-rank worker count.
//!
//! Kernel results are bit-identical at every worker count (chunk
//! boundaries never depend on it), so the budget is purely a scheduling
//! decision — it cannot change a trajectory.

use std::any::Any;
use std::cell::RefCell;
use std::io::{self, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::serial::SerialBackend;
use crate::backend::wire::{self, Conn, Frame, StreamRank, StreamWorld, KIND_HELLO};
use crate::backend::CommBackend;
use crate::comm::Comm;
use crate::fault::RankFailure;

/// How long mesh dialing retries before giving up on a peer process.
const CONNECT_DEADLINE: Duration = Duration::from_secs(60);
/// How long the spawner waits for children to exit after its own rank
/// finished (kept under the chaos suite's `HangGuard`).
const CHILD_WAIT: Duration = Duration::from_secs(240);
/// Child exit code signalling "rank panicked, see the `.fail` report".
const CHILD_FAIL_EXIT: i32 = 70;

// ---------------------------------------------------------------------
// Launch numbering and re-exec argv scopes
// ---------------------------------------------------------------------

struct ScopeFrame {
    args: Vec<String>,
    next_seq: u64,
}

thread_local! {
    static SCOPES: RefCell<Vec<ScopeFrame>> = const { RefCell::new(Vec::new()) };
}

/// Launch counter for cross-process launches outside any scope.
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// RAII argv scope for cross-process launches; see [`reexec_scope`].
pub struct ReexecScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pin the argv that re-exec'd child ranks receive, and restart the
/// launch numbering, until the returned guard drops.
///
/// A spawned child re-runs the current *binary*; for a plain program the
/// program's own argv is correct, but a test binary must be told to run
/// only the worker entry point (e.g. `["my_worker", "--exact",
/// "--ignored"]`), not the whole suite. Both the parent and the worker
/// entry must execute the launches under the same scope so their launch
/// sequence numbers line up (the scope restarts numbering at 1).
pub fn reexec_scope<I, S>(args: I) -> ReexecScope
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    SCOPES.with(|s| {
        s.borrow_mut().push(ScopeFrame {
            args: args.into_iter().map(Into::into).collect(),
            next_seq: 1,
        })
    });
    ReexecScope {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ReexecScope {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Sequence number and child argv for the next cross-process launch.
fn next_launch() -> (u64, Vec<String>) {
    SCOPES.with(|s| {
        let mut s = s.borrow_mut();
        if let Some(top) = s.last_mut() {
            let seq = top.next_seq;
            top.next_seq += 1;
            (seq, top.args.clone())
        } else {
            (
                GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed) + 1,
                std::env::args().skip(1).collect(),
            )
        }
    })
}

enum Role {
    Spawn,
    Join { rank: usize },
    Replay,
}

fn role_for(seq: u64) -> Role {
    let Ok(rank) = std::env::var("CGNN_RANK") else {
        return Role::Spawn;
    };
    let rank: usize = rank
        .parse()
        .expect("CGNN_RANK must be a rank index in 0..world");
    if std::env::var("CGNN_LAUNCHED").is_err() {
        // Manually launched rank (one process per machine, operator-run):
        // there is no spawner replaying a program prefix, so every
        // cross-process launch in the program joins.
        return Role::Join { rank };
    }
    let target: u64 = std::env::var("CGNN_PROC_SEQ")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if seq == target {
        Role::Join { rank }
    } else {
        Role::Replay
    }
}

// ---------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------

/// The per-rank kernel worker budget for a world of `world` ranks, or
/// `None` when the worker count is explicitly pinned (the pin wins) or
/// budgeting is disabled (`CGNN_THREAD_BUDGET=off`).
///
/// Default policy: `max(1, cores / world)`, so
/// `ranks × workers ≤ cores` — kernel parallelism and rank parallelism
/// compose instead of contending. `CGNN_THREAD_BUDGET=<n>` forces a
/// per-rank count.
///
/// # Panics
///
/// Panics when `CGNN_THREAD_BUDGET` is set to something other than
/// `auto`, `off`, or a worker count — a configuration error at launch,
/// surfaced loudly rather than silently mis-budgeting the kernel pool.
pub(crate) fn budget_for(world: usize) -> Option<usize> {
    for var in ["CGNN_NUM_THREADS", "RAYON_NUM_THREADS"] {
        // detlint: allow(env-var-registry, "both names are registered knobs; the loop only probes whether either pin is present")
        if std::env::var(var).map(|v| !v.is_empty()).unwrap_or(false) {
            return None;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    match std::env::var("CGNN_THREAD_BUDGET") {
        Ok(v) if v.eq_ignore_ascii_case("off") => None,
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => match v.parse::<usize>() {
            Ok(n) => Some(n.max(1)),
            Err(_) => {
                // detlint: allow(unwrap-in-lib, "config error at startup: fail loudly rather than silently mis-budgeting the kernel pool")
                panic!("CGNN_THREAD_BUDGET must be `auto`, `off`, or a per-rank worker count, got `{v}`")
            }
        },
        _ => Some((cores / world.max(1)).max(1)),
    }
}

/// RAII application of a worker budget to the current thread's kernel
/// pool; restores the previous budget on drop.
pub(crate) struct BudgetGuard(Option<usize>);

impl BudgetGuard {
    pub(crate) fn arm(budget: Option<usize>) -> Option<BudgetGuard> {
        budget.map(|b| BudgetGuard(rayon::set_thread_budget(Some(b))))
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        rayon::set_thread_budget(self.0);
    }
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// How a process world dials its full mesh. The launch/role machinery is
/// transport-agnostic; `proc` (Unix-domain sockets) and `socket` (TCP)
/// implement this.
pub(crate) trait ProcTransport {
    fn label(&self) -> &'static str;

    /// Spawner-side setup before the children exist (e.g. binding a
    /// rendezvous listener whose address must go into the child env).
    /// Returns extra environment variables for the children.
    fn prepare(&mut self, dir: &Path, size: usize) -> io::Result<Vec<(&'static str, String)>>;

    /// Establish this rank's connection mesh: `conns[p]` for every peer,
    /// `None` at `rank` itself.
    fn connect(&mut self, rank: usize, size: usize, dir: &Path) -> io::Result<Vec<Option<Conn>>>;
}

/// Unix-domain-socket mesh in the rendezvous directory: rank `r` listens
/// on `r{r}.sock`, dials every lower rank (identifying itself with a
/// `Hello` frame), and accepts every higher rank.
#[derive(Default)]
pub(crate) struct UdsTransport;

fn sock_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("r{rank}.sock"))
}

fn timed_out(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, what.to_string())
}

impl ProcTransport for UdsTransport {
    fn label(&self) -> &'static str {
        "proc"
    }

    fn prepare(&mut self, _dir: &Path, _size: usize) -> io::Result<Vec<(&'static str, String)>> {
        Ok(Vec::new())
    }

    fn connect(&mut self, rank: usize, size: usize, dir: &Path) -> io::Result<Vec<Option<Conn>>> {
        let my = sock_path(dir, rank);
        let _ = std::fs::remove_file(&my);
        let listener = UnixListener::bind(&my)?;
        let mut conns: Vec<Option<Conn>> = (0..size).map(|_| None).collect();
        let deadline = Instant::now() + CONNECT_DEADLINE;
        for peer in 0..rank {
            let stream = loop {
                match UnixStream::connect(sock_path(dir, peer)) {
                    Ok(s) => break s,
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(e),
                }
            };
            wire::write_frame(&mut (&stream), &Frame::control(KIND_HELLO, rank as u32, 0))?;
            conns[peer] = Some(Conn::Uds(stream));
        }
        listener.set_nonblocking(true)?;
        let mut pending = size - 1 - rank;
        while pending > 0 {
            match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    let hello = wire::read_frame(&mut (&s))?
                        .ok_or_else(|| timed_out("peer closed before Hello"))?;
                    let src = hello.src as usize;
                    if hello.kind != KIND_HELLO || src >= size || src <= rank {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected rendezvous frame from rank {src}"),
                        ));
                    }
                    conns[src] = Some(Conn::Uds(s));
                    pending -= 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(timed_out("rendezvous accept timed out"));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(conns)
    }
}

// ---------------------------------------------------------------------
// Failure reports across the process boundary
// ---------------------------------------------------------------------

/// Serialize a child's unwind payload for the `rank{r}.fail` report.
fn encode_failure(payload: &(dyn Any + Send)) -> String {
    if let Some(f) = RankFailure::from_payload(payload) {
        match f {
            RankFailure::Killed { rank, op } => format!("killed {rank} {op}"),
            RankFailure::PeerDead { rank, dead } => {
                let csv: Vec<String> = dead.iter().map(|d| d.to_string()).collect();
                format!("peerdead {rank} {}", csv.join(","))
            }
            RankFailure::Stalled { rank, src } => format!("stalled {rank} {src}"),
        }
    } else if let Some(m) = payload.downcast_ref::<String>() {
        format!("genuine {m}")
    } else if let Some(m) = payload.downcast_ref::<&'static str>() {
        format!("genuine {m}")
    } else {
        "genuine child rank panicked with an opaque payload".to_string()
    }
}

/// Reconstruct an unwind payload from a `rank{r}.fail` report; malformed
/// reports degrade to "the process is gone" ([`RankFailure::PeerDead`]).
fn decode_failure(text: &str, child_rank: usize) -> Box<dyn Any + Send> {
    let text = text.trim();
    let (kind, rest) = text.split_once(' ').unwrap_or((text, ""));
    match kind {
        "killed" => {
            if let Some((r, op)) = rest.split_once(' ') {
                if let (Ok(rank), Ok(op)) = (r.parse::<usize>(), op.parse::<u64>()) {
                    return Box::new(RankFailure::Killed { rank, op });
                }
            }
        }
        "peerdead" => {
            if let Some((r, csv)) = rest.split_once(' ') {
                let dead: Option<Vec<usize>> =
                    csv.split(',').map(|d| d.parse::<usize>().ok()).collect();
                if let (Ok(rank), Some(dead)) = (r.parse::<usize>(), dead) {
                    return Box::new(RankFailure::PeerDead { rank, dead });
                }
            }
        }
        "stalled" => {
            if let Some((r, s)) = rest.split_once(' ') {
                if let (Ok(rank), Ok(src)) = (r.parse::<usize>(), s.parse::<usize>()) {
                    return Box::new(RankFailure::Stalled { rank, src });
                }
            }
        }
        "genuine" => return Box::new(rest.to_string()),
        _ => {}
    }
    Box::new(RankFailure::PeerDead {
        rank: 0,
        dead: vec![child_rank],
    })
}

fn fail_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank{rank}.fail"))
}

/// The unwind payload to charge to a child that exited unsuccessfully.
fn child_payload(dir: &Path, rank: usize) -> Box<dyn Any + Send> {
    match std::fs::read_to_string(fail_path(dir, rank)) {
        Ok(text) => decode_failure(&text, rank),
        // Died without writing a report (SIGKILL, OOM, ...): all the
        // spawner knows is that the process is gone.
        Err(_) => Box::new(RankFailure::PeerDead {
            rank: 0,
            dead: vec![rank],
        }),
    }
}

// ---------------------------------------------------------------------
// The launcher
// ---------------------------------------------------------------------

/// Run one rank against an established mesh: decorate, run the start /
/// finish hooks, tear the world down, and hand back the closure result
/// or the unwind payload.
fn run_local_rank<T, F, D>(
    world: Arc<StreamWorld>,
    f: &F,
    decorate: &D,
) -> Result<T, Box<dyn Any + Send>>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
    D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
{
    let backend = decorate(Arc::new(StreamRank(Arc::clone(&world))) as Arc<dyn CommBackend>);
    backend.on_rank_start();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let comm = Comm::from_backend(Arc::clone(&backend));
        f(&comm)
    }));
    backend.on_rank_finish(result.is_err());
    world.teardown();
    result
}

/// Transport-generic cross-process launch (see the module docs for the
/// role machinery).
pub(crate) fn launch_stream<T, F, D, P>(transport: P, size: usize, f: F, decorate: D) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
    D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    P: ProcTransport,
{
    assert!(size > 0, "world size must be positive");
    let (seq, args) = next_launch();
    match role_for(seq) {
        Role::Spawn => spawn_world(transport, size, seq, args, f, decorate),
        Role::Join { rank } => join_world(transport, rank, size, f, decorate),
        Role::Replay => {
            // A child replaying a launch its parent already completed:
            // satisfy it deterministically in-process. The serial backend
            // is bit-identical to every other transport, so the program
            // reaches this child's join point with the parent's state.
            let mut all = SerialBackend::launch_with(size, f, decorate);
            all.truncate(1);
            all
        }
    }
}

fn spawn_world<T, F, D, P>(
    mut transport: P,
    size: usize,
    seq: u64,
    args: Vec<String>,
    f: F,
    decorate: D,
) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
    D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    P: ProcTransport,
{
    let base = std::env::var("CGNN_PROC_DIR")
        .ok()
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!(
        "cgnn-{}-{}-{seq}",
        transport.label(),
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create the cross-process rendezvous directory");
    let extra_env = transport
        .prepare(&dir, size)
        .expect("prepare the cross-process rendezvous");
    let budget = budget_for(size);
    let exe = std::env::current_exe().expect("resolve the current executable for re-exec");
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(size.saturating_sub(1));
    for r in 1..size {
        let log = std::fs::File::create(dir.join(format!("rank{r}.log")))
            .expect("create the child rank log file");
        let mut cmd = Command::new(&exe);
        cmd.args(&args)
            .env("CGNN_RANK", r.to_string())
            .env("CGNN_WORLD", size.to_string())
            .env("CGNN_LAUNCHED", "1")
            .env("CGNN_PROC_SEQ", seq.to_string())
            .env("CGNN_PROC_DIR", &dir)
            .stdin(Stdio::null())
            .stdout(Stdio::from(
                log.try_clone().expect("clone the child log handle"),
            ))
            .stderr(Stdio::from(log));
        for (k, v) in &extra_env {
            cmd.env(k, v);
        }
        if let Some(b) = budget {
            // Exported as an explicit pin so the child's kernel pool (and
            // any world it replays) uses the budgeted worker count.
            cmd.env("CGNN_NUM_THREADS", b.to_string());
        }
        let child = cmd
            .spawn()
            .expect("re-exec the current binary as a rank process");
        children.push((r, child));
    }

    // This process is rank 0.
    let _budget = BudgetGuard::arm(budget);
    let conns = transport
        .connect(0, size, &dir)
        .expect("establish rank 0's connection mesh");
    let world =
        StreamWorld::start(0, size, transport.label(), conns).expect("start rank 0's stream world");
    let result = run_local_rank(world, &f, &decorate);

    // Reap the children; collect failure reports.
    let mut payloads: Vec<Box<dyn Any + Send>> = Vec::new();
    let deadline = Instant::now() + CHILD_WAIT;
    for (r, mut child) in children {
        let status = loop {
            match child.try_wait().expect("poll a rank process") {
                Some(s) => break Some(s),
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break None;
                }
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        if !status.map(|s| s.success()).unwrap_or(false) {
            payloads.push(child_payload(&dir, r));
        }
    }
    match result {
        Ok(t0) => {
            if let Some(root) = payloads
                .into_iter()
                .min_by_key(|p| RankFailure::severity(p.as_ref()))
            {
                // Keep the directory: it holds the children's logs and
                // failure reports for post-mortem.
                std::panic::resume_unwind(root);
            }
            let _ = std::fs::remove_dir_all(&dir);
            vec![t0]
        }
        Err(p) => {
            payloads.push(p);
            let root = payloads
                .into_iter()
                .min_by_key(|p| RankFailure::severity(p.as_ref()))
                .expect("at least rank 0's own unwind payload is present");
            std::panic::resume_unwind(root);
        }
    }
}

fn join_world<T, F, D, P>(mut transport: P, rank: usize, size: usize, f: F, decorate: D) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
    D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    P: ProcTransport,
{
    if let Ok(w) = std::env::var("CGNN_WORLD") {
        let w: usize = w.parse().expect("CGNN_WORLD must be a world size");
        assert_eq!(
            w, size,
            "CGNN_WORLD disagrees with the program's world size at this launch: \
             the replayed program diverged from the spawner"
        );
    }
    assert!(rank < size, "CGNN_RANK must be inside 0..CGNN_WORLD");
    let dir = std::env::var("CGNN_PROC_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let launched = std::env::var("CGNN_LAUNCHED").is_ok();
    let _budget = BudgetGuard::arm(budget_for(size));
    let conns = transport
        .connect(rank, size, &dir)
        .expect("establish this rank's connection mesh");
    let world = StreamWorld::start(rank, size, transport.label(), conns)
        .expect("start this rank's stream world");
    let result = run_local_rank(world, &f, &decorate);
    match result {
        Ok(t) => {
            if launched {
                // The re-exec'd child's program is done: its only purpose
                // was this rank. Results other than rank 0's are dropped
                // by design.
                let _ = io::stdout().flush();
                let _ = io::stderr().flush();
                std::process::exit(0);
            }
            vec![t]
        }
        Err(p) => {
            if launched {
                let _ = std::fs::write(fail_path(&dir, rank), encode_failure(p.as_ref()));
                let _ = io::stdout().flush();
                let _ = io::stderr().flush();
                std::process::exit(CHILD_FAIL_EXIT);
            }
            std::panic::resume_unwind(p)
        }
    }
}

/// The cross-process launcher (Unix-domain-socket mesh): one OS process
/// per rank on this machine, true address-space isolation, real
/// serialization cost, genuinely deferred `isend` completion.
///
/// Usually reached through [`Backend::Proc`](crate::Backend::Proc); the
/// type exists so the launcher can be named directly.
pub struct ProcWorld;

impl ProcWorld {
    /// Launch `f` on `size` single-process ranks; returns rank 0's result
    /// only (`vec[0]`), because the other ranks run in other processes.
    pub fn launch<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Self::launch_with(size, f, |backend| backend)
    }

    /// [`ProcWorld::launch`] with a per-rank backend decorator (fault
    /// injection); each process decorates its own rank.
    pub fn launch_with<T, F, D>(size: usize, f: F, decorate: D) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
        D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    {
        launch_stream(UdsTransport, size, f, decorate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_reports_round_trip() {
        let cases: Vec<RankFailure> = vec![
            RankFailure::Killed { rank: 2, op: 17 },
            RankFailure::PeerDead {
                rank: 1,
                dead: vec![0, 3],
            },
            RankFailure::Stalled { rank: 3, src: 1 },
        ];
        for case in cases {
            let text = encode_failure(&case.clone() as &(dyn Any + Send));
            let back = decode_failure(&text, 9);
            assert_eq!(RankFailure::from_payload(back.as_ref()), Some(&case));
        }
        let genuine = encode_failure(&"index out of bounds" as &(dyn Any + Send));
        let back = decode_failure(&genuine, 9);
        assert_eq!(
            back.downcast_ref::<String>().map(String::as_str),
            Some("index out of bounds")
        );
        // Garbage degrades to "the process is gone".
        let back = decode_failure("segfault probably", 4);
        assert_eq!(
            RankFailure::from_payload(back.as_ref()),
            Some(&RankFailure::PeerDead {
                rank: 0,
                dead: vec![4]
            })
        );
    }

    #[test]
    fn scopes_restart_launch_numbering() {
        let (outer_a, _) = next_launch();
        {
            let _scope = reexec_scope(["worker", "--exact"]);
            let (s1, args) = next_launch();
            let (s2, _) = next_launch();
            assert_eq!((s1, s2), (1, 2));
            assert_eq!(args, vec!["worker".to_string(), "--exact".to_string()]);
        }
        {
            let _scope = reexec_scope(["other"]);
            assert_eq!(next_launch().0, 1, "each scope numbers from 1");
        }
        let (outer_b, _) = next_launch();
        assert_eq!(outer_b, outer_a + 1, "the global counter resumes");
    }
}
