//! Pluggable communication transports.
//!
//! The front-end [`Comm`] handle is backend-agnostic: every
//! collective, point-to-point, and accounting path goes through the
//! object-safe [`CommBackend`] trait, so a new transport (a real MPI/NCCL
//! binding, a cross-process shared-memory world, a network simulator) is a
//! new `impl`, not a rewrite of `cgnn-core`. Five backends ship in-tree:
//!
//! * [`ThreadWorld`](threads::ThreadWorld) — one OS thread per rank with
//!   real concurrency, the default (mirrors the paper's one-GPU-per-rank
//!   SPMD setup),
//! * [`SerialBackend`](serial::SerialBackend) — a loopback world that
//!   executes ranks one at a time in deterministic round-robin order:
//!   zero-concurrency reference semantics for debugging and CI,
//! * [`ProcWorld`](proc::ProcWorld) — one OS *process* per rank
//!   (re-exec plus a Unix-domain-socket mesh): true address-space
//!   isolation, real serialization cost, per-rank thread budgets that
//!   actually hold,
//! * [`SocketWorld`](socket::SocketWorld) — one process per rank over a
//!   full TCP mesh, spanning machines via a rank-0 rendezvous listener,
//! * [`LoopbackBackend`](loopback::LoopbackBackend) — a world of exactly
//!   one rank on the calling thread, for persistent single-rank trainers
//!   (the `cgnn-serve` replica pool, the Criterion step benchmarks).
//!
//! The two cross-process transports share the checksummed `CGNW` frame
//! engine in the `wire` module. Backends provide raw transport primitives only;
//! traffic accounting and the deterministic reduction arithmetic live
//! once, in [`Comm`], so all backends are bit-identical by construction.
//!
//! # Implementing a custom backend
//!
//! A minimal single-rank loopback transport (collectives are identities,
//! point-to-point is unreachable at world size 1):
//!
//! ```
//! use std::sync::Arc;
//! use cgnn_comm::{Comm, CommBackend, RankStats, RecvOp};
//!
//! struct Loopback {
//!     stats: RankStats,
//! }
//!
//! impl CommBackend for Loopback {
//!     fn rank(&self) -> usize {
//!         0
//!     }
//!     fn size(&self) -> usize {
//!         1
//!     }
//!     fn label(&self) -> &'static str {
//!         "loopback"
//!     }
//!     fn barrier(&self) {}
//!     fn all_gather(&self, _label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
//!         vec![data]
//!     }
//!     fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
//!         send
//!     }
//!     fn send(&self, _dst: usize, _tag: u32, _data: Vec<f64>) {
//!         unreachable!("no peers in a single-rank world")
//!     }
//!     fn irecv(&self, _src: usize) -> Box<dyn RecvOp> {
//!         unreachable!("no peers in a single-rank world")
//!     }
//!     fn stats(&self) -> &RankStats {
//!         &self.stats
//!     }
//! }
//!
//! let comm = Comm::from_backend(Arc::new(Loopback {
//!     stats: RankStats::default(),
//! }));
//! assert_eq!(comm.all_reduce_scalar(2.5), 2.5);
//! assert_eq!(comm.backend_label(), "loopback");
//! ```

pub mod loopback;
pub mod proc;
pub mod serial;
pub mod socket;
pub mod threads;
pub(crate) mod wire;

use std::collections::HashMap;
use std::sync::Arc;

use crate::comm::Comm;
use crate::stats::RankStats;

/// Message on a point-to-point channel: `(tag, payload)`.
pub(crate) type P2pMsg = (u32, Vec<f64>);

/// An object-safe communication transport for one rank of an SPMD world.
///
/// Implementations supply *raw* primitives: deterministic rank-ordered
/// reductions, traffic counting, and tag checking are layered on top by
/// [`Comm`], identically for every backend. The contract per method:
///
/// * `all_gather` is a labeled collective: every rank contributes one
///   buffer, the result is indexed by rank and identical everywhere, and
///   mismatched `label`s across ranks must fail loudly (they indicate
///   diverged collective schedules).
/// * `all_to_all` takes one buffer per destination rank and returns one
///   buffer per source rank; empty buffers mean "no traffic".
/// * `send` is buffered and never blocks; `recv`/`irecv` match messages
///   from a given source strictly in posting order (FIFO per peer pair,
///   like a single-communicator MPI with deterministic tags).
/// * [`CommBackend::isend`]/[`CommBackend::irecv`] are the non-blocking
///   ops; the default `isend` completes immediately (correct for any
///   buffered transport), and `recv` is provided as `irecv` + wait.
pub trait CommBackend: Send + Sync {
    /// This rank's index in `0..size`.
    fn rank(&self) -> usize;

    /// World size.
    fn size(&self) -> usize;

    /// Transport label (`"threads"`, `"serial"`, ...) for diagnostics.
    fn label(&self) -> &'static str;

    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// Gather every rank's `data`; result indexed by rank, identical on
    /// all ranks. `label` names the collective for schedule-divergence
    /// detection.
    fn all_gather(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>>;

    /// Exchange `send[dst]` buffers; returns `recv[src]`.
    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>>;

    /// Buffered point-to-point send; never blocks.
    fn send(&self, dst: usize, tag: u32, data: Vec<f64>);

    /// Post a non-blocking receive for the next unmatched message from
    /// `src`. Matching is strictly FIFO per source; the returned op is
    /// completed (on the posting rank) via [`RecvOp::take`] or polled via
    /// [`RecvOp::try_take`].
    fn irecv(&self, src: usize) -> Box<dyn RecvOp>;

    /// Begin a non-blocking send. Both in-tree transports buffer sends, so
    /// the default completes immediately; a zero-copy or rendezvous
    /// transport would return a deferred op instead.
    fn isend(&self, dst: usize, tag: u32, data: Vec<f64>) -> Box<dyn SendOp> {
        self.send(dst, tag, data);
        Box::new(CompletedSend)
    }

    /// Blocking receive of the next unmatched message from `src`,
    /// returning `(tag, payload)`.
    fn recv(&self, src: usize) -> P2pMsg {
        self.irecv(src).take()
    }

    /// This rank's traffic counters (owned by the backend so clones of the
    /// handle share them).
    fn stats(&self) -> &RankStats;

    /// Hook run on the rank's thread before the SPMD closure starts.
    fn on_rank_start(&self) {}

    /// Hook run when the SPMD closure finishes (or unwinds, in which case
    /// `panicked` is true).
    fn on_rank_finish(&self, panicked: bool) {
        let _ = panicked;
    }

    /// Liveness probe, write side: declare this rank dead to the world.
    ///
    /// Transports with peer tracking (both in-tree multi-rank transports)
    /// record the death so peers blocked in collectives or receives abort
    /// with [`RankFailure::PeerDead`](crate::RankFailure::PeerDead) instead
    /// of hanging. The default is a no-op, correct for transports without
    /// liveness tracking (e.g. single-rank loopbacks, where there is no
    /// peer to warn).
    fn mark_dead(&self) {}

    /// Liveness probe, read side: ranks known to have died in this world,
    /// in ascending order. Default: none.
    fn dead_ranks(&self) -> Vec<usize> {
        Vec::new()
    }
}

/// An in-flight non-blocking send, produced by [`CommBackend::isend`].
pub trait SendOp: Send {
    /// Poll for completion without blocking.
    fn try_complete(&mut self) -> bool;

    /// Block until the transport has taken ownership of the payload.
    fn complete(&mut self);
}

/// An in-flight non-blocking receive, produced by [`CommBackend::irecv`].
pub trait RecvOp: Send {
    /// Poll: take the matched message if it has arrived.
    fn try_take(&mut self) -> Option<P2pMsg>;

    /// Block until the matched message arrives, then take it.
    fn take(&mut self) -> P2pMsg;
}

/// The trivial already-finished send op backing the default
/// [`CommBackend::isend`] of buffered transports.
pub struct CompletedSend;

impl SendOp for CompletedSend {
    fn try_complete(&mut self) -> bool {
        true
    }

    fn complete(&mut self) {}
}

/// FIFO matcher between posted receives and arrived messages for one
/// `(receiver, source)` pair: post seq `k` matches the `k`-th message to
/// arrive, regardless of the order in which requests are completed.
///
/// Backends embed one per peer pair; custom backends are free to reuse it.
#[derive(Default, Debug)]
pub struct PostQueue {
    next_post: u64,
    next_arrival: u64,
    arrived: HashMap<u64, P2pMsg>,
}

impl PostQueue {
    /// Register a posted receive; returns its matching sequence number.
    pub fn post(&mut self) -> u64 {
        let seq = self.next_post;
        self.next_post += 1;
        seq
    }

    /// Record an arrived message (in transport arrival order).
    pub fn deliver(&mut self, msg: P2pMsg) {
        self.arrived.insert(self.next_arrival, msg);
        self.next_arrival += 1;
    }

    /// Take the message matching post `seq`, if it has arrived.
    pub fn claim(&mut self, seq: u64) -> Option<P2pMsg> {
        self.arrived.remove(&seq)
    }
}

/// Which in-tree transport an SPMD world runs on.
///
/// Selected explicitly (`Session::builder().backend(..)`,
/// [`Backend::launch`]) or through the `CGNN_BACKEND` environment variable
/// ([`Backend::from_env`], honored by [`World::run`](crate::World::run) and
/// the session default) — which is how CI matrixes the whole test suite
/// over every transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Backend {
    /// One OS thread per rank, real concurrency (the default).
    #[default]
    Threads,
    /// Deterministic single-stepped loopback: ranks execute round-robin,
    /// one at a time.
    Serial,
    /// One OS *process* per rank (re-exec + Unix-domain-socket mesh).
    /// Returns rank 0's result only; see [`ProcWorld`](proc::ProcWorld).
    Proc,
    /// One process per rank over a full TCP mesh (can span machines).
    /// Returns rank 0's result only; see
    /// [`SocketWorld`](socket::SocketWorld).
    Socket,
}

impl Backend {
    /// Display label (also the accepted `CGNN_BACKEND` values).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Serial => "serial",
            Backend::Proc => "proc",
            Backend::Socket => "socket",
        }
    }

    /// The in-process backends, in presentation order. The cross-process
    /// transports ([`Backend::Proc`], [`Backend::Socket`]) re-exec the
    /// binary and return only rank 0's result, so suites that iterate
    /// worlds inside one process stick to these two; the cross-process
    /// equivalence and chaos suites launch the others explicitly.
    pub fn all() -> [Backend; 2] {
        [Backend::Threads, Backend::Serial]
    }

    /// Whether launching returns every rank's result in one address space
    /// (`threads`/`serial`) rather than rank 0's only (`proc`/`socket`).
    pub fn is_in_process(self) -> bool {
        matches!(self, Backend::Threads | Backend::Serial)
    }

    /// The backend named by the `CGNN_BACKEND` environment variable
    /// (`"threads"`, `"serial"`, `"proc"`, or `"socket"`,
    /// case-insensitive), defaulting to [`Backend::Threads`] when unset
    /// or empty.
    ///
    /// # Panics
    ///
    /// On any other value: config errors at startup fail loudly rather
    /// than silently testing the wrong transport.
    pub fn from_env() -> Backend {
        match std::env::var("CGNN_BACKEND") {
            Err(_) => Backend::Threads,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "threads" => Backend::Threads,
                "serial" => Backend::Serial,
                "proc" => Backend::Proc,
                "socket" => Backend::Socket,
                other => {
                    // detlint: allow(unwrap-in-lib, "config error at startup: fail loudly rather than silently testing the wrong transport")
                    panic!("unknown CGNN_BACKEND value `{other}` (expected `threads`, `serial`, `proc`, or `socket`)")
                }
            },
        }
    }

    /// Run `f` on `size` ranks over this transport. The in-process
    /// backends return each rank's result in rank order; the
    /// cross-process backends return rank 0's result only (the other
    /// ranks live in other processes). Panics in any rank propagate.
    pub fn launch<T, F>(self, size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        self.launch_with(size, f, |backend| backend)
    }

    /// [`Backend::launch`] with a per-rank backend decorator: each rank's
    /// transport is passed through `decorate` before being wired into its
    /// [`Comm`] handle. This is how fault injection wraps a world (see
    /// [`FaultInjector`](crate::FaultInjector)) without the transports
    /// knowing about it; the identity decorator reproduces `launch`. On
    /// the cross-process backends every *process* decorates its own rank.
    pub fn launch_with<T, F, D>(self, size: usize, f: F, decorate: D) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
        D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    {
        match self {
            Backend::Threads => threads::ThreadWorld::launch_with(size, f, decorate),
            Backend::Serial => serial::SerialBackend::launch_with(size, f, decorate),
            Backend::Proc => proc::ProcWorld::launch_with(size, f, decorate),
            Backend::Socket => socket::SocketWorld::launch_with(size, f, decorate),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Shared SPMD runner: spawn one scoped thread per rank, wire its backend
/// into a [`Comm`] handle, run `f`, and propagate panics. The start/finish
/// hooks let backends impose a schedule (the serial backend's baton) and
/// observe unwinds (so peers fail fast instead of hanging).
///
/// When several ranks panic, every handle is joined first and the most
/// root-cause payload is re-raised: a genuine (non-fault) panic beats an
/// injected [`RankFailure::Killed`](crate::RankFailure::Killed), which
/// beats the secondary [`RankFailure::Stalled`](crate::RankFailure) /
/// [`RankFailure::PeerDead`](crate::RankFailure) aborts that cascade from
/// it — so a chaos run reports the fault, not its echoes, and a real bug
/// is never masked by injected noise.
pub(crate) fn run_ranks<T, F>(
    size: usize,
    f: F,
    backend_for: impl Fn(usize) -> Arc<dyn CommBackend> + Sync,
    budget: Option<usize>,
) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(size > 0, "world size must be positive");
    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, slot) in results.iter_mut().enumerate() {
            let f = &f;
            let backend_for = &backend_for;
            handles.push(scope.spawn(move || {
                // Budget this rank's kernel worker pool so concurrent
                // ranks share the cores instead of contending for all of
                // them (a pure scheduling decision: kernels are
                // bit-identical at every worker count).
                let _budget = proc::BudgetGuard::arm(budget);
                let backend = backend_for(rank);
                backend.on_rank_start();
                // Runs on both return and unwind, so a panicking rank
                // releases its scheduling slot instead of wedging peers.
                let _finish = FinishGuard(Arc::clone(&backend));
                let comm = Comm::from_backend(backend);
                *slot = Some(f(&comm));
            }));
        }
        let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
        for h in handles {
            if let Err(e) = h.join() {
                panics.push(e);
            }
        }
        if let Some(root) = panics
            .into_iter()
            .min_by_key(|p| crate::fault::RankFailure::severity(p.as_ref()))
        {
            std::panic::resume_unwind(root);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("rank produced no result"))
        .collect()
}

struct FinishGuard(Arc<dyn CommBackend>);

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.0.on_rank_finish(std::thread::panicking());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_and_display() {
        for b in Backend::all() {
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(Backend::default(), Backend::Threads);
    }

    #[test]
    fn post_queue_matches_fifo_even_out_of_order() {
        let mut q = PostQueue::default();
        let a = q.post();
        let b = q.post();
        q.deliver((1, vec![1.0]));
        // Second request polled first must not steal the first message.
        assert!(q.claim(b).is_none());
        q.deliver((2, vec![2.0]));
        assert_eq!(q.claim(b), Some((2, vec![2.0])));
        assert_eq!(q.claim(a), Some((1, vec![1.0])));
    }

    #[test]
    fn every_backend_launches_an_spmd_world() {
        for backend in Backend::all() {
            let sums = backend.launch(4, |comm| {
                assert_eq!(comm.backend_label(), backend.label());
                comm.all_reduce_scalar(comm.rank() as f64)
            });
            assert_eq!(sums, vec![6.0; 4], "{backend}");
        }
    }
}
