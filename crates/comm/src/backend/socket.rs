//! TCP socket backend: one process per rank over a full TCP mesh, so a
//! training job can span machines.
//!
//! # Rendezvous
//!
//! Rank 0 listens on `CGNN_SOCKET_ADDR` (the spawner binds
//! `127.0.0.1:0` and exports the resolved address to its children; a
//! manual multi-machine launch sets it to a routable `host:port`). Every
//! other rank dials that address, binds its own *mesh* listener on the
//! interface the rendezvous connection uses, and introduces itself with a
//! `Hello` frame carrying its mesh address. Once all ranks have checked
//! in, rank 0 broadcasts the address table; rank `r` then dials every
//! rank below it (rank 0's links *are* the rendezvous connections) and
//! accepts every rank above it — a full mesh with exactly one connection
//! per pair, `TCP_NODELAY` everywhere.
//!
//! The framing on the mesh is the shared checksummed `CGNW` format (see
//! `wire` module): length-prefixed little-endian `f64` frames
//! with a trailing FNV-1a digest — the same hand-rolled
//! length-prefix-then-verify discipline `cgnn-serve` uses on its client
//! sockets — and tagged point-to-point matching is FIFO per peer with
//! [`PostQueue`](crate::PostQueue) semantics, identical to the
//! in-process transports.
//!
//! # Launch model
//!
//! Identical to the `proc` backend (same env handshake, same replay rule,
//! same failure reports — see [`proc`](super::proc)); only the transport
//! differs. A manual launch runs the same binary on each machine with
//! `CGNN_RANK`, `CGNN_WORLD`, and `CGNN_SOCKET_ADDR` set.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::proc::{launch_stream, ProcTransport};
use crate::backend::wire::{self, Conn, Frame, KIND_HELLO};
use crate::backend::CommBackend;
use crate::comm::Comm;

/// How long rendezvous and mesh dialing retry before giving up.
const CONNECT_DEADLINE: Duration = Duration::from_secs(60);

fn required_addr() -> io::Result<String> {
    std::env::var("CGNN_SOCKET_ADDR").map_err(|_| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "CGNN_SOCKET_ADDR must name the rank-0 rendezvous address",
        )
    })
}

fn dial(addr: &str, deadline: Instant) -> io::Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => return Err(e),
        }
    }
}

fn bad_frame(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("rendezvous: {what}"))
}

pub(crate) struct TcpTransport {
    /// Bound by the spawner in `prepare`, consumed by rank 0's `connect`.
    rendezvous: Option<TcpListener>,
}

impl TcpTransport {
    pub(crate) fn new() -> TcpTransport {
        TcpTransport { rendezvous: None }
    }
}

impl ProcTransport for TcpTransport {
    fn label(&self) -> &'static str {
        "socket"
    }

    fn prepare(&mut self, _dir: &Path, size: usize) -> io::Result<Vec<(&'static str, String)>> {
        if size == 1 {
            return Ok(Vec::new());
        }
        let addr = std::env::var("CGNN_SOCKET_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
        let listener = TcpListener::bind(&addr)?;
        let resolved = listener.local_addr()?.to_string();
        self.rendezvous = Some(listener);
        Ok(vec![("CGNN_SOCKET_ADDR", resolved)])
    }

    fn connect(&mut self, rank: usize, size: usize, _dir: &Path) -> io::Result<Vec<Option<Conn>>> {
        let mut conns: Vec<Option<Conn>> = (0..size).map(|_| None).collect();
        if size == 1 {
            return Ok(conns);
        }
        let deadline = Instant::now() + CONNECT_DEADLINE;
        if rank == 0 {
            let listener = match self.rendezvous.take() {
                Some(l) => l,
                // Manual launch: rank 0 binds the advertised address.
                None => TcpListener::bind(required_addr()?)?,
            };
            let mut table = vec![String::new(); size];
            listener.set_nonblocking(true)?;
            let mut pending = size - 1;
            while pending > 0 {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false)?;
                        s.set_nodelay(true)?;
                        let hello = wire::read_frame(&mut (&s))?
                            .ok_or_else(|| bad_frame("peer closed before Hello"))?;
                        let src = hello.src as usize;
                        if hello.kind != KIND_HELLO || src == 0 || src >= size {
                            return Err(bad_frame("Hello from an impossible rank"));
                        }
                        if conns[src].is_some() {
                            return Err(bad_frame("duplicate Hello for one rank"));
                        }
                        table[src] = hello.label;
                        conns[src] = Some(Conn::Tcp(s));
                        pending -= 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "rendezvous: not every rank checked in",
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            // Broadcast the mesh address table; rank 0's own links are
            // these rendezvous connections.
            let joined = table.join(",");
            for conn in conns.iter().flatten() {
                let Conn::Tcp(s) = conn else { continue };
                wire::write_frame(
                    &mut (&*s),
                    &Frame {
                        kind: KIND_HELLO,
                        src: 0,
                        tag: 0,
                        label: joined.clone(),
                        data: Vec::new(),
                    },
                )?;
            }
            return Ok(conns);
        }

        // Check in with rank 0 and learn the mesh table.
        let stream = dial(&required_addr()?, deadline)?;
        let ip = stream.local_addr()?.ip();
        let mesh = TcpListener::bind((ip, 0))?;
        wire::write_frame(
            &mut (&stream),
            &Frame {
                kind: KIND_HELLO,
                src: rank as u32,
                tag: 0,
                label: mesh.local_addr()?.to_string(),
                data: Vec::new(),
            },
        )?;
        let reply = wire::read_frame(&mut (&stream))?
            .ok_or_else(|| bad_frame("rank 0 closed before the address table"))?;
        if reply.kind != KIND_HELLO || reply.src != 0 {
            return Err(bad_frame("expected the address table from rank 0"));
        }
        let table: Vec<&str> = reply.label.split(',').collect();
        if table.len() != size {
            return Err(bad_frame("address table size does not match the world"));
        }
        conns[0] = Some(Conn::Tcp(stream));

        // Dial every lower mesh rank, accept every higher one.
        for peer in 1..rank {
            let s = dial(table[peer], deadline)?;
            wire::write_frame(&mut (&s), &Frame::control(KIND_HELLO, rank as u32, 0))?;
            conns[peer] = Some(Conn::Tcp(s));
        }
        mesh.set_nonblocking(true)?;
        let mut pending = size - 1 - rank;
        while pending > 0 {
            match mesh.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    let hello = wire::read_frame(&mut (&s))?
                        .ok_or_else(|| bad_frame("mesh peer closed before Hello"))?;
                    let src = hello.src as usize;
                    if hello.kind != KIND_HELLO || src <= rank || src >= size {
                        return Err(bad_frame("mesh Hello from an impossible rank"));
                    }
                    conns[src] = Some(Conn::Tcp(s));
                    pending -= 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "mesh accept: not every higher rank dialed in",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(conns)
    }
}

/// The TCP launcher: one process per rank over a full TCP mesh, capable
/// of spanning machines via a manual launch (`CGNN_RANK` / `CGNN_WORLD`
/// / `CGNN_SOCKET_ADDR` per machine).
///
/// Usually reached through [`Backend::Socket`](crate::Backend::Socket);
/// the type exists so the launcher can be named directly.
pub struct SocketWorld;

impl SocketWorld {
    /// Launch `f` on `size` single-process ranks over TCP; returns rank
    /// 0's result only (`vec[0]`).
    pub fn launch<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Self::launch_with(size, f, |backend| backend)
    }

    /// [`SocketWorld::launch`] with a per-rank backend decorator (fault
    /// injection); each process decorates its own rank.
    pub fn launch_with<T, F, D>(size: usize, f: F, decorate: D) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
        D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    {
        launch_stream(TcpTransport::new(), size, f, decorate)
    }
}
