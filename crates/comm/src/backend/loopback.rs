//! Single-rank loopback transport: collectives are identities, there are
//! no peers, and everything executes on the calling thread.
//!
//! This is the transport behind *persistent* single-rank trainers — code
//! that owns a [`Trainer`](../../cgnn_core) outside any
//! [`Backend::launch`](crate::Backend::launch) SPMD region. The inference
//! serving plane (`cgnn-serve`) keeps one loopback-backed trainer warm per
//! replica, and the Criterion step benchmarks time the trainer on the
//! benchmark thread through the same transport.
//!
//! Arithmetic over a loopback world is bit-identical to a launched
//! single-rank world of any other backend: the [`Comm`] layer
//! computes all reductions rank-ordered from gathered contributions, and
//! at world size one that gathering is the identity everywhere.

use crate::backend::{CommBackend, RecvOp};
use crate::comm::Comm;
use crate::stats::RankStats;
use std::sync::Arc;

/// A world of exactly one rank on the calling thread. Collectives return
/// their input; point-to-point operations have no possible peer and abort.
///
/// ```
/// use cgnn_comm::LoopbackBackend;
///
/// let comm = LoopbackBackend::comm();
/// assert_eq!(comm.size(), 1);
/// assert_eq!(comm.all_reduce_scalar(2.5), 2.5);
/// assert_eq!(comm.backend_label(), "loopback");
/// ```
#[derive(Default)]
pub struct LoopbackBackend {
    stats: RankStats,
}

impl LoopbackBackend {
    /// A fresh single-rank communicator handle over this transport — the
    /// entry point for persistent trainers that live outside an SPMD
    /// launch.
    pub fn comm() -> Comm {
        Comm::from_backend(Arc::new(LoopbackBackend::default()))
    }
}

impl CommBackend for LoopbackBackend {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn label(&self) -> &'static str {
        "loopback"
    }

    fn barrier(&self) {}

    fn all_gather(&self, _label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        vec![data]
    }

    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        send
    }

    /// # Panics
    /// Always: a single-rank world has no peer to send to.
    fn send(&self, dst: usize, _tag: u32, _data: Vec<f64>) {
        unreachable!("loopback send to rank {dst}: no peers in a single-rank world")
    }

    /// # Panics
    /// Always: a single-rank world has no peer to receive from.
    fn irecv(&self, src: usize) -> Box<dyn RecvOp> {
        unreachable!("loopback irecv from rank {src}: no peers in a single-rank world")
    }

    fn stats(&self) -> &RankStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_identities() {
        let comm = LoopbackBackend::comm();
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);
        let mut buf = [1.0, 2.0, 3.0];
        comm.all_reduce_sum(&mut buf);
        assert_eq!(buf, [1.0, 2.0, 3.0]);
        assert_eq!(comm.all_reduce_scalar(-4.25), -4.25);
        let snap = comm.stats_snapshot();
        assert_eq!(snap.all_reduces, 2);
    }

    #[test]
    #[should_panic(expected = "no peers")]
    fn point_to_point_aborts() {
        let comm = LoopbackBackend::comm();
        comm.backend().send(0, 0, vec![1.0]);
    }
}
