//! The default transport: one OS thread per rank sharing slot tables,
//! barriers, and buffered channels — mirroring the paper's
//! one-GPU-per-MPI-rank setup with real in-process concurrency.
//!
//! # Liveness
//!
//! Every blocking wait in this transport (barrier arrival, point-to-point
//! receive) is a **heartbeat loop**: the waiter sleeps at most
//! `CGNN_FAULT_HEARTBEAT_MS` (default 25 ms) at a time, re-checking the
//! world's dead-rank set between sleeps. A rank that dies — killed by
//! fault injection via [`CommBackend::mark_dead`], or unwinding from a
//! genuine panic (recorded by `on_rank_finish`) — is therefore detected by
//! every peer within one heartbeat, and the peers abort with
//! [`RankFailure::PeerDead`] instead of hanging on a barrier that can
//! never complete. The recovery loop in `cgnn-session` catches that typed
//! panic and rebuilds the world at the surviving size.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex as PlMutex;

use crate::backend::{run_ranks, CommBackend, P2pMsg, PostQueue, RecvOp};
use crate::comm::Comm;
use crate::fault::RankFailure;
use crate::stats::RankStats;

/// Per-source inbox: the buffered channel plus the FIFO matcher between
/// posted receives and arrivals. Only the owning (destination) rank ever
/// locks it; senders go through the paired [`Sender`].
struct Mailbox {
    rx: Receiver<P2pMsg>,
    queue: PostQueue,
}

impl Mailbox {
    /// Pull everything currently buffered in the channel into the matcher.
    fn drain(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            self.queue.deliver(msg);
        }
    }
}

/// A death-aware rendezvous barrier: like `std::sync::Barrier`, but
/// waiters sleep in heartbeat-bounded intervals and abort with
/// [`RankFailure::PeerDead`] as soon as any rank in the world is dead —
/// a dead rank will never arrive, so waiting longer only hides the hang.
struct LiveBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl LiveBarrier {
    fn new() -> Self {
        LiveBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Shared state backing one world of `size` thread-ranks.
pub struct ThreadWorld {
    size: usize,
    barrier: LiveBarrier,
    /// Liveness set: `dead[r]` is raised by `mark_dead` / a panicking
    /// unwind on rank `r`, and checked by every heartbeat loop.
    dead: Vec<AtomicBool>,
    /// How long a blocking wait may sleep before re-probing liveness.
    heartbeat: Duration,
    /// All-reduce / all-gather contribution slots, one per rank. Each entry
    /// carries the op label so mismatched collective sequences fail loudly
    /// instead of producing garbage.
    gather_slots: Vec<PlMutex<Option<(&'static str, Vec<f64>)>>>,
    /// All-to-all slots: `a2a_slots[src][dst]`.
    a2a_slots: Vec<Vec<PlMutex<Option<Vec<f64>>>>>,
    /// Point-to-point senders, indexed `[src][dst]`.
    senders: Vec<Vec<Sender<P2pMsg>>>,
    /// Point-to-point inboxes, indexed `[dst][src]`.
    mailboxes: Vec<Vec<PlMutex<Mailbox>>>,
    stats: Vec<RankStats>,
}

/// The liveness probe period: how long any blocking wait may sleep before
/// re-checking the dead-rank set. Overridable via `CGNN_FAULT_HEARTBEAT_MS`
/// (registered in the `cgnn-core` knob registry).
fn heartbeat_from_env() -> Duration {
    let ms = std::env::var("CGNN_FAULT_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(25)
        .max(1);
    Duration::from_millis(ms)
}

impl ThreadWorld {
    /// Run `f` on `size` ranks (one OS thread each) over this transport,
    /// returning each rank's result in rank order.
    pub fn launch<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Self::launch_with(size, f, |backend| backend)
    }

    /// [`ThreadWorld::launch`] with a per-rank backend decorator (see
    /// [`Backend::launch_with`](crate::Backend::launch_with)).
    pub fn launch_with<T, F, D>(size: usize, f: F, decorate: D) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
        D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    {
        let world = Arc::new(ThreadWorld::new(size));
        // Ranks run concurrently: budget each rank's kernel pool so
        // `ranks × workers` stays within the machine.
        run_ranks(
            size,
            f,
            |rank| {
                decorate(Arc::new(ThreadRank {
                    rank,
                    world: Arc::clone(&world),
                }))
            },
            crate::backend::proc::budget_for(size),
        )
    }

    fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be positive");
        let mut senders: Vec<Vec<Sender<P2pMsg>>> = (0..size).map(|_| Vec::new()).collect();
        let mut mailboxes: Vec<Vec<PlMutex<Mailbox>>> = (0..size).map(|_| Vec::new()).collect();
        for src in 0..size {
            for dst in 0..size {
                let (tx, rx) = unbounded();
                senders[src].push(tx);
                // mailboxes[dst][src]: pushing in src-major order into each
                // dst list gives exactly the by-source layout.
                mailboxes[dst].push(PlMutex::new(Mailbox {
                    rx,
                    queue: PostQueue::default(),
                }));
            }
        }
        ThreadWorld {
            size,
            barrier: LiveBarrier::new(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            heartbeat: heartbeat_from_env(),
            gather_slots: (0..size).map(|_| PlMutex::new(None)).collect(),
            a2a_slots: (0..size)
                .map(|_| (0..size).map(|_| PlMutex::new(None)).collect())
                .collect(),
            senders,
            mailboxes,
            stats: (0..size).map(|_| RankStats::default()).collect(),
        }
    }

    /// The dead-rank set, ascending. Empty in a healthy world.
    fn dead_list(&self) -> Vec<usize> {
        (0..self.size)
            .filter(|&r| self.dead[r].load(Ordering::Acquire))
            .collect()
    }

    /// Record `rank` as dead and wake every barrier waiter so the death is
    /// observed immediately rather than after a heartbeat.
    fn mark_rank_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::Release);
        // Taking the barrier lock orders the store before any waiter's
        // re-check; the notify converts heartbeat latency into immediate
        // wakeup for barrier sleepers.
        drop(
            self.barrier
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        self.barrier.cv.notify_all();
    }

    /// Abort the calling rank when any peer is dead.
    ///
    /// # Panics
    ///
    /// With [`RankFailure::PeerDead`] when the dead set is non-empty: a
    /// blocked collective or receive can never complete once a
    /// participant is gone, so unwinding (into the session recovery loop)
    /// is the liveness mechanism itself.
    fn check_alive(&self, me: usize) {
        let dead = self.dead_list();
        if !dead.is_empty() {
            // detlint: allow(unwrap-in-lib, "liveness abort: unwinding into the recovery loop is how peers escape a dead world")
            std::panic::panic_any(RankFailure::PeerDead { rank: me, dead });
        }
    }

    /// Heartbeat-supervised barrier arrival for rank `me`.
    fn barrier_wait(&self, me: usize) {
        let mut st = self
            .barrier
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.arrived += 1;
        if st.arrived == self.size {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            drop(st);
            self.barrier.cv.notify_all();
            return;
        }
        let generation = st.generation;
        while st.generation == generation {
            // Re-probe liveness between bounded sleeps: a dead peer will
            // never arrive, so this barrier would otherwise hang forever.
            drop(st);
            self.check_alive(me);
            st = self
                .barrier
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.generation != generation {
                break;
            }
            let (guard, _) = self
                .barrier
                .cv
                .wait_timeout(st, self.heartbeat)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }
}

/// One rank's view of a [`ThreadWorld`].
struct ThreadRank {
    rank: usize,
    world: Arc<ThreadWorld>,
}

impl CommBackend for ThreadRank {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.size
    }

    fn label(&self) -> &'static str {
        "threads"
    }

    fn barrier(&self) {
        self.world.barrier_wait(self.rank);
    }

    fn all_gather(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        *self.world.gather_slots[self.rank].lock() = Some((label, data));
        self.world.barrier_wait(self.rank);
        let mut out = Vec::with_capacity(self.world.size);
        for slot in &self.world.gather_slots {
            let guard = slot.lock();
            let (op, data) = guard.as_ref().expect("collective slot empty");
            assert_eq!(
                *op, label,
                "collective mismatch: rank {} is in `{}` while another rank is in `{}`",
                self.rank, label, op
            );
            out.push(data.clone());
        }
        // Second barrier: nobody may overwrite slots until everyone has read.
        self.world.barrier_wait(self.rank);
        out
    }

    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        for (dst, buf) in send.into_iter().enumerate() {
            *self.world.a2a_slots[self.rank][dst].lock() = Some(buf);
        }
        self.world.barrier_wait(self.rank);
        let mut out = Vec::with_capacity(self.world.size);
        for src in 0..self.world.size {
            let buf = self.world.a2a_slots[src][self.rank]
                .lock()
                .take()
                .expect("all_to_all slot empty: mismatched collective sequence");
            out.push(buf);
        }
        self.world.barrier_wait(self.rank);
        out
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        self.world.senders[self.rank][dst]
            .send((tag, data))
            .expect("p2p channel closed");
    }

    fn irecv(&self, src: usize) -> Box<dyn RecvOp> {
        let seq = self.world.mailboxes[self.rank][src].lock().queue.post();
        Box::new(ThreadRecvOp {
            world: Arc::clone(&self.world),
            me: self.rank,
            src,
            seq,
        })
    }

    fn stats(&self) -> &RankStats {
        &self.world.stats[self.rank]
    }

    fn on_rank_finish(&self, panicked: bool) {
        if panicked {
            // Any unwind — injected kill or genuine bug — makes this rank
            // dead to the world, so peers blocked on it fail fast.
            self.world.mark_rank_dead(self.rank);
        }
    }

    fn mark_dead(&self) {
        self.world.mark_rank_dead(self.rank);
    }

    fn dead_ranks(&self) -> Vec<usize> {
        self.world.dead_list()
    }
}

/// A posted receive against a [`ThreadWorld`] mailbox. Must be completed on
/// the posting rank (the mailbox is single-consumer).
struct ThreadRecvOp {
    world: Arc<ThreadWorld>,
    me: usize,
    src: usize,
    seq: u64,
}

impl RecvOp for ThreadRecvOp {
    fn try_take(&mut self) -> Option<P2pMsg> {
        let mut mb = self.world.mailboxes[self.me][self.src].lock();
        mb.drain();
        mb.queue.claim(self.seq)
    }

    fn take(&mut self) -> P2pMsg {
        loop {
            // Holding the mailbox lock across the bounded channel wait is
            // fine: only the owning rank ever locks its own mailbox.
            let mut mb = self.world.mailboxes[self.me][self.src].lock();
            mb.drain();
            if let Some(msg) = mb.queue.claim(self.seq) {
                return msg;
            }
            match mb.rx.recv_timeout(self.world.heartbeat) {
                Ok(msg) => {
                    mb.queue.deliver(msg);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Heartbeat: a dead peer's message may never come.
                    drop(mb);
                    self.world.check_alive(self.me);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("p2p channel closed while the world is alive")
                }
            }
        }
    }
}
