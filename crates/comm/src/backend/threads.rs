//! The default transport: one OS thread per rank sharing slot tables,
//! barriers, and buffered channels — mirroring the paper's
//! one-GPU-per-MPI-rank setup with real in-process concurrency.

use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::backend::{run_ranks, CommBackend, P2pMsg, PostQueue, RecvOp};
use crate::comm::Comm;
use crate::stats::RankStats;

/// Per-source inbox: the buffered channel plus the FIFO matcher between
/// posted receives and arrivals. Only the owning (destination) rank ever
/// locks it; senders go through the paired [`Sender`].
struct Mailbox {
    rx: Receiver<P2pMsg>,
    queue: PostQueue,
}

impl Mailbox {
    /// Pull everything currently buffered in the channel into the matcher.
    fn drain(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            self.queue.deliver(msg);
        }
    }
}

/// Shared state backing one world of `size` thread-ranks.
pub struct ThreadWorld {
    size: usize,
    barrier: Barrier,
    /// All-reduce / all-gather contribution slots, one per rank. Each entry
    /// carries the op label so mismatched collective sequences fail loudly
    /// instead of producing garbage.
    gather_slots: Vec<Mutex<Option<(&'static str, Vec<f64>)>>>,
    /// All-to-all slots: `a2a_slots[src][dst]`.
    a2a_slots: Vec<Vec<Mutex<Option<Vec<f64>>>>>,
    /// Point-to-point senders, indexed `[src][dst]`.
    senders: Vec<Vec<Sender<P2pMsg>>>,
    /// Point-to-point inboxes, indexed `[dst][src]`.
    mailboxes: Vec<Vec<Mutex<Mailbox>>>,
    stats: Vec<RankStats>,
}

impl ThreadWorld {
    /// Run `f` on `size` ranks (one OS thread each) over this transport,
    /// returning each rank's result in rank order.
    pub fn launch<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        let world = Arc::new(ThreadWorld::new(size));
        run_ranks(size, f, |rank| {
            Arc::new(ThreadRank {
                rank,
                world: Arc::clone(&world),
            })
        })
    }

    fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be positive");
        let mut senders: Vec<Vec<Sender<P2pMsg>>> = (0..size).map(|_| Vec::new()).collect();
        let mut mailboxes: Vec<Vec<Mutex<Mailbox>>> = (0..size).map(|_| Vec::new()).collect();
        for src in 0..size {
            for dst in 0..size {
                let (tx, rx) = unbounded();
                senders[src].push(tx);
                // mailboxes[dst][src]: pushing in src-major order into each
                // dst list gives exactly the by-source layout.
                mailboxes[dst].push(Mutex::new(Mailbox {
                    rx,
                    queue: PostQueue::default(),
                }));
            }
        }
        ThreadWorld {
            size,
            barrier: Barrier::new(size),
            gather_slots: (0..size).map(|_| Mutex::new(None)).collect(),
            a2a_slots: (0..size)
                .map(|_| (0..size).map(|_| Mutex::new(None)).collect())
                .collect(),
            senders,
            mailboxes,
            stats: (0..size).map(|_| RankStats::default()).collect(),
        }
    }
}

/// One rank's view of a [`ThreadWorld`].
struct ThreadRank {
    rank: usize,
    world: Arc<ThreadWorld>,
}

impl CommBackend for ThreadRank {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.size
    }

    fn label(&self) -> &'static str {
        "threads"
    }

    fn barrier(&self) {
        self.world.barrier.wait();
    }

    fn all_gather(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        *self.world.gather_slots[self.rank].lock() = Some((label, data));
        self.world.barrier.wait();
        let mut out = Vec::with_capacity(self.world.size);
        for slot in &self.world.gather_slots {
            let guard = slot.lock();
            let (op, data) = guard.as_ref().expect("collective slot empty");
            assert_eq!(
                *op, label,
                "collective mismatch: rank {} is in `{}` while another rank is in `{}`",
                self.rank, label, op
            );
            out.push(data.clone());
        }
        // Second barrier: nobody may overwrite slots until everyone has read.
        self.world.barrier.wait();
        out
    }

    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        for (dst, buf) in send.into_iter().enumerate() {
            *self.world.a2a_slots[self.rank][dst].lock() = Some(buf);
        }
        self.world.barrier.wait();
        let mut out = Vec::with_capacity(self.world.size);
        for src in 0..self.world.size {
            let buf = self.world.a2a_slots[src][self.rank]
                .lock()
                .take()
                .expect("all_to_all slot empty: mismatched collective sequence");
            out.push(buf);
        }
        self.world.barrier.wait();
        out
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        self.world.senders[self.rank][dst]
            .send((tag, data))
            .expect("p2p channel closed");
    }

    fn irecv(&self, src: usize) -> Box<dyn RecvOp> {
        let seq = self.world.mailboxes[self.rank][src].lock().queue.post();
        Box::new(ThreadRecvOp {
            world: Arc::clone(&self.world),
            me: self.rank,
            src,
            seq,
        })
    }

    fn stats(&self) -> &RankStats {
        &self.world.stats[self.rank]
    }
}

/// A posted receive against a [`ThreadWorld`] mailbox. Must be completed on
/// the posting rank (the mailbox is single-consumer).
struct ThreadRecvOp {
    world: Arc<ThreadWorld>,
    me: usize,
    src: usize,
    seq: u64,
}

impl RecvOp for ThreadRecvOp {
    fn try_take(&mut self) -> Option<P2pMsg> {
        let mut mb = self.world.mailboxes[self.me][self.src].lock();
        mb.drain();
        mb.queue.claim(self.seq)
    }

    fn take(&mut self) -> P2pMsg {
        // Holding the mailbox lock across the blocking channel recv is fine:
        // only the owning rank ever locks its own mailbox.
        let mut mb = self.world.mailboxes[self.me][self.src].lock();
        loop {
            mb.drain();
            if let Some(msg) = mb.queue.claim(self.seq) {
                return msg;
            }
            let msg = mb.rx.recv().expect("p2p channel closed");
            mb.queue.deliver(msg);
        }
    }
}
