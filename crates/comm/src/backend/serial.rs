//! The deterministic loopback transport: ranks execute **one at a time**,
//! scheduled round-robin at communication points.
//!
//! Exactly one rank makes progress at any instant. Rank 0 runs first; a
//! rank keeps executing user code until a communication operation cannot
//! complete (a barrier with peers missing, a receive with no matching
//! message), at which point it hands the baton to the next rank in index
//! order. OS threads serve only as coroutine stacks — no two ranks ever run
//! concurrently, so the operation schedule is a pure function of the
//! program: reproducible traces for debugging, zero-sync reference
//! semantics for CI, and a cross-check that nothing in the stack depends on
//! the thread world's real concurrency.
//!
//! Liveness is supervised: if the baton completes several full cycles with
//! every live rank blocked, the world is deadlocked (mismatched collective
//! schedules, a receive whose send never comes) and the backend panics with
//! a diagnostic instead of hanging — and a rank that panics poisons the
//! scheduler so its peers fail fast too.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::backend::{run_ranks, CommBackend, P2pMsg, PostQueue, RecvOp};
use crate::comm::Comm;
use crate::fault::RankFailure;
use crate::stats::RankStats;

/// Scheduler + transport state, all behind one lock (uncontended by
/// construction: only the baton holder mutates it).
struct State {
    /// Whose turn it is to execute.
    turn: usize,
    /// Ranks whose SPMD closure has returned.
    done: Vec<bool>,
    /// Ranks declared dead via the liveness probe (`mark_dead`): their
    /// death is a *fault*, distinct from an orderly finish, and peers
    /// abort with a typed [`RankFailure::PeerDead`] payload.
    dead: Vec<bool>,
    /// Set when a rank panics or a deadlock is detected; wakes every
    /// waiter into a panic instead of an infinite sleep.
    poisoned: bool,
    /// Consecutive baton passes without any operation completing; a full
    /// cycle of these means every live rank is blocked.
    idle_passes: usize,
    /// Cooperative barrier: arrival count and completion generation.
    barrier_arrived: usize,
    barrier_gen: u64,
    /// All-gather contribution slots (label + payload), one per rank.
    gather: Vec<Option<(&'static str, Vec<f64>)>>,
    /// All-to-all slots: `a2a[src][dst]`.
    a2a: Vec<Vec<Option<Vec<f64>>>>,
    /// Point-to-point inboxes: `mail[dst][src]`.
    mail: Vec<Vec<PostQueue>>,
}

/// Shared world of a [`SerialBackend`] run.
pub struct SerialBackend {
    size: usize,
    state: Mutex<State>,
    baton: Condvar,
    stats: Vec<RankStats>,
}

impl SerialBackend {
    /// Run `f` on `size` ranks over the serial transport, returning each
    /// rank's result in rank order. Ranks execute one at a time,
    /// round-robin; panics in any rank propagate (and unblock peers).
    pub fn launch<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Self::launch_with(size, f, |backend| backend)
    }

    /// [`SerialBackend::launch`] with a per-rank backend decorator (see
    /// [`Backend::launch_with`](crate::Backend::launch_with)).
    pub fn launch_with<T, F, D>(size: usize, f: F, decorate: D) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
        D: Fn(Arc<dyn CommBackend>) -> Arc<dyn CommBackend> + Sync,
    {
        assert!(size > 0, "world size must be positive");
        let world = Arc::new(SerialBackend {
            size,
            state: Mutex::new(State {
                turn: 0,
                done: vec![false; size],
                dead: vec![false; size],
                poisoned: false,
                idle_passes: 0,
                barrier_arrived: 0,
                barrier_gen: 0,
                gather: (0..size).map(|_| None).collect(),
                a2a: (0..size)
                    .map(|_| (0..size).map(|_| None).collect())
                    .collect(),
                mail: (0..size)
                    .map(|_| (0..size).map(|_| PostQueue::default()).collect())
                    .collect(),
            }),
            baton: Condvar::new(),
            stats: (0..size).map(|_| RankStats::default()).collect(),
        });
        // No thread budget: the baton means only one rank computes at a
        // time, so each may use the full kernel pool.
        run_ranks(
            size,
            f,
            |rank| {
                decorate(Arc::new(SerialRank {
                    rank,
                    world: Arc::clone(&world),
                }))
            },
            None,
        )
    }
}

/// One rank's view of a [`SerialBackend`] world.
#[derive(Clone)]
struct SerialRank {
    rank: usize,
    world: Arc<SerialBackend>,
}

impl SerialRank {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.world
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// # Panics
    ///
    /// Aborts this rank when a peer has already panicked or the deadlock
    /// supervisor poisoned the world: continuing would block forever on
    /// a collective that can never complete. Every blocking comm entry
    /// point inherits this abort contract. When the poison traces back to
    /// a declared rank death (the liveness probe), the panic payload is
    /// the typed [`RankFailure::PeerDead`] so the session recovery loop
    /// can classify it; an undiagnosed peer panic keeps the plain message.
    fn check_poison(&self, st: &State) {
        if st.poisoned {
            let dead: Vec<usize> = (0..self.world.size).filter(|&r| st.dead[r]).collect();
            if !dead.is_empty() {
                // detlint: allow(unwrap-in-lib, "liveness abort: unwinding into the recovery loop is how peers escape a dead world")
                std::panic::panic_any(RankFailure::PeerDead {
                    rank: self.rank,
                    dead,
                });
            }
            // detlint: allow(unwrap-in-lib, "deliberate abort: continuing after a peer died would hang this rank forever")
            panic!("serial backend: a peer rank panicked or deadlocked");
        }
    }

    /// Next rank after `from` whose closure has not finished.
    fn next_live(st: &State, from: usize, size: usize) -> usize {
        for k in 1..=size {
            let r = (from + k) % size;
            if !st.done[r] {
                return r;
            }
        }
        from
    }

    /// Hand the baton to the next live rank. Called while blocked, so it
    /// also feeds the deadlock supervisor.
    ///
    /// # Panics
    ///
    /// When every live rank has been blocked for a full supervision
    /// window (mismatched collective schedules, or a receive whose send
    /// never comes): panicking is the mechanism that unwedges the run.
    fn yield_turn(&self, st: &mut State) {
        st.idle_passes += 1;
        if st.idle_passes > 4 * self.world.size + 16 {
            st.poisoned = true;
            self.world.baton.notify_all();
            // detlint: allow(unwrap-in-lib, "deadlock supervisor: panicking is the mechanism that unwedges the test run")
            panic!(
                "serial backend deadlock: every live rank is blocked \
                 (mismatched collective schedules or a receive whose send never comes)"
            );
        }
        st.turn = Self::next_live(st, self.rank, self.world.size);
        self.world.baton.notify_all();
    }

    /// Cooperatively block until `ready` produces a value. Must be called
    /// while this rank holds the baton (the invariant for all user code on
    /// a serial world); the baton is retained on return, so the rank
    /// continues executing.
    fn wait_until<R>(&self, mut ready: impl FnMut(&mut State) -> Option<R>) -> R {
        let mut st = self.lock();
        debug_assert_eq!(
            st.turn, self.rank,
            "serial backend invariant broken: comm op issued off-turn"
        );
        loop {
            self.check_poison(&st);
            if let Some(r) = ready(&mut st) {
                st.idle_passes = 0;
                return r;
            }
            self.yield_turn(&mut st);
            while st.turn != self.rank {
                self.check_poison(&st);
                st = self
                    .world
                    .baton
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// A non-blocking state mutation performed while holding the baton.
    fn with_state<R>(&self, op: impl FnOnce(&mut State) -> R) -> R {
        let mut st = self.lock();
        self.check_poison(&st);
        debug_assert_eq!(
            st.turn, self.rank,
            "serial backend invariant broken: comm op issued off-turn"
        );
        op(&mut st)
    }
}

impl CommBackend for SerialRank {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.size
    }

    fn label(&self) -> &'static str {
        "serial"
    }

    fn barrier(&self) {
        let size = self.world.size;
        // First visit registers the arrival; later visits (after yielding)
        // watch for the generation to advance. The last arriver completes
        // the barrier and keeps the baton.
        let mut registered: Option<u64> = None;
        self.wait_until(|st| match registered {
            None => {
                let gen = st.barrier_gen;
                st.barrier_arrived += 1;
                if st.barrier_arrived == size {
                    st.barrier_arrived = 0;
                    st.barrier_gen += 1;
                    Some(())
                } else {
                    registered = Some(gen);
                    None
                }
            }
            Some(gen) => (st.barrier_gen != gen).then_some(()),
        })
    }

    fn all_gather(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        self.with_state(|st| st.gather[self.rank] = Some((label, data)));
        self.barrier();
        let out = self.with_state(|st| {
            let mut out = Vec::with_capacity(st.gather.len());
            for slot in &st.gather {
                let (op, data) = slot.as_ref().expect("collective slot empty");
                assert_eq!(
                    *op, label,
                    "collective mismatch: rank {} is in `{}` while another rank is in `{}`",
                    self.rank, label, op
                );
                out.push(data.clone());
            }
            out
        });
        // Second barrier: nobody may overwrite slots until everyone has read.
        self.barrier();
        out
    }

    fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        self.with_state(|st| {
            for (dst, buf) in send.into_iter().enumerate() {
                st.a2a[self.rank][dst] = Some(buf);
            }
        });
        self.barrier();
        let out = self.with_state(|st| {
            (0..self.world.size)
                .map(|src| {
                    st.a2a[src][self.rank]
                        .take()
                        .expect("all_to_all slot empty: mismatched collective sequence")
                })
                .collect()
        });
        self.barrier();
        out
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        self.with_state(|st| st.mail[dst][self.rank].deliver((tag, data)));
    }

    fn irecv(&self, src: usize) -> Box<dyn RecvOp> {
        let seq = self.with_state(|st| st.mail[self.rank][src].post());
        Box::new(SerialRecvOp {
            rank: self.clone(),
            src,
            seq,
        })
    }

    fn stats(&self) -> &RankStats {
        &self.world.stats[self.rank]
    }

    fn on_rank_start(&self) {
        // Wait for the baton before running any user code: rank 0 starts,
        // everyone else queues in index order.
        let mut st = self.lock();
        while st.turn != self.rank {
            self.check_poison(&st);
            st = self
                .world
                .baton
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn on_rank_finish(&self, panicked: bool) {
        let mut st = self.lock();
        st.done[self.rank] = true;
        if panicked {
            st.poisoned = true;
        }
        if st.turn == self.rank {
            st.turn = Self::next_live(&st, self.rank, self.world.size);
        }
        self.world.baton.notify_all();
    }

    fn mark_dead(&self) {
        // No turn assertion: the marking rank is about to unwind and may
        // legitimately be the baton holder mid-operation.
        let mut st = self.lock();
        st.dead[self.rank] = true;
        self.world.baton.notify_all();
    }

    fn dead_ranks(&self) -> Vec<usize> {
        let st = self.lock();
        (0..self.world.size).filter(|&r| st.dead[r]).collect()
    }
}

/// A posted receive against a serial-world inbox.
struct SerialRecvOp {
    rank: SerialRank,
    src: usize,
    seq: u64,
}

impl RecvOp for SerialRecvOp {
    fn try_take(&mut self) -> Option<P2pMsg> {
        let (me, src, seq) = (self.rank.rank, self.src, self.seq);
        self.rank.with_state(|st| st.mail[me][src].claim(seq))
    }

    fn take(&mut self) -> P2pMsg {
        let (me, src, seq) = (self.rank.rank, self.src, self.seq);
        self.rank.wait_until(|st| st.mail[me][src].claim(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;

    /// The defining property: ranks are single-stepped in a deterministic
    /// round-robin, so an execution trace is identical across runs — and
    /// the first "round" is exactly rank order.
    #[test]
    fn schedule_is_deterministic_round_robin() {
        let trace = || {
            let log = Mutex::new(Vec::new());
            Backend::Serial.launch(3, |comm| {
                for _ in 0..3 {
                    log.lock().unwrap().push(comm.rank());
                    comm.barrier();
                }
            });
            log.into_inner().unwrap()
        };
        let a = trace();
        let b = trace();
        assert_eq!(a, b, "serial schedule must be reproducible");
        assert_eq!(&a[..3], &[0, 1, 2], "first round runs in rank order");
        for round in a.chunks(3) {
            let mut round = round.to_vec();
            round.sort_unstable();
            assert_eq!(round, vec![0, 1, 2], "each round covers every rank");
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn blocked_world_panics_instead_of_hanging() {
        // Both ranks wait for a message nobody sends.
        Backend::Serial.launch(2, |comm| {
            let other = 1 - comm.rank();
            comm.recv(other, 0);
        });
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates_and_unblocks_peers() {
        Backend::Serial.launch(2, |comm| {
            if comm.rank() == 0 {
                panic!("rank 0 exploded");
            }
            // Rank 1 would wait forever without poison propagation.
            comm.barrier();
        });
    }
}
