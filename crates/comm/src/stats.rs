//! Per-rank communication traffic accounting.
//!
//! Every collective and point-to-point call records message counts and byte
//! volumes. The weak-scaling performance model (`cgnn-perf`) consumes these
//! numbers to charge Frontier-like network costs to the measured traffic,
//! and the paper's A2A vs N-A2A comparison (Figs. 7-8) is fundamentally a
//! statement about these volumes.
//!
//! Accounting is symmetric: sends are matched by recv-side counters
//! (`recvs`/`recv_bytes`, covering blocking receives and completed
//! `irecv`s), so the traffic tests can assert that every byte injected into
//! the transport was also drained out of it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-rank counters. Padded indirectly by being stored one per
/// rank in a `Vec` of heap boxes; contention is nil because each rank only
/// writes its own counters.
#[derive(Default, Debug)]
pub struct RankStats {
    /// Number of barrier-style synchronizations.
    pub barriers: AtomicU64,
    /// Number of all-reduce calls.
    pub all_reduces: AtomicU64,
    /// Bytes contributed to all-reduce calls (payload, one direction).
    pub all_reduce_bytes: AtomicU64,
    /// Number of all-to-all calls.
    pub all_to_alls: AtomicU64,
    /// Non-empty messages sent inside all-to-all calls.
    pub a2a_messages: AtomicU64,
    /// Bytes sent inside all-to-all calls (non-empty buffers only).
    pub a2a_bytes: AtomicU64,
    /// Point-to-point sends (blocking `send` and non-blocking `isend`).
    pub sends: AtomicU64,
    /// Bytes sent point-to-point.
    pub send_bytes: AtomicU64,
    /// Point-to-point receives completed on this rank (blocking `recv` and
    /// completed `irecv` requests).
    pub recvs: AtomicU64,
    /// Bytes received point-to-point.
    pub recv_bytes: AtomicU64,
    /// Number of all-gather calls (the coalesced halo exchange collective).
    pub all_gathers: AtomicU64,
    /// Bytes pushed by all-gather calls: the contribution is replicated to
    /// every other rank, so each call charges `len * 8 * (R - 1)`.
    pub all_gather_bytes: AtomicU64,
}

/// Plain-old-data snapshot of [`RankStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Barriers entered.
    pub barriers: u64,
    /// All-reduce collectives issued.
    pub all_reduces: u64,
    /// Payload bytes contributed to all-reduces.
    pub all_reduce_bytes: u64,
    /// All-to-all collectives issued.
    pub all_to_alls: u64,
    /// Non-empty pairwise messages inside those all-to-alls.
    pub a2a_messages: u64,
    /// Payload bytes of those all-to-all messages.
    pub a2a_bytes: u64,
    /// Point-to-point sends posted (blocking and non-blocking).
    pub sends: u64,
    /// Payload bytes of those sends.
    pub send_bytes: u64,
    /// Point-to-point receives completed (blocking and non-blocking).
    pub recvs: u64,
    /// Payload bytes of those receives.
    pub recv_bytes: u64,
    /// All-gather collectives issued.
    pub all_gathers: u64,
    /// Bytes this rank *received* from peers in all-gathers.
    pub all_gather_bytes: u64,
}

impl RankStats {
    /// Copy the live counters into a plain [`StatsSnapshot`].
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            barriers: self.barriers.load(Ordering::Relaxed),
            all_reduces: self.all_reduces.load(Ordering::Relaxed),
            all_reduce_bytes: self.all_reduce_bytes.load(Ordering::Relaxed),
            all_to_alls: self.all_to_alls.load(Ordering::Relaxed),
            a2a_messages: self.a2a_messages.load(Ordering::Relaxed),
            a2a_bytes: self.a2a_bytes.load(Ordering::Relaxed),
            sends: self.sends.load(Ordering::Relaxed),
            send_bytes: self.send_bytes.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            recv_bytes: self.recv_bytes.load(Ordering::Relaxed),
            all_gathers: self.all_gathers.load(Ordering::Relaxed),
            all_gather_bytes: self.all_gather_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (scoping measurements to a code region).
    pub fn reset(&self) {
        self.barriers.store(0, Ordering::Relaxed);
        self.all_reduces.store(0, Ordering::Relaxed);
        self.all_reduce_bytes.store(0, Ordering::Relaxed);
        self.all_to_alls.store(0, Ordering::Relaxed);
        self.a2a_messages.store(0, Ordering::Relaxed);
        self.a2a_bytes.store(0, Ordering::Relaxed);
        self.sends.store(0, Ordering::Relaxed);
        self.send_bytes.store(0, Ordering::Relaxed);
        self.recvs.store(0, Ordering::Relaxed);
        self.recv_bytes.store(0, Ordering::Relaxed);
        self.all_gathers.store(0, Ordering::Relaxed);
        self.all_gather_bytes.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total bytes this rank pushed onto the (virtual) network.
    pub fn total_bytes(&self) -> u64 {
        self.all_reduce_bytes + self.a2a_bytes + self.send_bytes + self.all_gather_bytes
    }
}
