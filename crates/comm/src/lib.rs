//! # cgnn-comm
//!
//! In-process "MPI" for the consistent-GNN reproduction: each rank is an OS
//! thread, and collectives are built on shared slots + barriers so that
//! reductions are **deterministic and identical on every rank**.
//!
//! This substitutes for the PyTorch Distributed / RCCL stack of the paper.
//! The arithmetic-consistency results (paper Eqs. 2-3, Fig. 6) only require
//! *correct* collectives; the Frontier-scale *costs* of these collectives
//! are modeled separately in `cgnn-perf`, fed by the traffic counters
//! recorded here ([`stats`]).
//!
//! Supported operations mirror what the paper uses:
//! * `all_reduce` (consistent loss Eq. 6 and DDP gradient reduction),
//! * `all_to_all` with optionally-empty buffers (the A2A and Neighbor-A2A
//!   halo exchange implementations),
//! * point-to-point `send`/`recv` (the custom Send-Recv halo exchange).

pub mod stats;
pub mod world;

pub use stats::{RankStats, StatsSnapshot};
pub use world::{Comm, World};
