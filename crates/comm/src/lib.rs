//! # cgnn-comm
//!
//! Pluggable in-process "MPI" for the consistent-GNN reproduction: an
//! object-safe [`CommBackend`] transport trait under a thin, cloneable
//! [`Comm`] handle, so that collectives are **deterministic and identical
//! on every rank** over every transport.
//!
//! This substitutes for the PyTorch Distributed / RCCL stack of the paper.
//! The arithmetic-consistency results (paper Eqs. 2-3, Fig. 6) only require
//! *correct* collectives; the Frontier-scale *costs* of these collectives
//! are modeled separately in `cgnn-perf`, fed by the traffic counters
//! recorded here ([`stats`]).
//!
//! Supported operations mirror what the paper uses:
//! * `all_reduce` (consistent loss Eq. 6 and DDP gradient reduction),
//! * `all_to_all` with optionally-empty buffers (the A2A and Neighbor-A2A
//!   halo exchange implementations),
//! * point-to-point `send`/`recv` (the custom Send-Recv halo exchange),
//! * non-blocking `isend`/`irecv` returning wait-able [`SendRequest`] /
//!   [`RecvRequest`] handles (the overlapped halo exchange).
//!
//! Four launchable transports ship in-tree, selected by [`Backend`] (or
//! the `CGNN_BACKEND` environment variable):
//! * [`ThreadWorld`] — one OS thread per rank, real concurrency (default),
//! * [`SerialBackend`] — deterministic round-robin single-stepping of the
//!   ranks, for debugging and CI reference runs,
//! * [`ProcWorld`] — one OS *process* per rank (re-exec +
//!   Unix-domain-socket mesh, checksummed wire frames): true address-space
//!   isolation and per-rank kernel thread budgets,
//! * [`SocketWorld`] — one process per rank over a full TCP mesh, able to
//!   span machines via a rank-0 rendezvous listener.
//!
//! A fifth, [`LoopbackBackend`], is not launched at all: it is a world of
//! exactly one rank on the calling thread, for code that owns a persistent
//! trainer outside any SPMD region (the `cgnn-serve` replica pool).
//!
//! The cross-process launchers re-exec the current binary; test binaries
//! pin the argv their child ranks run with via [`reexec_scope`].
//!
//! For chaos testing, [`FaultInjector`] decorates any transport with a
//! deterministic, seeded [`FaultPlan`] (kill a rank at an exact comm op,
//! poison a barrier, delay or drop a send), and the backends' liveness
//! probe ([`CommBackend::mark_dead`] / [`CommBackend::dead_ranks`]) lets
//! peers detect a death within a heartbeat instead of hanging — see the
//! [`fault`] module docs.
//!
//! Because reductions are computed rank-ordered in the [`Comm`] layer from
//! gathered contributions, *all* backends produce bit-identical arithmetic;
//! they differ only in scheduling. Custom transports implement
//! [`CommBackend`] and enter through [`Comm::from_backend`] — see the
//! [`backend`] module docs for a worked example.

#![warn(missing_docs)]

pub mod backend;
pub mod comm;
pub mod fault;
pub mod stats;

pub use backend::loopback::LoopbackBackend;
pub use backend::proc::{reexec_scope, ProcWorld, ReexecScope};
pub use backend::serial::SerialBackend;
pub use backend::socket::SocketWorld;
pub use backend::threads::ThreadWorld;
pub use backend::{Backend, CommBackend, CompletedSend, PostQueue, RecvOp, SendOp};
pub use comm::{Comm, RecvRequest, SendRequest, World};
pub use fault::{Fault, FaultInjector, FaultKind, FaultPlan, RankFailure};
pub use stats::{RankStats, StatsSnapshot};
