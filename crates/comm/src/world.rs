//! Thread-rank "MPI world": spawn R ranks as OS threads sharing a
//! communicator, mirroring the paper's one-GPU-per-MPI-rank setup.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::stats::{RankStats, StatsSnapshot};

/// Message on a point-to-point channel: `(tag, payload)`.
type P2pMsg = (u32, Vec<f64>);

/// Shared state backing one world of `size` ranks.
struct Shared {
    size: usize,
    barrier: Barrier,
    /// All-reduce / all-gather contribution slots, one per rank. Each entry
    /// carries the op label so mismatched collective sequences fail loudly
    /// instead of producing garbage.
    gather_slots: Vec<Mutex<Option<(&'static str, Vec<f64>)>>>,
    /// All-to-all slots: `a2a_slots[src][dst]`.
    a2a_slots: Vec<Vec<Mutex<Option<Vec<f64>>>>>,
    /// Point-to-point senders, indexed `[src][dst]`.
    senders: Vec<Vec<Sender<P2pMsg>>>,
    /// Receivers handed out to their owning rank at startup.
    receivers: Vec<Mutex<Option<Vec<Receiver<P2pMsg>>>>>,
    stats: Vec<RankStats>,
}

/// Per-rank communicator handle. Cloneable; clones refer to the same world
/// and the same rank (so they can be captured by autodiff backward closures).
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    /// Receivers for messages addressed to this rank, one per source rank.
    rx: Arc<Vec<Receiver<P2pMsg>>>,
}

/// A collection of `R` thread-ranks executing the same SPMD closure.
pub struct World;

impl World {
    /// Run `f` on `size` ranks (threads), returning each rank's result in
    /// rank order. Panics in any rank propagate.
    ///
    /// ```
    /// use cgnn_comm::World;
    /// let sums = World::run(4, |comm| {
    ///     let mut v = [comm.rank() as f64];
    ///     comm.all_reduce_sum(&mut v);
    ///     v[0]
    /// });
    /// assert_eq!(sums, vec![6.0; 4]);
    /// ```
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        assert!(size > 0, "world size must be positive");
        let shared = Self::build_shared(size);
        let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, slot) in results.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let rx = shared.receivers[rank]
                        .lock()
                        .take()
                        .expect("receiver set already taken");
                    let comm = Comm {
                        rank,
                        shared,
                        rx: Arc::new(rx),
                    };
                    *slot = Some(f(&comm));
                }));
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }

    fn build_shared(size: usize) -> Arc<Shared> {
        let mut senders: Vec<Vec<Sender<P2pMsg>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Receiver<P2pMsg>>> = (0..size).map(|_| Vec::new()).collect();
        for _src in 0..size {
            for dst in 0..size {
                let (tx, rx) = unbounded();
                receivers[dst].push(rx);
                senders[_src].push(tx);
            }
        }
        // receivers[dst][src] must index by source; the loop above pushes in
        // src-major order into dst's list, giving exactly that layout.
        Arc::new(Shared {
            size,
            barrier: Barrier::new(size),
            gather_slots: (0..size).map(|_| Mutex::new(None)).collect(),
            a2a_slots: (0..size)
                .map(|_| (0..size).map(|_| Mutex::new(None)).collect())
                .collect(),
            senders,
            receivers: receivers.into_iter().map(|r| Mutex::new(Some(r))).collect(),
            stats: (0..size).map(|_| RankStats::default()).collect(),
        })
    }
}

impl Comm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.shared.size
    }

    fn stats(&self) -> &RankStats {
        &self.shared.stats[self.rank]
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.stats().barriers.fetch_add(1, Ordering::Relaxed);
        self.shared.barrier.wait();
    }

    /// Deterministic all-reduce (sum) over `buf`, in place.
    ///
    /// Every rank sums the per-rank contributions in rank order, so all
    /// ranks compute bit-identical results — essential for keeping DDP
    /// replicas in lockstep without parameter broadcasts.
    pub fn all_reduce_sum(&self, buf: &mut [f64]) {
        let parts = self.all_gather_labeled("all_reduce_sum", buf.to_vec());
        self.stats().all_reduces.fetch_add(1, Ordering::Relaxed);
        self.stats()
            .all_reduce_bytes
            .fetch_add(std::mem::size_of_val(buf) as u64, Ordering::Relaxed);
        buf.fill(0.0);
        for part in &parts {
            assert_eq!(
                part.len(),
                buf.len(),
                "all_reduce_sum length mismatch across ranks"
            );
            for (b, &p) in buf.iter_mut().zip(part.iter()) {
                *b += p;
            }
        }
    }

    /// All-reduce a single scalar (sum).
    pub fn all_reduce_scalar(&self, v: f64) -> f64 {
        let mut buf = [v];
        self.all_reduce_sum(&mut buf);
        buf[0]
    }

    /// Deterministic all-reduce (max).
    pub fn all_reduce_max(&self, buf: &mut [f64]) {
        let parts = self.all_gather_labeled("all_reduce_max", buf.to_vec());
        self.stats().all_reduces.fetch_add(1, Ordering::Relaxed);
        self.stats()
            .all_reduce_bytes
            .fetch_add(std::mem::size_of_val(buf) as u64, Ordering::Relaxed);
        buf.fill(f64::NEG_INFINITY);
        for part in &parts {
            for (b, &p) in buf.iter_mut().zip(part.iter()) {
                *b = b.max(p);
            }
        }
    }

    /// Gather every rank's buffer; result is indexed by rank and identical
    /// on all ranks. Contributions may have different lengths per rank.
    ///
    /// Traffic accounting: the contribution is replicated to every other
    /// rank, so `len * 8 * (R - 1)` bytes are charged (the internal gathers
    /// backing [`Comm::all_reduce_sum`] are charged as all-reduce bytes
    /// instead and do not hit these counters).
    pub fn all_gather(&self, data: Vec<f64>) -> Vec<Vec<f64>> {
        let st = self.stats();
        st.all_gathers.fetch_add(1, Ordering::Relaxed);
        st.all_gather_bytes.fetch_add(
            (data.len() * std::mem::size_of::<f64>()) as u64 * (self.size() as u64 - 1),
            Ordering::Relaxed,
        );
        self.all_gather_labeled("all_gather", data)
    }

    fn all_gather_labeled(&self, label: &'static str, data: Vec<f64>) -> Vec<Vec<f64>> {
        *self.shared.gather_slots[self.rank].lock() = Some((label, data));
        self.shared.barrier.wait();
        let mut out = Vec::with_capacity(self.size());
        for slot in &self.shared.gather_slots {
            let guard = slot.lock();
            let (op, data) = guard.as_ref().expect("collective slot empty");
            assert_eq!(
                *op, label,
                "collective mismatch: rank {} is in `{}` while another rank is in `{}`",
                self.rank, label, op
            );
            out.push(data.clone());
        }
        // Second barrier: nobody may overwrite slots until everyone has read.
        self.shared.barrier.wait();
        out
    }

    /// All-to-all exchange. `send[dst]` is the buffer for rank `dst`; empty
    /// buffers mean "no traffic to that peer" (the paper's Neighbor-AllToAll
    /// trick of passing `torch.empty(0)` for non-neighbours). Returns
    /// `recv[src]`, the buffer sent to this rank by rank `src`.
    pub fn all_to_all(&self, send: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        assert_eq!(
            send.len(),
            self.size(),
            "all_to_all needs one buffer per rank"
        );
        let st = self.stats();
        st.all_to_alls.fetch_add(1, Ordering::Relaxed);
        for (dst, buf) in send.iter().enumerate() {
            if dst != self.rank && !buf.is_empty() {
                st.a2a_messages.fetch_add(1, Ordering::Relaxed);
                st.a2a_bytes.fetch_add(
                    (buf.len() * std::mem::size_of::<f64>()) as u64,
                    Ordering::Relaxed,
                );
            }
        }
        for (dst, buf) in send.into_iter().enumerate() {
            *self.shared.a2a_slots[self.rank][dst].lock() = Some(buf);
        }
        self.shared.barrier.wait();
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            let buf = self.shared.a2a_slots[src][self.rank]
                .lock()
                .take()
                .expect("all_to_all slot empty: mismatched collective sequence");
            out.push(buf);
        }
        self.shared.barrier.wait();
        out
    }

    /// Non-blocking-style point-to-point send (buffered, never blocks).
    pub fn send(&self, dst: usize, tag: u32, data: Vec<f64>) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        let st = self.stats();
        st.sends.fetch_add(1, Ordering::Relaxed);
        st.send_bytes.fetch_add(
            (data.len() * std::mem::size_of::<f64>()) as u64,
            Ordering::Relaxed,
        );
        self.shared.senders[self.rank][dst]
            .send((tag, data))
            .expect("p2p channel closed");
    }

    /// Blocking receive from `src`; the next message's tag must equal `tag`
    /// (channels deliver in order, so a mismatch means the program's
    /// communication schedules diverged).
    pub fn recv(&self, src: usize, tag: u32) -> Vec<f64> {
        assert!(src < self.size(), "recv from invalid rank {src}");
        let (got_tag, data) = self.rx[src].recv().expect("p2p channel closed");
        assert_eq!(
            got_tag, tag,
            "rank {} expected tag {tag} from {src} but got {got_tag}",
            self.rank
        );
        data
    }

    /// Snapshot this rank's traffic counters.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    /// Reset this rank's traffic counters.
    pub fn stats_reset(&self) {
        self.stats().reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.all_reduce_scalar(5.0)
        });
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn all_reduce_sum_is_deterministic_and_identical() {
        let out = World::run(7, |comm| {
            let mut v = vec![comm.rank() as f64 * 0.1, 1.0];
            comm.all_reduce_sum(&mut v);
            v
        });
        for v in &out {
            assert_eq!(v, &out[0], "ranks disagree on reduced value");
        }
        assert!((out[0][1] - 7.0).abs() < 1e-15);
    }

    #[test]
    fn all_reduce_max_works() {
        let out = World::run(4, |comm| {
            let mut v = vec![-(comm.rank() as f64), comm.rank() as f64];
            comm.all_reduce_max(&mut v);
            v
        });
        assert_eq!(out[0], vec![0.0, 3.0]);
    }

    #[test]
    fn all_to_all_exchanges_rank_tagged_buffers() {
        let out = World::run(4, |comm| {
            let send: Vec<Vec<f64>> = (0..4)
                .map(|dst| vec![(comm.rank() * 10 + dst) as f64])
                .collect();
            comm.all_to_all(send)
        });
        for (dst, recv) in out.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf, &vec![(src * 10 + dst) as f64]);
            }
        }
    }

    #[test]
    fn all_to_all_empty_buffers_skip_traffic() {
        let out = World::run(3, |comm| {
            let send: Vec<Vec<f64>> = (0..3)
                .map(|dst| {
                    if dst == (comm.rank() + 1) % 3 {
                        vec![1.0, 2.0]
                    } else {
                        vec![]
                    }
                })
                .collect();
            let recv = comm.all_to_all(send);
            (recv, comm.stats_snapshot())
        });
        for (rank, (recv, stats)) in out.iter().enumerate() {
            let from = (rank + 2) % 3;
            assert_eq!(recv[from], vec![1.0, 2.0]);
            assert_eq!(stats.a2a_messages, 1, "only one real message per rank");
            assert_eq!(stats.a2a_bytes, 16);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let out = World::run(5, |comm| {
            let mut total = 0.0;
            for i in 0..20 {
                total += comm.all_reduce_scalar((comm.rank() + i) as f64);
            }
            total
        });
        let expect: f64 = (0..20)
            .map(|i| (0..5).map(|r| (r + i) as f64).sum::<f64>())
            .sum();
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn p2p_ring_send_recv() {
        let out = World::run(6, |comm| {
            let next = (comm.rank() + 1) % 6;
            let prev = (comm.rank() + 5) % 6;
            comm.send(next, 7, vec![comm.rank() as f64]);
            comm.recv(prev, 7)
        });
        for (rank, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![((rank + 5) % 6) as f64]);
        }
    }

    #[test]
    fn all_gather_returns_rank_ordered() {
        let out = World::run(3, |comm| comm.all_gather(vec![comm.rank() as f64; 2]));
        for parts in out {
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as f64; 2]);
            }
        }
    }

    #[test]
    fn all_gather_records_replicated_traffic() {
        let out = World::run(4, |comm| {
            comm.stats_reset();
            let _ = comm.all_gather(vec![1.0, 2.0, 3.0]);
            comm.stats_snapshot()
        });
        for s in &out {
            assert_eq!(s.all_gathers, 1);
            // 3 doubles replicated to 3 peers.
            assert_eq!(s.all_gather_bytes, 3 * 8 * 3);
            assert_eq!(s.all_reduces, 0, "gathers are not all-reduces");
        }
    }

    #[test]
    fn stats_reset_zeroes() {
        World::run(2, |comm| {
            comm.all_reduce_scalar(1.0);
            assert!(comm.stats_snapshot().all_reduces > 0);
            comm.stats_reset();
            assert_eq!(comm.stats_snapshot().all_reduces, 0);
        });
    }
}
