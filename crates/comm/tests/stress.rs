//! Stress and interleaving tests of the communicator: the consistent GNN
//! issues long alternating sequences of all-to-alls, all-reduces, and
//! point-to-point traffic across layers and iterations; these tests hammer
//! those patterns for cross-talk and ordering bugs — over every in-tree
//! transport, asserting that traffic accounting stays send/recv symmetric.

use cgnn_comm::{Backend, StatsSnapshot, World};

/// Sum-aggregate snapshots and assert the world drained every byte it
/// injected point-to-point.
fn assert_p2p_symmetric(stats: &[StatsSnapshot]) {
    let sends: u64 = stats.iter().map(|s| s.sends).sum();
    let recvs: u64 = stats.iter().map(|s| s.recvs).sum();
    let send_bytes: u64 = stats.iter().map(|s| s.send_bytes).sum();
    let recv_bytes: u64 = stats.iter().map(|s| s.recv_bytes).sum();
    assert_eq!(sends, recvs, "total sends must equal total recvs");
    assert_eq!(
        send_bytes, recv_bytes,
        "total send bytes must equal total recv bytes"
    );
}

#[test]
fn interleaved_collectives_and_p2p_do_not_cross_talk() {
    let r = 8;
    for backend in Backend::all() {
        let out = backend.launch(r, |comm| {
            comm.stats_reset();
            let mut acc = 0.0f64;
            for round in 0..50 {
                // All-to-all with round-stamped payloads.
                let send: Vec<Vec<f64>> = (0..r)
                    .map(|dst| vec![(comm.rank() * 1000 + dst * 10 + round) as f64])
                    .collect();
                let recv = comm.all_to_all(send);
                for (src, buf) in recv.iter().enumerate() {
                    assert_eq!(buf[0], (src * 1000 + comm.rank() * 10 + round) as f64);
                }
                // Ring p2p in between.
                let next = (comm.rank() + 1) % r;
                let prev = (comm.rank() + r - 1) % r;
                comm.send(next, round as u32, vec![comm.rank() as f64 + round as f64]);
                let got = comm.recv(prev, round as u32);
                assert_eq!(got[0], prev as f64 + round as f64);
                // All-reduce mixing both.
                acc += comm.all_reduce_scalar(got[0]);
            }
            (acc, comm.stats_snapshot())
        });
        for (v, _) in &out {
            assert_eq!(
                v, &out[0].0,
                "ranks disagree after interleaved traffic ({backend})"
            );
        }
        let stats: Vec<StatsSnapshot> = out.iter().map(|&(_, s)| s).collect();
        assert_p2p_symmetric(&stats);
    }
}

#[test]
fn many_small_allreduces_remain_deterministic() {
    // The consistent loss issues tiny scalar all-reduces every iteration;
    // results must be bit-identical across ranks, across runs — and across
    // transports, since the reduction arithmetic lives above the backend.
    let run = |backend: Backend| {
        backend.launch(7, |comm| {
            let mut acc = 0.0f64;
            for i in 0..200 {
                let x = ((comm.rank() + 1) as f64).powf(1.0 + (i % 7) as f64 * 0.1);
                acc += comm.all_reduce_scalar(x * 1e-3);
            }
            acc
        })
    };
    let a = run(Backend::Threads);
    let b = run(Backend::Threads);
    assert_eq!(a, b, "runs differ");
    for v in &a[1..] {
        assert_eq!(v, &a[0], "ranks differ");
    }
    assert_eq!(
        a,
        run(Backend::Serial),
        "serial backend must reproduce the thread world bit for bit"
    );
}

#[test]
fn large_buffer_all_to_all_roundtrip() {
    let r = 4;
    let n = 100_000;
    let out = World::run(r, |comm| {
        let send: Vec<Vec<f64>> = (0..r)
            .map(|dst| {
                (0..n)
                    .map(|i| (comm.rank() * r + dst) as f64 + i as f64 * 1e-6)
                    .collect()
            })
            .collect();
        let recv = comm.all_to_all(send);
        recv.iter()
            .enumerate()
            .map(|(src, buf)| {
                assert_eq!(buf.len(), n);
                assert_eq!(buf[0], (src * r + comm.rank()) as f64);
                buf[n - 1]
            })
            .sum::<f64>()
    });
    for v in &out[1..] {
        assert_ne!(*v, 0.0);
    }
    drop(out);
}

#[test]
fn buffered_sends_do_not_deadlock_in_any_order() {
    // All ranks send to everyone before receiving anything — only safe with
    // buffered (non-blocking) sends, which the halo SendRecv mode relies on.
    // The serial backend must tolerate the same pattern: sends never yield.
    let r = 6;
    for backend in Backend::all() {
        let stats = backend.launch(r, |comm| {
            comm.stats_reset();
            for dst in 0..r {
                if dst != comm.rank() {
                    comm.send(dst, 9, vec![comm.rank() as f64; 64]);
                }
            }
            for src in 0..r {
                if src != comm.rank() {
                    let got = comm.recv(src, 9);
                    assert_eq!(got, vec![src as f64; 64]);
                }
            }
            comm.stats_snapshot()
        });
        assert_p2p_symmetric(&stats);
        for s in &stats {
            // Per-rank symmetry holds too for this all-pairs pattern.
            assert_eq!(s.sends, (r - 1) as u64);
            assert_eq!(s.recvs, (r - 1) as u64);
            assert_eq!(s.send_bytes, s.recv_bytes);
        }
    }
}

#[test]
fn overlapped_isend_irecv_storm_completes_in_any_wait_order() {
    // The overlapped halo exchange posts every isend, then every irecv,
    // then waits — stress that pattern with many in-flight requests per
    // peer and reversed completion order.
    let r = 5;
    let rounds = 20;
    for backend in Backend::all() {
        let out = backend.launch(r, |comm| {
            comm.stats_reset();
            let mut total = 0.0f64;
            for round in 0..rounds {
                let mut sends = Vec::new();
                for dst in 0..r {
                    if dst != comm.rank() {
                        sends.push(comm.isend(
                            dst,
                            round,
                            vec![comm.rank() as f64 + round as f64; 16],
                        ));
                    }
                }
                let mut recvs = Vec::new();
                for src in 0..r {
                    if src != comm.rank() {
                        recvs.push(comm.irecv(src, round));
                    }
                }
                // Complete receives in reverse posting order.
                for req in recvs.into_iter().rev() {
                    let src = req.source();
                    let got = req.wait();
                    assert_eq!(got, vec![src as f64 + round as f64; 16]);
                    total += got[0];
                }
                for s in sends {
                    s.wait();
                }
            }
            (total, comm.stats_snapshot())
        });
        for (rank, (v, _)) in out.iter().enumerate() {
            // sum over rounds and peers of (src + round):
            // rounds * (sum of peers) + (r-1) * sum of rounds.
            let peer_sum = (0..r).filter(|&s| s != rank).sum::<usize>() as f64;
            let round_sum = (rounds * (rounds - 1) / 2) as f64;
            let expect = rounds as f64 * peer_sum + (r - 1) as f64 * round_sum;
            assert_eq!(*v, expect, "rank {rank} total mismatch ({backend})");
        }
        let stats: Vec<StatsSnapshot> = out.iter().map(|&(_, s)| s).collect();
        assert_p2p_symmetric(&stats);
        for s in &stats {
            assert_eq!(s.sends, (rounds * (r - 1) as u32) as u64);
            assert_eq!(s.recvs, s.sends, "every irecv completion is counted");
        }
    }
}
