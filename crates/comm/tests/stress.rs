//! Stress and interleaving tests of the thread-rank communicator: the
//! consistent GNN issues long alternating sequences of all-to-alls,
//! all-reduces, and point-to-point traffic across layers and iterations;
//! these tests hammer those patterns for cross-talk and ordering bugs.

use cgnn_comm::World;

#[test]
fn interleaved_collectives_and_p2p_do_not_cross_talk() {
    let r = 8;
    let out = World::run(r, |comm| {
        let mut acc = 0.0f64;
        for round in 0..50 {
            // All-to-all with round-stamped payloads.
            let send: Vec<Vec<f64>> = (0..r)
                .map(|dst| vec![(comm.rank() * 1000 + dst * 10 + round) as f64])
                .collect();
            let recv = comm.all_to_all(send);
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf[0], (src * 1000 + comm.rank() * 10 + round) as f64);
            }
            // Ring p2p in between.
            let next = (comm.rank() + 1) % r;
            let prev = (comm.rank() + r - 1) % r;
            comm.send(next, round as u32, vec![comm.rank() as f64 + round as f64]);
            let got = comm.recv(prev, round as u32);
            assert_eq!(got[0], prev as f64 + round as f64);
            // All-reduce mixing both.
            acc += comm.all_reduce_scalar(got[0]);
        }
        acc
    });
    for v in &out {
        assert_eq!(v, &out[0], "ranks disagree after interleaved traffic");
    }
}

#[test]
fn many_small_allreduces_remain_deterministic() {
    // The consistent loss issues tiny scalar all-reduces every iteration;
    // results must be bit-identical across ranks and across runs.
    let run = || {
        World::run(7, |comm| {
            let mut acc = 0.0f64;
            for i in 0..200 {
                let x = ((comm.rank() + 1) as f64).powf(1.0 + (i % 7) as f64 * 0.1);
                acc += comm.all_reduce_scalar(x * 1e-3);
            }
            acc
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "runs differ");
    for v in &a[1..] {
        assert_eq!(v, &a[0], "ranks differ");
    }
}

#[test]
fn large_buffer_all_to_all_roundtrip() {
    let r = 4;
    let n = 100_000;
    let out = World::run(r, |comm| {
        let send: Vec<Vec<f64>> = (0..r)
            .map(|dst| {
                (0..n)
                    .map(|i| (comm.rank() * r + dst) as f64 + i as f64 * 1e-6)
                    .collect()
            })
            .collect();
        let recv = comm.all_to_all(send);
        recv.iter()
            .enumerate()
            .map(|(src, buf)| {
                assert_eq!(buf.len(), n);
                assert_eq!(buf[0], (src * r + comm.rank()) as f64);
                buf[n - 1]
            })
            .sum::<f64>()
    });
    for v in &out[1..] {
        assert_ne!(*v, 0.0);
    }
    drop(out);
}

#[test]
fn buffered_sends_do_not_deadlock_in_any_order() {
    // All ranks send to everyone before receiving anything — only safe with
    // buffered (non-blocking) sends, which the halo SendRecv mode relies on.
    let r = 6;
    World::run(r, |comm| {
        for dst in 0..r {
            if dst != comm.rank() {
                comm.send(dst, 9, vec![comm.rank() as f64; 64]);
            }
        }
        for src in 0..r {
            if src != comm.rank() {
                let got = comm.recv(src, 9);
                assert_eq!(got, vec![src as f64; 64]);
            }
        }
    });
}
