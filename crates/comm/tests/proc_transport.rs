//! Raw-transport tests for the cross-process backends.
//!
//! Each test pins its own name as the re-exec argv (via `reexec_scope`),
//! so the child rank processes re-run *exactly this test*, reach the same
//! launch, and join the world instead of spawning one.

use std::panic::AssertUnwindSafe;

use cgnn_comm::{
    reexec_scope, Backend, Comm, FaultInjector, FaultPlan, ProcWorld, RankFailure, SocketWorld,
};

const WORLD: usize = 3;

fn worker_args(test_name: &str) -> [String; 4] {
    [
        test_name.to_string(),
        "--exact".to_string(),
        "--test-threads=1".to_string(),
        "--quiet".to_string(),
    ]
}

/// The SPMD body shared by the proc and socket collectives tests:
/// exercises every primitive, asserts on every rank, and returns a
/// digest the spawner checks on rank 0.
fn collectives_and_p2p(comm: &Comm) -> Vec<f64> {
    let size = comm.size();
    let rank = comm.rank();
    let r = rank as f64;
    assert_eq!(size, WORLD);

    let sum = comm.all_reduce_scalar(r + 1.0);
    assert_eq!(sum, 6.0, "1 + 2 + 3 across the world");
    comm.barrier();

    let gathered = comm.all_gather(vec![r, r * 10.0]);
    for (src, buf) in gathered.iter().enumerate() {
        assert_eq!(buf, &vec![src as f64, src as f64 * 10.0]);
    }

    // One buffer per destination, including an empty one to self's
    // successor: empty frames must still keep the exchange in lockstep.
    let send: Vec<Vec<f64>> = (0..size)
        .map(|dst| {
            if dst == (rank + 1) % size {
                Vec::new()
            } else {
                vec![r * 10.0 + dst as f64]
            }
        })
        .collect();
    let received = comm.all_to_all(send);
    for (src, buf) in received.iter().enumerate() {
        if rank == (src + 1) % size {
            assert!(buf.is_empty(), "src {src} sent an empty buffer here");
        } else {
            assert_eq!(buf, &vec![src as f64 * 10.0 + r]);
        }
    }

    // Point-to-point ring with two tags and deliberately out-of-order
    // completion: FIFO-per-peer matching must pair post k with arrival k.
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let isend = comm.isend(next, 7, vec![r, 1.0]);
    comm.send(next, 8, vec![r, 2.0]);
    let first = comm.irecv(prev, 7);
    let second = comm.irecv(prev, 8);
    let tagged8 = second.wait();
    let tagged7 = first.wait();
    isend.wait();
    assert_eq!(tagged7, vec![prev as f64, 1.0]);
    assert_eq!(tagged8, vec![prev as f64, 2.0]);

    comm.barrier();
    let snap = comm.stats_snapshot();
    vec![
        sum,
        gathered[2][1],
        received[(rank + size - 1) % size]
            .first()
            .copied()
            .unwrap_or(-1.0),
        snap.sends as f64,
        snap.recvs as f64,
    ]
}

#[test]
fn proc_world_collectives_and_p2p() {
    let _scope = reexec_scope(worker_args("proc_world_collectives_and_p2p"));
    let out = ProcWorld::launch(WORLD, collectives_and_p2p);
    assert_eq!(out.len(), 1, "cross-process launch returns rank 0 only");
    assert_eq!(out[0][0], 6.0);
    assert_eq!(out[0][1], 20.0);
    assert_eq!(out[0][3], 2.0, "rank 0 posted two p2p sends");
    assert_eq!(out[0][4], 2.0, "rank 0 completed two p2p receives");
}

#[test]
fn socket_world_collectives_and_p2p() {
    let _scope = reexec_scope(worker_args("socket_world_collectives_and_p2p"));
    let out = SocketWorld::launch(WORLD, collectives_and_p2p);
    assert_eq!(out.len(), 1, "cross-process launch returns rank 0 only");
    assert_eq!(out[0][0], 6.0);
    assert_eq!(out[0][1], 20.0);
}

#[test]
fn proc_backend_dispatch_and_single_rank() {
    let _scope = reexec_scope(worker_args("proc_backend_dispatch_and_single_rank"));
    // Size-1 worlds need no children, no mesh, and no rendezvous.
    let out = Backend::Proc.launch(1, |comm| {
        assert_eq!(comm.backend_label(), "proc");
        comm.all_reduce_scalar(4.25)
    });
    assert_eq!(out, vec![4.25]);
    assert!(!Backend::Proc.is_in_process());
    assert!(!Backend::Socket.is_in_process());
    assert!(Backend::Threads.is_in_process());
}

#[test]
fn proc_child_kill_surfaces_typed_failure() {
    let _scope = reexec_scope(worker_args("proc_child_kill_surfaces_typed_failure"));
    // Kill rank 1 (a child process) at its 3rd comm op: the failure must
    // cross the process boundary as the same typed payload the in-process
    // backends produce, and nothing may hang.
    let plan = FaultPlan::new().kill(0, 1, 3);
    let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
        ProcWorld::launch_with(
            WORLD,
            |comm| {
                for _ in 0..10 {
                    comm.barrier();
                }
            },
            FaultInjector::decorator(plan.clone(), 0),
        );
    }))
    .expect_err("a killed child rank must tear the launch down");
    match RankFailure::from_payload(payload.as_ref()) {
        Some(RankFailure::Killed { rank: 1, op: 3 }) => {}
        other => {
            panic!("expected Killed{{rank:1,op:3}} across the process boundary, got {other:?}")
        }
    }
}
