//! Property-based tests of the tensor/autodiff substrate: algebraic
//! identities of the kernels and adjoint correctness of the gather/scatter
//! pair (the structural core of the consistent aggregation).

use proptest::prelude::*;
use std::sync::Arc;

use cgnn_tensor::{Tape, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) up to floating-point rounding.
    #[test]
    fn matmul_is_associative(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 5),
        c in tensor_strategy(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_rel_diff(&right) < 1e-10);
    }

    /// Fused-transpose products agree with explicit transposes.
    #[test]
    fn matmul_transpose_variants_agree(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(5, 3),
        c in tensor_strategy(4, 5),
    ) {
        prop_assert!(a.matmul_nt(&b).max_rel_diff(&a.matmul(&b.transpose())) < 1e-12);
        prop_assert!(a.matmul_tn(&c).max_rel_diff(&a.transpose().matmul(&c)) < 1e-12);
    }

    /// <gather(x, idx), y> == <x, scatter_add(y, idx)>: gather and
    /// scatter-add are adjoint, which is exactly why the tape uses one as
    /// the backward of the other.
    #[test]
    fn gather_scatter_are_adjoint(
        x in tensor_strategy(6, 3),
        y in tensor_strategy(10, 3),
        idx in proptest::collection::vec(0usize..6, 10),
    ) {
        let gx = x.gather_rows(&idx);
        let sy = y.scatter_add_rows(&idx, 6);
        let dot = |a: &Tensor, b: &Tensor| -> f64 {
            a.data().iter().zip(b.data()).map(|(u, v)| u * v).sum()
        };
        prop_assert!((dot(&gx, &y) - dot(&x, &sy)).abs() < 1e-9);
    }

    /// Autodiff of sum(row_scale(x ⊙ x, w)) equals the hand-derived
    /// gradient 2 w_i x_ij.
    #[test]
    fn rowscale_square_gradient_closed_form(
        x in tensor_strategy(5, 2),
        w in proptest::collection::vec(0.1f64..2.0, 5),
    ) {
        let w = Arc::new(w);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let sq = tape.mul(xv, xv);
        let scaled = tape.row_scale(sq, w.clone());
        let s = tape.sum(scaled);
        let grads = tape.backward(s);
        let g = grads.get(xv).expect("grad exists");
        for r in 0..5 {
            for c in 0..2 {
                let expect = 2.0 * w[r] * x.get(r, c);
                prop_assert!((g.get(r, c) - expect).abs() < 1e-12);
            }
        }
    }

    /// LayerNorm output rows have zero mean and (near-)unit variance when
    /// gamma = 1, beta = 0 and the row is non-degenerate.
    #[test]
    fn layer_norm_normalizes_rows(x in tensor_strategy(4, 8)) {
        // Skip degenerate rows (all entries equal).
        for r in 0..4 {
            let row = x.row(r);
            let spread = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - row.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assume!(spread > 1e-3);
        }
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let g = tape.leaf(Tensor::full(1, 8, 1.0));
        let b = tape.leaf(Tensor::zeros(1, 8));
        let y = tape.layer_norm(xv, g, b, 1e-9);
        let out = tape.value(y);
        for r in 0..4 {
            let row = out.row(r);
            let mean: f64 = row.iter().sum::<f64>() / 8.0;
            let var: f64 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / 8.0;
            prop_assert!(mean.abs() < 1e-9, "row {r} mean {mean}");
            prop_assert!((var - 1.0).abs() < 1e-5, "row {r} var {var}");
        }
    }

    /// Backward through an arbitrary composition never changes values
    /// (backward is read-only on the forward results).
    #[test]
    fn backward_does_not_mutate_values(
        x in tensor_strategy(3, 3),
        y in tensor_strategy(3, 3),
    ) {
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let yv = tape.leaf(y.clone());
        let m = tape.matmul(xv, yv);
        let e = tape.elu(m);
        let s = tape.sum(e);
        let before = tape.value(e).clone();
        let _ = tape.backward(s);
        prop_assert_eq!(tape.value(e), &before);
    }
}
