//! Cross-run reproducibility of seeded initialization (satellite of the
//! workspace-restoration PR): the Eq. 2 consistency tests compare runs
//! that must start from bit-identical parameters on every rank, so the
//! `rand` 0.8-API shim's `StdRng` stream is pinned here with golden
//! values. If the generator or the initializers change the stream, these
//! tests fail rather than letting reproducibility silently drift.

use cgnn_tensor::init::{normal, uniform, xavier_uniform};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

#[test]
fn stdrng_stream_is_pinned() {
    let mut rng = StdRng::seed_from_u64(42);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(got, GOLDEN_STDRNG_SEED42, "StdRng stream drifted");
}

#[test]
fn seeded_init_identical_across_instantiations() {
    // Two independently seeded RNGs — the in-process analogue of two
    // separate runs (the stream-pinning test above covers actual cross-run
    // drift).
    let a = xavier_uniform(4, 3, &mut StdRng::seed_from_u64(7));
    let b = xavier_uniform(4, 3, &mut StdRng::seed_from_u64(7));
    assert_eq!(a, b);

    let a = uniform(2, 5, 0.3, &mut StdRng::seed_from_u64(9));
    let b = uniform(2, 5, 0.3, &mut StdRng::seed_from_u64(9));
    assert_eq!(a, b);

    let a = normal(3, 3, 1.5, &mut StdRng::seed_from_u64(11));
    let b = normal(3, 3, 1.5, &mut StdRng::seed_from_u64(11));
    assert_eq!(a, b);
}

#[test]
fn xavier_values_are_pinned() {
    let t = xavier_uniform(2, 2, &mut StdRng::seed_from_u64(42));
    for (got, want) in t.data().iter().zip(GOLDEN_XAVIER_2X2_SEED42) {
        assert!(
            (got - want).abs() < 1e-15,
            "xavier stream drifted: got {got}, want {want}"
        );
    }
}

/// First four raw outputs of `StdRng::seed_from_u64(42)`.
const GOLDEN_STDRNG_SEED42: [u64; 4] = [
    15021278609987233951,
    5881210131331364753,
    18149643915985481100,
    12933668939759105464,
];

/// `xavier_uniform(2, 2, seed 42)` in row-major order.
const GOLDEN_XAVIER_2X2_SEED42: [f64; 4] = [
    0.7698872290825458,
    -0.4437960039770854,
    1.1852938015433567,
    0.492679584539643,
];
