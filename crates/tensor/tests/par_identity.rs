//! Serial-vs-parallel bit-identity of the tensor kernels.
//!
//! The determinism contract of `crates/tensor/src/par.rs`: every kernel's
//! result is **bit-identical** at any worker count, because chunk
//! boundaries are fixed functions of the shape, each output row is written
//! by exactly one chunk, and reductions accumulate per destination in the
//! serial input order. These property tests pin the worker count per run
//! (via the rayon shim's `with_num_threads`) and compare against the
//! 1-worker path over odd shapes that straddle chunk boundaries.

use proptest::prelude::*;
use std::sync::Arc;

use cgnn_tensor::{Tape, Tensor};

/// Worker counts to compare against the serial path: an even split, an odd
/// split (uneven chunk distribution), and more workers than chunks.
const WORKERS: [usize; 3] = [2, 3, 7];

fn assert_worker_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let serial = rayon::with_num_threads(1, &f);
    for w in WORKERS {
        let par = rayon::with_num_threads(w, &f);
        assert!(par == serial, "parallel ({w} workers) diverged from serial");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `A * B` over shapes that straddle the fixed chunk boundary and the
    /// 4x8 register-tile edges.
    #[test]
    fn matmul_is_worker_invariant(
        rows in 1usize..200,
        k in 1usize..17,
        n in 1usize..19,
        seed in 0u64..1000,
    ) {
        let a = Tensor::from_fn(rows, k, |r, c| ((seed + (r * k + c) as u64) as f64 * 0.37).sin());
        let b = Tensor::from_fn(k, n, |r, c| ((seed + (r * n + c) as u64) as f64 * 0.21).cos());
        assert_worker_invariant(|| a.matmul(&b).into_vec());
    }

    /// The fused-transpose adjoint products.
    #[test]
    fn matmul_transpose_variants_are_worker_invariant(
        rows in 1usize..150,
        k in 1usize..13,
        n in 1usize..13,
        seed in 0u64..1000,
    ) {
        let g = Tensor::from_fn(rows, k, |r, c| ((seed + (r * k + c) as u64) as f64 * 0.11).sin());
        let w = Tensor::from_fn(n, k, |r, c| ((seed + (r * k + c) as u64) as f64 * 0.23).cos());
        assert_worker_invariant(|| g.matmul_nt(&w).into_vec());
        let x = Tensor::from_fn(rows, n, |r, c| ((seed + (r * n + c) as u64) as f64 * 0.31).sin());
        assert_worker_invariant(|| g.matmul_tn(&x).into_vec());
    }

    /// Gather and scatter-add over random index patterns: scatter is the
    /// kernel whose parallel path reduces — per-destination input order
    /// must make it exact, not approximately equal.
    #[test]
    fn gather_scatter_are_worker_invariant(
        src_rows in 1usize..60,
        n_idx in 1usize..300,
        cols in 1usize..9,
        seed in 0u64..1000,
    ) {
        let x = Tensor::from_fn(src_rows, cols, |r, c| {
            ((seed + (r * cols + c) as u64) as f64 * 0.17).sin()
        });
        let idx: Vec<usize> = (0..n_idx).map(|i| (i * 7 + seed as usize) % src_rows).collect();
        assert_worker_invariant(|| x.gather_rows(&idx).into_vec());
        let y = Tensor::from_fn(n_idx, cols, |r, c| {
            ((seed + (r * cols + c) as u64) as f64 * 0.13).cos()
        });
        assert_worker_invariant(|| y.scatter_add_rows(&idx, src_rows).into_vec());
    }

    /// The tape-level row kernels (fused linear(+ELU), layer norm, ELU) and
    /// a full forward+backward: gradients must also be worker-invariant.
    #[test]
    fn tape_forward_backward_is_worker_invariant(
        rows in 1usize..150,
        in_dim in 1usize..10,
        out_dim in 1usize..10,
        seed in 0u64..1000,
    ) {
        let xv = Tensor::from_fn(rows, in_dim, |r, c| {
            ((seed + (r * in_dim + c) as u64) as f64 * 0.19).sin()
        });
        let wv = Tensor::from_fn(in_dim, out_dim, |r, c| {
            ((seed + (r * out_dim + c) as u64) as f64 * 0.29).cos()
        });
        let bv = Tensor::from_fn(1, out_dim, |_, c| 0.05 * c as f64 - 0.1);
        let gv = Tensor::from_fn(1, out_dim, |_, c| 1.0 + 0.01 * c as f64);
        let bt = Tensor::zeros(1, out_dim);
        let run = || {
            let mut tape = Tape::new();
            let x = tape.leaf(xv.clone());
            let w = tape.leaf(wv.clone());
            let b = tape.leaf(bv.clone());
            let h = tape.linear_elu(x, w, b);
            let gamma = tape.leaf(gv.clone());
            let beta = tape.leaf(bt.clone());
            let h = tape.layer_norm(h, gamma, beta, 1e-5);
            let h = tape.elu(h);
            let s = tape.weighted_sq_sum(h, Arc::new(vec![1.0; rows]));
            let grads = tape.backward(s);
            (
                tape.value(h).clone().into_vec(),
                grads.get(x).unwrap().clone().into_vec(),
                grads.get(w).unwrap().clone().into_vec(),
                grads.get(gamma).unwrap().clone().into_vec(),
            )
        };
        assert_worker_invariant(run);
    }
}
