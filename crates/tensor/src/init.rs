//! Deterministic, seedable weight initialization.
//!
//! Every rank must initialize identical parameters (the paper's DDP setup
//! shares one parameter vector theta across all ranks), so initializers take
//! an explicit RNG that callers seed identically on every rank.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight
/// matrix: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Tensor::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Uniform initialization in `(-scale, scale)`.
pub fn uniform(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

/// Standard-normal initialization scaled by `std`.
pub fn normal(rows: usize, cols: usize, std: f64, rng: &mut impl Rng) -> Tensor {
    use rand::distributions::Distribution;
    let dist = rand::distributions::Uniform::new(0.0f64, 1.0);
    // Box-Muller transform; rand's StandardNormal lives in rand_distr which
    // we avoid pulling in for one function.
    let next = move |rng: &mut dyn rand::RngCore| {
        let u1: f64 = dist.sample(rng).max(1e-300);
        let u2: f64 = dist.sample(rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    Tensor::from_fn(rows, cols, |_, _| std * next(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(10, 20, &mut rng);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn same_seed_same_weights() {
        let t1 = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        let t2 = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(t1, t2);
    }

    #[test]
    fn normal_statistics_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(100, 100, 2.0, &mut rng);
        let mean = t.sum() / t.len() as f64;
        let var = t
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
