//! Deterministic row-chunk parallelism for the dense kernels.
//!
//! Every hot kernel in this crate parallelizes over **row chunks** of its
//! output with two invariants that together make the parallel result
//! bit-identical to the serial one at any worker count:
//!
//! 1. **Chunk-local writes** — each output row is written by exactly one
//!    chunk, and the arithmetic producing a row never reads another chunk's
//!    output, so the per-row instruction sequence is the serial one.
//! 2. **Per-chunk sequential accumulation** — reductions (scatter-add,
//!    `matmul_tn`'s inner-dimension sum) accumulate in the serial input
//!    order within the chunk that owns the destination row; no atomics, no
//!    arrival-order reductions.
//!
//! Chunk boundaries are a pure function of the matrix shape (see
//! [`row_chunk`]) — worker count only decides which thread runs which
//! chunk. `CGNN_NUM_THREADS` (or `RAYON_NUM_THREADS`) pins the worker
//! count; see `docs/PERFORMANCE.md`.

use rayon::ParallelSliceMut;

/// Rows per chunk for a `cols`-wide output: targets roughly 8 KiB of
/// output per chunk, floored so tiny matrices stay in one chunk. Purely a
/// function of the shape — never of the worker count.
pub(crate) fn row_chunk(cols: usize) -> usize {
    (1024 / cols.max(1)).clamp(16, 1024)
}

/// Run `f(first_row, rows_in_chunk, chunk_data)` over fixed row chunks of
/// `data` (a `rows x cols` row-major buffer), concurrently when worker
/// threads are available and serially (same chunk order) otherwise.
pub(crate) fn for_row_chunks(
    data: &mut [f64],
    cols: usize,
    f: impl Fn(usize, usize, &mut [f64]) + Sync,
) {
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0);
    let chunk_rows = row_chunk(cols);
    data.par_chunks_mut(chunk_rows * cols)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let first_row = ci * chunk_rows;
            f(first_row, chunk.len() / cols, chunk);
        });
}

/// Elementwise `out[i] = f(src[i])` over row chunks (`src`/`out` are
/// `rows x cols` row-major buffers of equal length).
pub(crate) fn ew_map(src: &[f64], cols: usize, out: &mut [f64], f: impl Fn(f64) -> f64 + Sync) {
    debug_assert_eq!(src.len(), out.len());
    for_row_chunks(out, cols, |first_row, _nrows, chunk| {
        let base = first_row * cols;
        let s = &src[base..base + chunk.len()];
        for (o, &x) in chunk.iter_mut().zip(s.iter()) {
            *o = f(x);
        }
    });
}

/// Elementwise `out[i] = f(a[i], b[i])` over row chunks.
pub(crate) fn ew_zip(
    a: &[f64],
    b: &[f64],
    cols: usize,
    out: &mut [f64],
    f: impl Fn(f64, f64) -> f64 + Sync,
) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    for_row_chunks(out, cols, |first_row, _nrows, chunk| {
        let base = first_row * cols;
        let sa = &a[base..base + chunk.len()];
        let sb = &b[base..base + chunk.len()];
        for ((o, &x), &y) in chunk.iter_mut().zip(sa.iter()).zip(sb.iter()) {
            *o = f(x, y);
        }
    });
}
