//! Tape-based reverse-mode automatic differentiation.
//!
//! Each rank (thread) owns one [`Tape`] per forward pass. Operations append
//! nodes recording the op kind and parent variables; [`Tape::backward`]
//! walks the nodes in reverse, propagating adjoints. Distributed operations
//! (halo swaps, all-reduces) are [`CustomOp`]s whose backward closures carry
//! a communicator handle — this is the Rust analogue of the differentiable
//! `torch.distributed.nn` routines the paper relies on for Eq. (3).

use std::sync::Arc;

use crate::tensor::Tensor;

/// Handle to a variable on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// A user-defined differentiable operation.
///
/// `backward` receives the adjoint of the op output plus the recorded input
/// values, and returns one adjoint per input (or `None` for inputs that do
/// not need gradients). Implementations may perform communication; all ranks
/// replay their tapes in the same order, so collective calls match up.
pub trait CustomOp: Send {
    /// Human-readable op name for debugging.
    fn name(&self) -> &'static str;

    /// Compute input adjoints given the output adjoint.
    fn backward(&self, grad_out: &Tensor, inputs: &[&Tensor]) -> Vec<Option<Tensor>>;
}

pub(crate) enum Op {
    /// Input / parameter: no parents.
    Leaf,
    /// `C = A * B`
    Matmul(VarId, VarId),
    /// `C = A + B` (same shape)
    Add(VarId, VarId),
    /// `C = A - B` (same shape)
    Sub(VarId, VarId),
    /// `C = A ⊙ B` (Hadamard)
    Mul(VarId, VarId),
    /// `C[i, :] = A[i, :] + bias[0, :]`
    AddRow(VarId, VarId),
    /// `C = alpha * A`
    Scale(VarId, f64),
    /// Column-wise concatenation; stores parent column widths.
    ConcatCols(Vec<(VarId, usize)>),
    /// `C[i] = A[idx[i]]`
    GatherRows(VarId, Arc<Vec<usize>>, usize),
    /// `C[idx[i]] += A[i]`, C has `out_rows` rows.
    ScatterAddRows(VarId, Arc<Vec<usize>>),
    /// `C[i, :] = w[i] * A[i, :]` with constant weights.
    RowScale(VarId, Arc<Vec<f64>>),
    /// ELU activation (alpha = 1).
    Elu(VarId),
    /// tanh activation.
    Tanh(VarId),
    /// Row-wise layer normalization with learned gain/bias.
    LayerNorm {
        x: VarId,
        gamma: VarId,
        beta: VarId,
        eps: f64,
    },
    /// `c = sum_i w[i] * sum_j A[i,j]^2` (scalar); weights constant.
    WeightedSqSum(VarId, Arc<Vec<f64>>),
    /// `c = sum_ij A[i,j]` (scalar).
    Sum(VarId),
    /// User-defined op (e.g. halo exchange, all-reduce).
    Custom {
        inputs: Vec<VarId>,
        op: Box<dyn CustomOp>,
    },
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// Reverse-mode autodiff tape.
///
/// ```
/// use cgnn_tensor::{Tape, Tensor};
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(1, 2, vec![3.0, -1.0]));
/// let y = tape.mul(x, x); // elementwise square
/// let s = tape.sum(y);
/// let grads = tape.backward(s);
/// assert_eq!(grads.get(x).unwrap().data(), &[6.0, -2.0]);
/// ```
pub struct Tape {
    nodes: Vec<Node>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`VarId`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. variable `id`, if it participated.
    pub fn get(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    /// Remove and return the gradient for `id`.
    pub fn take(&mut self, id: VarId) -> Option<Tensor> {
        self.grads.get_mut(id.0).and_then(|g| g.take())
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a recorded variable.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> VarId {
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Record an input or parameter tensor.
    pub fn leaf(&mut self, t: Tensor) -> VarId {
        self.push(t, Op::Leaf)
    }

    /// `a * b` (matrix product).
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// `a + b` elementwise.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.value(a).clone();
        v.add_assign(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `a - b` elementwise.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.value(a).clone();
        v.axpy(-1.0, self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// `a ⊙ b` elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let mut v = va.clone();
        for (x, y) in v.data_mut().iter_mut().zip(vb.data().iter()) {
            *x *= y;
        }
        self.push(v, Op::Mul(a, b))
    }

    /// Broadcast-add a `[1, n]` bias row to every row of `a`.
    pub fn add_row(&mut self, a: VarId, bias: VarId) -> VarId {
        let (va, vb) = (self.value(a), self.value(bias));
        assert_eq!(vb.rows(), 1, "bias must be a row vector");
        assert_eq!(va.cols(), vb.cols(), "bias width mismatch");
        let mut v = va.clone();
        let b = vb.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            for (x, y) in row.iter_mut().zip(b.data().iter()) {
                *x += y;
            }
        }
        self.push(v, Op::AddRow(a, bias))
    }

    /// `alpha * a`.
    pub fn scale(&mut self, a: VarId, alpha: f64) -> VarId {
        let v = self.value(a).scaled(alpha);
        self.push(v, Op::Scale(a, alpha))
    }

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        let meta = parts.iter().map(|&p| (p, self.value(p).cols())).collect();
        self.push(v, Op::ConcatCols(meta))
    }

    /// `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: VarId, idx: Arc<Vec<usize>>) -> VarId {
        let src_rows = self.value(a).rows();
        let v = self.value(a).gather_rows(&idx);
        self.push(v, Op::GatherRows(a, idx, src_rows))
    }

    /// `out[idx[i]] += a[i]` with `out_rows` output rows.
    pub fn scatter_add_rows(&mut self, a: VarId, idx: Arc<Vec<usize>>, out_rows: usize) -> VarId {
        let v = self.value(a).scatter_add_rows(&idx, out_rows);
        self.push(v, Op::ScatterAddRows(a, idx))
    }

    /// Scale row `i` by the constant `weights[i]` (no gradient w.r.t.
    /// weights — these are the geometric 1/d consistency factors).
    pub fn row_scale(&mut self, a: VarId, weights: Arc<Vec<f64>>) -> VarId {
        let v = self.value(a).row_scale(&weights);
        self.push(v, Op::RowScale(a, weights))
    }

    /// ELU activation with alpha = 1.
    pub fn elu(&mut self, a: VarId) -> VarId {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            if *x < 0.0 {
                *x = x.exp() - 1.0;
            }
        }
        self.push(v, Op::Elu(a))
    }

    /// tanh activation.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            *x = x.tanh();
        }
        self.push(v, Op::Tanh(a))
    }

    /// Row-wise layer normalization with learned `gamma`/`beta` (`[1, F]`).
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f64) -> VarId {
        let vx = self.value(x);
        let (rows, cols) = vx.shape();
        let g = self.value(gamma).clone();
        let b = self.value(beta).clone();
        assert_eq!(g.shape(), (1, cols), "layer_norm gamma shape");
        assert_eq!(b.shape(), (1, cols), "layer_norm beta shape");
        let mut v = Tensor::zeros(rows, cols);
        let n = cols as f64;
        for r in 0..rows {
            let xr = vx.row(r);
            let mean = xr.iter().sum::<f64>() / n;
            let var = xr.iter().map(|&u| (u - mean) * (u - mean)).sum::<f64>() / n;
            let inv = 1.0 / (var + eps).sqrt();
            let out = v.row_mut(r);
            for c in 0..cols {
                out[c] = g.data()[c] * (xr[c] - mean) * inv + b.data()[c];
            }
        }
        self.push(
            v,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
        )
    }

    /// Scalar `sum_i w[i] * sum_j a[i,j]^2` with constant row weights — the
    /// building block of the paper's consistent MSE (Eq. 6b).
    pub fn weighted_sq_sum(&mut self, a: VarId, weights: Arc<Vec<f64>>) -> VarId {
        let va = self.value(a);
        assert_eq!(weights.len(), va.rows(), "weighted_sq_sum weight length");
        let mut acc = 0.0;
        for (r, &w) in weights.iter().enumerate() {
            let row = va.row(r);
            acc += w * row.iter().map(|&u| u * u).sum::<f64>();
        }
        self.push(Tensor::scalar(acc), Op::WeightedSqSum(a, weights))
    }

    /// Scalar sum over all entries.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let s = self.value(a).sum();
        self.push(Tensor::scalar(s), Op::Sum(a))
    }

    /// Record a user-defined differentiable op with an already-computed
    /// forward value (the caller performs the forward communication).
    pub fn custom(&mut self, inputs: Vec<VarId>, value: Tensor, op: Box<dyn CustomOp>) -> VarId {
        self.push(value, Op::Custom { inputs, op })
    }

    /// Run reverse-mode accumulation from scalar variable `root`.
    ///
    /// The adjoint of `root` is seeded with 1. Returns gradients for every
    /// participating variable (leaves included).
    pub fn backward(&self, root: VarId) -> Gradients {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(grad_out) = grads[i].take() else {
                continue;
            };
            // Re-insert so callers can read gradients of interior nodes too.
            let node = &self.nodes[i];
            self.accumulate(&mut grads, node, &grad_out);
            grads[i] = Some(grad_out);
        }
        Gradients { grads }
    }

    fn accumulate(&self, grads: &mut [Option<Tensor>], node: &Node, g: &Tensor) {
        let mut add = |id: VarId, contrib: Tensor| match &mut grads[id.0] {
            Some(acc) => acc.add_assign(&contrib),
            slot @ None => *slot = Some(contrib),
        };
        match &node.op {
            Op::Leaf => {}
            Op::Matmul(a, b) => {
                let (va, vb) = (self.value(*a), self.value(*b));
                add(*a, g.matmul_nt(vb));
                add(*b, va.matmul_tn(g));
            }
            Op::Add(a, b) => {
                add(*a, g.clone());
                add(*b, g.clone());
            }
            Op::Sub(a, b) => {
                add(*a, g.clone());
                add(*b, g.scaled(-1.0));
            }
            Op::Mul(a, b) => {
                let (va, vb) = (self.value(*a), self.value(*b));
                let mut ga = g.clone();
                for (x, y) in ga.data_mut().iter_mut().zip(vb.data().iter()) {
                    *x *= y;
                }
                let mut gb = g.clone();
                for (x, y) in gb.data_mut().iter_mut().zip(va.data().iter()) {
                    *x *= y;
                }
                add(*a, ga);
                add(*b, gb);
            }
            Op::AddRow(a, bias) => {
                add(*a, g.clone());
                // Bias gradient: column sums of g.
                let mut gb = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    let row = g.row(r);
                    for (o, &v) in gb.data_mut().iter_mut().zip(row.iter()) {
                        *o += v;
                    }
                }
                add(*bias, gb);
            }
            Op::Scale(a, alpha) => add(*a, g.scaled(*alpha)),
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for (id, w) in parts {
                    let mut part = Tensor::zeros(g.rows(), *w);
                    for r in 0..g.rows() {
                        part.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                    }
                    add(*id, part);
                    off += w;
                }
            }
            Op::GatherRows(a, idx, src_rows) => {
                add(*a, g.scatter_add_rows(idx, *src_rows));
            }
            Op::ScatterAddRows(a, idx) => {
                add(*a, g.gather_rows(idx));
            }
            Op::RowScale(a, w) => add(*a, g.row_scale(w)),
            Op::Elu(a) => {
                let va = self.value(*a);
                let mut ga = g.clone();
                for (x, &u) in ga.data_mut().iter_mut().zip(va.data().iter()) {
                    if u < 0.0 {
                        *x *= u.exp();
                    }
                }
                add(*a, ga);
            }
            Op::Tanh(a) => {
                let vy = &node.value;
                let mut ga = g.clone();
                for (x, &y) in ga.data_mut().iter_mut().zip(vy.data().iter()) {
                    *x *= 1.0 - y * y;
                }
                add(*a, ga);
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            } => {
                let vx = self.value(*x);
                let vg = self.value(*gamma);
                let (rows, cols) = vx.shape();
                let n = cols as f64;
                let mut gx = Tensor::zeros(rows, cols);
                let mut ggamma = Tensor::zeros(1, cols);
                let mut gbeta = Tensor::zeros(1, cols);
                for r in 0..rows {
                    let xr = vx.row(r);
                    let gr = g.row(r);
                    let mean = xr.iter().sum::<f64>() / n;
                    let var = xr.iter().map(|&u| (u - mean) * (u - mean)).sum::<f64>() / n;
                    let inv = 1.0 / (var + eps).sqrt();
                    // xhat = (x - mean) * inv
                    // dgamma += g * xhat ; dbeta += g
                    // dxhat = g * gamma
                    // dx = inv/n * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
                    let mut sum_dxhat = 0.0;
                    let mut sum_dxhat_xhat = 0.0;
                    for c in 0..cols {
                        let xhat = (xr[c] - mean) * inv;
                        let dxhat = gr[c] * vg.data()[c];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                        ggamma.data_mut()[c] += gr[c] * xhat;
                        gbeta.data_mut()[c] += gr[c];
                    }
                    let out = gx.row_mut(r);
                    for c in 0..cols {
                        let xhat = (xr[c] - mean) * inv;
                        let dxhat = gr[c] * vg.data()[c];
                        out[c] = inv / n * (n * dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
                    }
                }
                add(*x, gx);
                add(*gamma, ggamma);
                add(*beta, gbeta);
            }
            Op::WeightedSqSum(a, w) => {
                let va = self.value(*a);
                let s = g.item();
                let mut ga = Tensor::zeros(va.rows(), va.cols());
                for (r, &wr) in w.iter().enumerate() {
                    let src = va.row(r);
                    let dst = ga.row_mut(r);
                    for (d, &u) in dst.iter_mut().zip(src.iter()) {
                        *d = 2.0 * wr * u * s;
                    }
                }
                add(*a, ga);
            }
            Op::Sum(a) => {
                let va = self.value(*a);
                add(*a, Tensor::full(va.rows(), va.cols(), g.item()));
            }
            Op::Custom { inputs, op } => {
                let vals: Vec<&Tensor> = inputs.iter().map(|&i| self.value(i)).collect();
                let contribs = op.backward(g, &vals);
                assert_eq!(
                    contribs.len(),
                    inputs.len(),
                    "custom op {} returned wrong gradient count",
                    op.name()
                );
                for (id, c) in inputs.iter().zip(contribs) {
                    if let Some(c) = c {
                        add(*id, c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_matmul_chain() {
        // f = sum(A * B); df/dA = 1 * B^T rows, df/dB = A^T * 1
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = tape.leaf(Tensor::from_vec(2, 2, vec![5., 6., 7., 8.]));
        let c = tape.matmul(a, b);
        let s = tape.sum(c);
        let g = tape.backward(s);
        // dA[i,k] = sum_j B[k,j]
        assert_eq!(g.get(a).unwrap().data(), &[11., 15., 11., 15.]);
        // dB[k,j] = sum_i A[i,k]
        assert_eq!(g.get(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn gather_then_scatter_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        let idx = Arc::new(vec![0usize, 0, 2]);
        let gth = tape.gather_rows(x, idx.clone());
        let sct = tape.scatter_add_rows(gth, Arc::new(vec![1usize, 1, 0]), 2);
        let s = tape.sum(sct);
        let g = tape.backward(s);
        // Every gathered copy contributes 1 to its source row.
        assert_eq!(g.get(x).unwrap().data(), &[2., 0., 1.]);
    }

    #[test]
    fn custom_op_identity_backward() {
        struct Identity;
        impl CustomOp for Identity {
            fn name(&self) -> &'static str {
                "identity"
            }
            fn backward(&self, grad_out: &Tensor, _inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
                vec![Some(grad_out.clone())]
            }
        }
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 3, vec![1., -2., 3.]));
        let v = tape.value(x).clone();
        let y = tape.custom(vec![x], v, Box::new(Identity));
        let sq = tape.mul(y, y);
        let s = tape.sum(sq);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[2., -4., 6.]);
    }

    #[test]
    fn grad_accumulates_over_multiple_uses() {
        // f = sum(x + x) => df/dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 2, vec![1., 2.]));
        let y = tape.add(x, x);
        let s = tape.sum(y);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[2., 2.]);
    }

    #[test]
    fn unused_leaf_has_no_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(1.0));
        let y = tape.leaf(Tensor::scalar(2.0));
        let s = tape.sum(x);
        let g = tape.backward(s);
        assert!(g.get(y).is_none());
    }
}
