//! Tape-based reverse-mode automatic differentiation.
//!
//! Each rank (thread) owns one [`Tape`] per forward pass. Operations append
//! nodes recording the op kind and parent variables; [`Tape::backward`]
//! walks the nodes in reverse, propagating adjoints. Distributed operations
//! (halo swaps, all-reduces) are [`CustomOp`]s whose backward closures carry
//! a communicator handle — this is the Rust analogue of the differentiable
//! `torch.distributed.nn` routines the paper relies on for Eq. (3).
//!
//! ## Reusable workspace
//!
//! A training loop records thousands of tape ops per mini-batch, and every
//! op produces a tensor. Instead of allocating each one fresh, the tape
//! owns a buffer pool: [`Tape::reset`] returns all node values (and, via
//! [`Tape::recycle`], gradient tensors) to the pool, and subsequent ops
//! draw recycled buffers in recording order. Because the op sequence of a
//! training step is identical from step to step, every op gets back a
//! buffer of exactly the right capacity — steady-state steps perform no
//! heap allocation in the tensor hot path. Arithmetic is unaffected:
//! recycled buffers are fully overwritten (or zeroed where kernels
//! accumulate), so a reset tape replays bit-identically to a fresh one.

use std::sync::Arc;

use crate::par::{ew_map, ew_zip, for_row_chunks};
use crate::tensor::Tensor;

/// Handle to a variable on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// A user-defined differentiable operation.
///
/// `backward` receives the adjoint of the op output plus the recorded input
/// values, and returns one adjoint per input (or `None` for inputs that do
/// not need gradients). Implementations may perform communication; all ranks
/// replay their tapes in the same order, so collective calls match up.
pub trait CustomOp: Send {
    /// Human-readable op name for debugging.
    fn name(&self) -> &'static str;

    /// Compute input adjoints given the output adjoint.
    fn backward(&self, grad_out: &Tensor, inputs: &[&Tensor]) -> Vec<Option<Tensor>>;
}

/// One input of a fused gather-concatenate (see [`Tape::gather_concat`]):
/// a source variable and, optionally, the row indices to gather from it
/// (`None` streams the source's rows through directly).
pub(crate) struct GatherPart {
    src: VarId,
    idx: Option<Arc<Vec<usize>>>,
    cols: usize,
}

pub(crate) enum Op {
    /// Input / parameter: no parents.
    Leaf,
    /// `C = A * B`
    Matmul(VarId, VarId),
    /// `C[i, :] = b[0, :] + A[i, :] * W`, optionally passed through ELU at
    /// store time — the fused linear(+activation) layer.
    Linear {
        x: VarId,
        w: VarId,
        b: VarId,
        elu: bool,
    },
    /// `C = A + B` (same shape)
    Add(VarId, VarId),
    /// `C = A - B` (same shape)
    Sub(VarId, VarId),
    /// `C = A ⊙ B` (Hadamard)
    Mul(VarId, VarId),
    /// `C[i, :] = A[i, :] + bias[0, :]`
    AddRow(VarId, VarId),
    /// `C = alpha * A`
    Scale(VarId, f64),
    /// Column-wise concatenation; stores parent column widths.
    ConcatCols(Vec<(VarId, usize)>),
    /// Fused gather + column concatenation:
    /// `C[i, :] = [P0[idx0[i]] | P1[idx1[i]] | ...]` (`None` index = row i).
    GatherConcat(Vec<GatherPart>),
    /// `C[i] = A[idx[i]]`
    GatherRows(VarId, Arc<Vec<usize>>, usize),
    /// `C[idx[i]] += A[i]`, C has `out_rows` rows.
    ScatterAddRows(VarId, Arc<Vec<usize>>),
    /// Disjoint row merge: `C[idx_p[i]] = P_p[i]` over all parts `p`; the
    /// index lists partition the output rows.
    MergeRows(Vec<(VarId, Arc<Vec<usize>>)>),
    /// `C[i, :] = w[i] * A[i, :]` with constant weights.
    RowScale(VarId, Arc<Vec<f64>>),
    /// ELU activation (alpha = 1).
    Elu(VarId),
    /// tanh activation.
    Tanh(VarId),
    /// Row-wise layer normalization with learned gain/bias.
    LayerNorm {
        x: VarId,
        gamma: VarId,
        beta: VarId,
        eps: f64,
    },
    /// `c = sum_i w[i] * sum_j A[i,j]^2` (scalar); weights constant.
    WeightedSqSum(VarId, Arc<Vec<f64>>),
    /// `c = sum_ij A[i,j]` (scalar).
    Sum(VarId),
    /// User-defined op (e.g. halo exchange, all-reduce).
    Custom {
        inputs: Vec<VarId>,
        op: Box<dyn CustomOp>,
    },
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// Recycled `f64` buffers, bucketed by length: a training step replays the
/// same op sequence every iteration, so every request finds a bucket with a
/// buffer of exactly the right size — no reallocation, no zero-fill of
/// grown tails, steady-state steps allocate nothing.
#[derive(Default)]
struct BufPool {
    by_len: std::collections::HashMap<usize, Vec<Vec<f64>>>,
}

impl BufPool {
    fn take(&mut self, len: usize) -> Vec<f64> {
        self.by_len
            .get_mut(&len)
            .and_then(Vec::pop)
            .unwrap_or_default()
    }

    fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.by_len.entry(buf.len()).or_default().push(buf);
        }
    }

    fn uninit(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_pool_uninit(rows, cols, self.take(rows * cols))
    }

    fn zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_pool_zeroed(rows, cols, self.take(rows * cols))
    }

    fn copy_of(&mut self, t: &Tensor) -> Tensor {
        let mut out = self.uninit(t.rows(), t.cols());
        t.copy_into(&mut out);
        out
    }
}

/// Active row-masked recording region (see [`Tape::begin_row_mask`]).
struct RowMask {
    rows: Arc<Vec<usize>>,
    first_node: usize,
}

/// Reverse-mode autodiff tape.
///
/// ```
/// use cgnn_tensor::{Tape, Tensor};
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(1, 2, vec![3.0, -1.0]));
/// let y = tape.mul(x, x); // elementwise square
/// let s = tape.sum(y);
/// let grads = tape.backward(s);
/// assert_eq!(grads.get(x).unwrap().data(), &[6.0, -2.0]);
/// ```
pub struct Tape {
    nodes: Vec<Node>,
    pool: BufPool,
    mask: Option<RowMask>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`VarId`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. variable `id`, if it participated.
    pub fn get(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    /// Remove and return the gradient for `id`.
    pub fn take(&mut self, id: VarId) -> Option<Tensor> {
        self.grads.get_mut(id.0).and_then(|g| g.take())
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            pool: BufPool::default(),
            mask: None,
        }
    }

    /// Enter **row-masked recording**: until [`Tape::end_row_mask`], the
    /// row-separable ops ([`Tape::linear`], [`Tape::elu`], [`Tape::tanh`],
    /// [`Tape::layer_norm`], [`Tape::gather_concat`]) compute their values
    /// only for the given output rows; the remaining rows hold stale
    /// buffer contents until the closing backfill overwrites them.
    ///
    /// This is the mechanism behind true compute/communication overlap:
    /// the NMP layer records the node-MLP chain monolithically (so the
    /// backward pass is the ordinary full-tensor one, bit-identical to the
    /// non-overlapped schedule) while computing interior rows inside the
    /// halo-exchange window and boundary rows after it.
    ///
    /// # Panics
    /// If a mask is already active, or an unsupported op is recorded while
    /// masked.
    pub fn begin_row_mask(&mut self, rows: Arc<Vec<usize>>) {
        assert!(self.mask.is_none(), "row mask already active");
        self.mask = Some(RowMask {
            rows,
            first_node: self.nodes.len(),
        });
    }

    /// Close the row-masked region: compute the `complement` rows of every
    /// node recorded since [`Tape::begin_row_mask`], in recording order.
    /// Together the mask rows and `complement` must cover every output row
    /// that is ever read (in practice: they partition the row space).
    pub fn end_row_mask(&mut self, complement: &[usize]) {
        let mask = self.mask.take().expect("no row mask active");
        for i in mask.first_node..self.nodes.len() {
            let (before, rest) = self.nodes.split_at_mut(i);
            compute_node_rows(before, &mut rest[0], complement);
        }
    }

    /// Fill the mask rows of a freshly pushed masked node.
    fn masked_fill(&mut self, id: VarId) {
        let rows = Arc::clone(&self.mask.as_ref().expect("mask active").rows);
        let (before, rest) = self.nodes.split_at_mut(id.0);
        compute_node_rows(before, &mut rest[0], &rows);
    }

    /// Guard for ops that cannot participate in a row-masked region.
    fn assert_unmasked(&self, what: &str) {
        assert!(
            self.mask.is_none(),
            "{what} is not supported under an active row mask"
        );
    }

    /// Clear all recorded nodes while **keeping** their buffers (and the
    /// node-list capacity) for the next recording. The next forward pass
    /// draws recycled buffers instead of allocating; arithmetic is
    /// unaffected (every kernel fully overwrites or zero-initializes its
    /// output), so a reset tape replays bit-identically to a fresh one.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.put(node.value.into_vec());
        }
    }

    /// Return gradient tensors to the workspace pool (the natural follow-up
    /// to [`Tape::backward`] once the gradients have been consumed).
    pub fn recycle(&mut self, grads: Gradients) {
        for g in grads.grads.into_iter().flatten() {
            self.pool.put(g.into_vec());
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a recorded variable.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Copy of a recorded value, drawn from the workspace pool (for callers
    /// that need an owned tensor to mutate, e.g. halo accumulation).
    pub fn value_copy(&mut self, id: VarId) -> Tensor {
        let buf = self.pool.take(self.nodes[id.0].value.len());
        let v = &self.nodes[id.0].value;
        let mut out = Tensor::from_pool_uninit(v.rows(), v.cols(), buf);
        v.copy_into(&mut out);
        out
    }

    /// Mutable access to a recorded value — the completion hook of the
    /// split-phase halo exchange, which accumulates arrived halos into the
    /// boundary rows of an already-recorded sync node. Callers must finish
    /// all mutation before any later op (or the backward pass) reads the
    /// affected rows.
    pub fn value_mut(&mut self, id: VarId) -> &mut Tensor {
        &mut self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> VarId {
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Record an input or parameter tensor.
    pub fn leaf(&mut self, t: Tensor) -> VarId {
        self.push(t, Op::Leaf)
    }

    /// Record a leaf by copying `t` into a recycled buffer — the
    /// allocation-free way to feed per-step inputs (parameters, features)
    /// to a reused tape.
    pub fn leaf_copy(&mut self, t: &Tensor) -> VarId {
        let v = self.pool.copy_of(t);
        self.push(v, Op::Leaf)
    }

    /// `a * b` (matrix product).
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_unmasked("matmul");
        let len = self.value(a).rows() * self.value(b).cols();
        let buf = self.pool.take(len);
        let (va, vb) = (self.value(a), self.value(b));
        let mut out = Tensor::from_pool_uninit(va.rows(), vb.cols(), buf);
        va.matmul_into(vb, &mut out);
        self.push(out, Op::Matmul(a, b))
    }

    /// Fused linear layer `x * w + b` (`b` is a `[1, out]` row broadcast
    /// over rows): one kernel, one output tensor, instead of a matmul
    /// followed by a broadcast add.
    pub fn linear(&mut self, x: VarId, w: VarId, b: VarId) -> VarId {
        self.linear_impl(x, w, b, false)
    }

    /// [`Tape::linear`] with ELU (alpha = 1) applied as the kernel's
    /// store-time post-op: `elu(x * w + b)` as **one** op and one tensor —
    /// the hidden-layer body of every MLP in the model.
    pub fn linear_elu(&mut self, x: VarId, w: VarId, b: VarId) -> VarId {
        self.linear_impl(x, w, b, true)
    }

    fn linear_impl(&mut self, x: VarId, w: VarId, b: VarId, elu: bool) -> VarId {
        let buf = self.pool.take(self.value(x).rows() * self.value(w).cols());
        let (vx, vw, vb) = (self.value(x), self.value(w), self.value(b));
        assert_eq!(
            vx.cols(),
            vw.rows(),
            "linear inner dims: {}x{} * {}x{}",
            vx.rows(),
            vx.cols(),
            vw.rows(),
            vw.cols()
        );
        assert_eq!(vb.shape(), (1, vw.cols()), "linear bias shape");
        let (k, n) = (vx.cols(), vw.cols());
        if self.mask.is_some() {
            let out = Tensor::from_pool_uninit(vx.rows(), n, buf);
            let id = self.push(out, Op::Linear { x, w, b, elu });
            self.masked_fill(id);
            return id;
        }
        let mut out = Tensor::from_pool_uninit(vx.rows(), n, buf);
        let x_data = vx.data();
        let w_data = vw.data();
        let bias = vb.data();
        for_row_chunks(out.data_mut(), n, |first_row, nrows, chunk| {
            crate::tensor::gemm_rows(
                x_data,
                w_data,
                chunk,
                first_row,
                nrows,
                k,
                n,
                Some(bias),
                elu,
            );
        });
        self.push(out, Op::Linear { x, w, b, elu })
    }

    /// `a + b` elementwise.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_unmasked("add");
        let buf = self.pool.take(self.value(a).len());
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        ew_zip(va.data(), vb.data(), va.cols(), out.data_mut(), |x, y| {
            x + y
        });
        self.push(out, Op::Add(a, b))
    }

    /// `a - b` elementwise.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_unmasked("sub");
        let buf = self.pool.take(self.value(a).len());
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        ew_zip(va.data(), vb.data(), va.cols(), out.data_mut(), |x, y| {
            x - y
        });
        self.push(out, Op::Sub(a, b))
    }

    /// `a ⊙ b` elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        self.assert_unmasked("mul");
        let buf = self.pool.take(self.value(a).len());
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        ew_zip(va.data(), vb.data(), va.cols(), out.data_mut(), |x, y| {
            x * y
        });
        self.push(out, Op::Mul(a, b))
    }

    /// Broadcast-add a `[1, n]` bias row to every row of `a`.
    pub fn add_row(&mut self, a: VarId, bias: VarId) -> VarId {
        self.assert_unmasked("add_row");
        let buf = self.pool.take(self.value(a).len());
        let (va, vb) = (self.value(a), self.value(bias));
        assert_eq!(vb.rows(), 1, "bias must be a row vector");
        assert_eq!(va.cols(), vb.cols(), "bias width mismatch");
        let cols = va.cols();
        let mut out = Tensor::from_pool_uninit(va.rows(), cols, buf);
        let a_data = va.data();
        let b_row = vb.data();
        for_row_chunks(out.data_mut(), cols, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let src = &a_data[(first_row + i) * cols..(first_row + i + 1) * cols];
                let dst = &mut chunk[i * cols..(i + 1) * cols];
                for ((o, &x), &b) in dst.iter_mut().zip(src.iter()).zip(b_row.iter()) {
                    *o = x + b;
                }
            }
        });
        self.push(out, Op::AddRow(a, bias))
    }

    /// `alpha * a`.
    pub fn scale(&mut self, a: VarId, alpha: f64) -> VarId {
        self.assert_unmasked("scale");
        let buf = self.pool.take(self.value(a).len());
        let va = self.value(a);
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        ew_map(va.data(), va.cols(), out.data_mut(), |x| alpha * x);
        self.push(out, Op::Scale(a, alpha))
    }

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        self.assert_unmasked("concat_cols");
        let meta: Vec<(VarId, usize)> = parts.iter().map(|&p| (p, self.value(p).cols())).collect();
        let fused: Vec<(VarId, Option<Arc<Vec<usize>>>)> =
            parts.iter().map(|&p| (p, None)).collect();
        let v = self.gather_concat_value(&fused);
        self.push(v, Op::ConcatCols(meta))
    }

    /// Fused gather + column concatenation — the message-passing prologue
    /// `[x[src] | x[dst] | e]` as **one** kernel and one output tensor.
    /// Each part is `(variable, Some(row indices))` to gather, or
    /// `(variable, None)` to stream the variable's rows through directly.
    /// All gathered index lists must share one length; `None` parts must
    /// have exactly that many rows.
    pub fn gather_concat(&mut self, parts: &[(VarId, Option<Arc<Vec<usize>>>)]) -> VarId {
        let meta: Vec<GatherPart> = parts
            .iter()
            .map(|(p, idx)| GatherPart {
                src: *p,
                idx: idx.clone(),
                cols: self.value(*p).cols(),
            })
            .collect();
        if self.mask.is_some() {
            assert!(!parts.is_empty(), "gather_concat needs at least one part");
            let rows = parts
                .iter()
                .map(|(p, idx)| idx.as_ref().map_or(self.value(*p).rows(), |ix| ix.len()))
                .next()
                .expect("non-empty parts");
            // Same validation contract as the unmasked path.
            for (p, idx) in parts {
                match idx {
                    Some(ix) => assert_eq!(ix.len(), rows, "gather_concat index length mismatch"),
                    None => assert_eq!(self.value(*p).rows(), rows, "gather_concat row mismatch"),
                }
            }
            let cols: usize = meta.iter().map(|p| p.cols).sum();
            let out = Tensor::from_pool_uninit(rows, cols, self.pool.take(rows * cols));
            let id = self.push(out, Op::GatherConcat(meta));
            self.masked_fill(id);
            return id;
        }
        let v = self.gather_concat_value(parts);
        self.push(v, Op::GatherConcat(meta))
    }

    /// Shared forward kernel of [`Tape::concat_cols`] / [`Tape::gather_concat`].
    fn gather_concat_value(&mut self, parts: &[(VarId, Option<Arc<Vec<usize>>>)]) -> Tensor {
        assert!(!parts.is_empty(), "gather_concat needs at least one part");
        let rows = parts
            .iter()
            .map(|(p, idx)| idx.as_ref().map_or(self.value(*p).rows(), |ix| ix.len()))
            .next()
            .expect("non-empty parts");
        let cols: usize = parts.iter().map(|(p, _)| self.value(*p).cols()).sum();
        let buf = self.pool.take(rows * cols);
        let views: Vec<(&Tensor, Option<&[usize]>)> = parts
            .iter()
            .map(|(p, idx)| {
                let t = &self.nodes[p.0].value;
                let ix = idx.as_ref().map(|a| a.as_slice());
                if let Some(ix) = ix {
                    assert_eq!(ix.len(), rows, "gather_concat index length mismatch");
                } else {
                    assert_eq!(t.rows(), rows, "gather_concat row mismatch");
                }
                (t, ix)
            })
            .collect();
        let mut out = Tensor::from_pool_uninit(rows, cols, buf);
        for_row_chunks(out.data_mut(), cols, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let r = first_row + i;
                let o_row = &mut chunk[i * cols..(i + 1) * cols];
                let mut off = 0;
                for (t, ix) in &views {
                    let src = ix.map_or(r, |ix| ix[r]);
                    let w = t.cols();
                    // Element loop, not copy_from_slice: a per-row memcpy
                    // call dominates these narrow (~8-wide) copies.
                    for (o, &v) in o_row[off..off + w].iter_mut().zip(t.row(src).iter()) {
                        *o = v;
                    }
                    off += w;
                }
            }
        });
        out
    }

    /// `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: VarId, idx: Arc<Vec<usize>>) -> VarId {
        self.assert_unmasked("gather_rows");
        let buf = self.pool.take(idx.len() * self.value(a).cols());
        let va = self.value(a);
        let src_rows = va.rows();
        let mut out = Tensor::from_pool_uninit(idx.len(), va.cols(), buf);
        va.gather_rows_into(&idx, &mut out);
        self.push(out, Op::GatherRows(a, idx, src_rows))
    }

    /// `out[idx[i]] += a[i]` with `out_rows` output rows.
    pub fn scatter_add_rows(&mut self, a: VarId, idx: Arc<Vec<usize>>, out_rows: usize) -> VarId {
        self.assert_unmasked("scatter_add_rows");
        let buf = self.pool.take(out_rows * self.value(a).cols());
        let va = self.value(a);
        let mut out = Tensor::from_pool_uninit(out_rows, va.cols(), buf);
        va.scatter_add_rows_into(&idx, &mut out);
        self.push(out, Op::ScatterAddRows(a, idx))
    }

    /// Disjoint row merge: `out[idx_p[i]] = part_p[i]` for every part. The
    /// index lists must partition `0..out_rows` (each output row written
    /// exactly once) — the inverse of splitting a tensor with
    /// [`Tape::gather_rows`] into disjoint row blocks and processing each
    /// independently.
    pub fn merge_rows(&mut self, parts: &[(VarId, Arc<Vec<usize>>)], out_rows: usize) -> VarId {
        self.assert_unmasked("merge_rows");
        assert!(!parts.is_empty(), "merge_rows needs at least one part");
        let cols = self.value(parts[0].0).cols();
        let buf = self.pool.take(out_rows * cols);
        let total: usize = parts.iter().map(|(_, idx)| idx.len()).sum();
        assert_eq!(total, out_rows, "merge_rows index lists must cover output");
        let mut out = Tensor::from_pool_uninit(out_rows, cols, buf);
        for (p, idx) in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.cols(), cols, "merge_rows column mismatch");
            assert_eq!(t.rows(), idx.len(), "merge_rows part row mismatch");
            for (i, &dst) in idx.iter().enumerate() {
                debug_assert!(dst < out_rows);
                out.row_mut(dst).copy_from_slice(t.row(i));
            }
        }
        let meta = parts.iter().map(|(p, idx)| (*p, Arc::clone(idx))).collect();
        self.push(out, Op::MergeRows(meta))
    }

    /// Scale row `i` by the constant `weights[i]` (no gradient w.r.t.
    /// weights — these are the geometric 1/d consistency factors).
    pub fn row_scale(&mut self, a: VarId, weights: Arc<Vec<f64>>) -> VarId {
        self.assert_unmasked("row_scale");
        let buf = self.pool.take(self.value(a).len());
        let va = self.value(a);
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        va.row_scale_into(&weights, &mut out);
        self.push(out, Op::RowScale(a, weights))
    }

    /// ELU activation with alpha = 1.
    pub fn elu(&mut self, a: VarId) -> VarId {
        let buf = self.pool.take(self.value(a).len());
        let va = self.value(a);
        if self.mask.is_some() {
            let out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
            let id = self.push(out, Op::Elu(a));
            self.masked_fill(id);
            return id;
        }
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        ew_map(va.data(), va.cols(), out.data_mut(), |x| {
            if x < 0.0 {
                x.exp() - 1.0
            } else {
                x
            }
        });
        self.push(out, Op::Elu(a))
    }

    /// tanh activation.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let buf = self.pool.take(self.value(a).len());
        let va = self.value(a);
        if self.mask.is_some() {
            let out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
            let id = self.push(out, Op::Tanh(a));
            self.masked_fill(id);
            return id;
        }
        let mut out = Tensor::from_pool_uninit(va.rows(), va.cols(), buf);
        ew_map(va.data(), va.cols(), out.data_mut(), f64::tanh);
        self.push(out, Op::Tanh(a))
    }

    /// Row-wise layer normalization with learned `gamma`/`beta` (`[1, F]`).
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f64) -> VarId {
        let buf = self.pool.take(self.value(x).len());
        let vx = self.value(x);
        let (rows, cols) = vx.shape();
        let vg = self.value(gamma);
        let vb = self.value(beta);
        assert_eq!(vg.shape(), (1, cols), "layer_norm gamma shape");
        assert_eq!(vb.shape(), (1, cols), "layer_norm beta shape");
        if self.mask.is_some() {
            let out = Tensor::from_pool_uninit(rows, cols, buf);
            let id = self.push(
                out,
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    eps,
                },
            );
            self.masked_fill(id);
            return id;
        }
        let mut out = Tensor::from_pool_uninit(rows, cols, buf);
        let n = cols as f64;
        let x_data = vx.data();
        let g = vg.data();
        let b = vb.data();
        for_row_chunks(out.data_mut(), cols, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let xr = &x_data[(first_row + i) * cols..(first_row + i + 1) * cols];
                let mean = xr.iter().sum::<f64>() / n;
                let var = xr.iter().map(|&u| (u - mean) * (u - mean)).sum::<f64>() / n;
                let inv = 1.0 / (var + eps).sqrt();
                let o_row = &mut chunk[i * cols..(i + 1) * cols];
                for c in 0..cols {
                    o_row[c] = g[c] * (xr[c] - mean) * inv + b[c];
                }
            }
        });
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
        )
    }

    /// Scalar `sum_i w[i] * sum_j a[i,j]^2` with constant row weights — the
    /// building block of the paper's consistent MSE (Eq. 6b).
    pub fn weighted_sq_sum(&mut self, a: VarId, weights: Arc<Vec<f64>>) -> VarId {
        self.assert_unmasked("weighted_sq_sum");
        let va = self.value(a);
        assert_eq!(weights.len(), va.rows(), "weighted_sq_sum weight length");
        let mut acc = 0.0;
        for (r, &w) in weights.iter().enumerate() {
            let row = va.row(r);
            acc += w * row.iter().map(|&u| u * u).sum::<f64>();
        }
        self.push(Tensor::scalar(acc), Op::WeightedSqSum(a, weights))
    }

    /// Scalar sum over all entries.
    pub fn sum(&mut self, a: VarId) -> VarId {
        self.assert_unmasked("sum");
        let s = self.value(a).sum();
        self.push(Tensor::scalar(s), Op::Sum(a))
    }

    /// Record a user-defined differentiable op with an already-computed
    /// forward value (the caller performs the forward communication).
    pub fn custom(&mut self, inputs: Vec<VarId>, value: Tensor, op: Box<dyn CustomOp>) -> VarId {
        self.assert_unmasked("custom");
        self.push(value, Op::Custom { inputs, op })
    }

    /// Run reverse-mode accumulation from scalar variable `root`.
    ///
    /// The adjoint of `root` is seeded with 1. Returns gradients for every
    /// participating variable (leaves included). Gradient tensors draw from
    /// the tape's buffer pool; hand them back with [`Tape::recycle`] once
    /// consumed to keep steady-state steps allocation-free.
    pub fn backward(&mut self, root: VarId) -> Gradients {
        assert!(
            self.mask.is_none(),
            "backward with an active row mask (end_row_mask missing)"
        );
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Tensor::scalar(1.0));

        let Tape { nodes, pool, .. } = self;
        let nodes: &[Node] = nodes;
        for i in (0..nodes.len()).rev() {
            let Some(grad_out) = grads[i].take() else {
                continue;
            };
            // Re-insert so callers can read gradients of interior nodes too.
            accumulate(nodes, pool, &mut grads, &nodes[i], &grad_out);
            grads[i] = Some(grad_out);
        }
        Gradients { grads }
    }
}

/// Value of a recorded variable (free-function form for split borrows).
fn value(nodes: &[Node], id: VarId) -> &Tensor {
    &nodes[id.0].value
}

/// Propagate one node's adjoint to its parents, drawing scratch tensors
/// from the workspace pool.
fn accumulate(
    nodes: &[Node],
    pool: &mut BufPool,
    grads: &mut [Option<Tensor>],
    node: &Node,
    g: &Tensor,
) {
    let mut add = |id: VarId, contrib: Tensor, pool: &mut BufPool| match &mut grads[id.0] {
        Some(acc) => {
            acc.add_assign(&contrib);
            pool.put(contrib.into_vec());
        }
        slot @ None => *slot = Some(contrib),
    };
    match &node.op {
        Op::Leaf => {}
        Op::Matmul(a, b) => {
            let (va, vb) = (value(nodes, *a), value(nodes, *b));
            add(*a, times_transposed(pool, g, vb), pool);
            let mut gb = pool.uninit(va.cols(), g.cols());
            va.matmul_tn_into(g, &mut gb);
            add(*b, gb, pool);
        }
        Op::Linear { x, w, b, elu } => {
            let (vx, vw) = (value(nodes, *x), value(nodes, *w));
            // Fused activation: fold elu'(u) into the adjoint first; the
            // stored value is y = elu(u), and elu'(u) = y + 1 for y < 0.
            let gp = if *elu {
                let mut t = pool.uninit(g.rows(), g.cols());
                ew_zip(
                    g.data(),
                    node.value.data(),
                    g.cols(),
                    t.data_mut(),
                    |gv, y| {
                        if y < 0.0 {
                            gv * (y + 1.0)
                        } else {
                            gv
                        }
                    },
                );
                Some(t)
            } else {
                None
            };
            let gref = gp.as_ref().unwrap_or(g);
            add(*x, times_transposed(pool, gref, vw), pool);
            let mut gw = pool.uninit(vx.cols(), gref.cols());
            vx.matmul_tn_into(gref, &mut gw);
            add(*w, gw, pool);
            let gb = col_sums(pool, gref);
            add(*b, gb, pool);
            if let Some(t) = gp {
                pool.put(t.into_vec());
            }
        }
        Op::Add(a, b) => {
            add(*a, pool.copy_of(g), pool);
            add(*b, pool.copy_of(g), pool);
        }
        Op::Sub(a, b) => {
            add(*a, pool.copy_of(g), pool);
            let mut gb = pool.uninit(g.rows(), g.cols());
            ew_map(g.data(), g.cols(), gb.data_mut(), |x| -x);
            add(*b, gb, pool);
        }
        Op::Mul(a, b) => {
            let (va, vb) = (value(nodes, *a), value(nodes, *b));
            let mut ga = pool.uninit(g.rows(), g.cols());
            ew_zip(g.data(), vb.data(), g.cols(), ga.data_mut(), |x, y| x * y);
            add(*a, ga, pool);
            let mut gb = pool.uninit(g.rows(), g.cols());
            ew_zip(g.data(), va.data(), g.cols(), gb.data_mut(), |x, y| x * y);
            add(*b, gb, pool);
        }
        Op::AddRow(a, bias) => {
            add(*a, pool.copy_of(g), pool);
            add(*bias, col_sums(pool, g), pool);
        }
        Op::Scale(a, alpha) => {
            let al = *alpha;
            let mut ga = pool.uninit(g.rows(), g.cols());
            ew_map(g.data(), g.cols(), ga.data_mut(), |x| al * x);
            add(*a, ga, pool);
        }
        Op::ConcatCols(parts) => {
            let mut off = 0;
            for (id, w) in parts {
                let mut part = pool.uninit(g.rows(), *w);
                slice_cols_into(g, off, *w, &mut part);
                add(*id, part, pool);
                off += w;
            }
        }
        Op::GatherConcat(parts) => {
            let mut off = 0;
            for p in parts {
                let w = p.cols;
                let mut gp = pool.uninit(g.rows(), w);
                slice_cols_into(g, off, w, &mut gp);
                match &p.idx {
                    Some(idx) => {
                        let src_rows = value(nodes, p.src).rows();
                        let mut contrib = pool.uninit(src_rows, w);
                        gp.scatter_add_rows_into(idx, &mut contrib);
                        pool.put(gp.into_vec());
                        add(p.src, contrib, pool);
                    }
                    None => add(p.src, gp, pool),
                }
                off += w;
            }
        }
        Op::GatherRows(a, idx, src_rows) => {
            let mut contrib = pool.uninit(*src_rows, g.cols());
            g.scatter_add_rows_into(idx, &mut contrib);
            add(*a, contrib, pool);
        }
        Op::ScatterAddRows(a, idx) => {
            let mut contrib = pool.uninit(idx.len(), g.cols());
            g.gather_rows_into(idx, &mut contrib);
            add(*a, contrib, pool);
        }
        Op::MergeRows(parts) => {
            for (id, idx) in parts {
                let mut contrib = pool.uninit(idx.len(), g.cols());
                g.gather_rows_into(idx, &mut contrib);
                add(*id, contrib, pool);
            }
        }
        Op::RowScale(a, w) => {
            let mut contrib = pool.uninit(g.rows(), g.cols());
            g.row_scale_into(w, &mut contrib);
            add(*a, contrib, pool);
        }
        Op::Elu(a) => {
            // d/du elu(u) = exp(u) for u < 0, and the forward already
            // computed y = exp(u) - 1 (y < 0 iff u < 0), so the backward
            // reuses y + 1 instead of a second exp evaluation.
            let vy = &node.value;
            let mut ga = pool.uninit(g.rows(), g.cols());
            ew_zip(g.data(), vy.data(), g.cols(), ga.data_mut(), |x, y| {
                if y < 0.0 {
                    x * (y + 1.0)
                } else {
                    x
                }
            });
            add(*a, ga, pool);
        }
        Op::Tanh(a) => {
            let vy = &node.value;
            let mut ga = pool.uninit(g.rows(), g.cols());
            ew_zip(g.data(), vy.data(), g.cols(), ga.data_mut(), |x, y| {
                x * (1.0 - y * y)
            });
            add(*a, ga, pool);
        }
        Op::LayerNorm {
            x,
            gamma,
            beta,
            eps,
        } => {
            let vx = value(nodes, *x);
            let vg = value(nodes, *gamma);
            let (rows, cols) = vx.shape();
            let n = cols as f64;
            let mut gx = pool.uninit(rows, cols);
            let mut ggamma = pool.zeroed(1, cols);
            let mut gbeta = pool.zeroed(1, cols);
            let x_data = vx.data();
            let g_data = g.data();
            let gam = vg.data();
            let eps = *eps;
            // One fused pass: the gamma/beta reductions keep their exact
            // (serial, row-ordered) summation order, and each row's mean /
            // variance is computed once for all three gradients.
            for r in 0..rows {
                let xr = &x_data[r * cols..(r + 1) * cols];
                let gr = &g_data[r * cols..(r + 1) * cols];
                let mean = xr.iter().sum::<f64>() / n;
                let var = xr.iter().map(|&u| (u - mean) * (u - mean)).sum::<f64>() / n;
                let inv = 1.0 / (var + eps).sqrt();
                // xhat = (x - mean) * inv ; dxhat = g * gamma
                // dx = inv/n * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
                let mut sum_dxhat = 0.0;
                let mut sum_dxhat_xhat = 0.0;
                for c in 0..cols {
                    let xhat = (xr[c] - mean) * inv;
                    let dxhat = gr[c] * gam[c];
                    sum_dxhat += dxhat;
                    sum_dxhat_xhat += dxhat * xhat;
                    ggamma.data_mut()[c] += gr[c] * xhat;
                    gbeta.data_mut()[c] += gr[c];
                }
                let out = gx.row_mut(r);
                for c in 0..cols {
                    let xhat = (xr[c] - mean) * inv;
                    let dxhat = gr[c] * gam[c];
                    out[c] = inv / n * (n * dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
                }
            }
            add(*x, gx, pool);
            add(*gamma, ggamma, pool);
            add(*beta, gbeta, pool);
        }
        Op::WeightedSqSum(a, w) => {
            let va = value(nodes, *a);
            let s = g.item();
            let cols = va.cols();
            let mut ga = pool.uninit(va.rows(), cols);
            let a_data = va.data();
            for_row_chunks(ga.data_mut(), cols, |first_row, nrows, chunk| {
                for i in 0..nrows {
                    let r = first_row + i;
                    let wr = w[r];
                    let src = &a_data[r * cols..(r + 1) * cols];
                    let dst = &mut chunk[i * cols..(i + 1) * cols];
                    for (d, &u) in dst.iter_mut().zip(src.iter()) {
                        *d = 2.0 * wr * u * s;
                    }
                }
            });
            add(*a, ga, pool);
        }
        Op::Sum(a) => {
            let va = value(nodes, *a);
            let s = g.item();
            let mut contrib = pool.uninit(va.rows(), va.cols());
            contrib.data_mut().fill(s);
            add(*a, contrib, pool);
        }
        Op::Custom { inputs, op } => {
            let vals: Vec<&Tensor> = inputs.iter().map(|&i| value(nodes, i)).collect();
            let contribs = op.backward(g, &vals);
            assert_eq!(
                contribs.len(),
                inputs.len(),
                "custom op {} returned wrong gradient count",
                op.name()
            );
            for (id, c) in inputs.iter().zip(contribs) {
                if let Some(c) = c {
                    add(*id, c, pool);
                }
            }
        }
    }
}

/// Recompute the value rows `rows` of a masked-recorded node from its
/// parents — both the in-window fill and the closing backfill of the
/// row-mask mechanism. Every row's arithmetic is exactly the full kernel's
/// row computation, so a value assembled from any partition of its rows is
/// bit-identical to the monolithically computed one.
///
/// # Panics
///
/// If the node's op is not row-separable: recording under a row mask is
/// only legal for ops whose rows compute independently, and reaching
/// here with any other op is a programming error in the op registry.
fn compute_node_rows(parents: &[Node], node: &mut Node, rows: &[usize]) {
    let Node { value, op } = node;
    match &*op {
        Op::Linear { x, w, b, elu } => {
            let vx = &parents[x.0].value;
            let vw = &parents[w.0].value;
            let vb = &parents[b.0].value;
            let n = vw.cols();
            let w_data = vw.data();
            let bias = vb.data();
            for &r in rows {
                let x_row = vx.row(r);
                let o_row = value.row_mut(r);
                o_row.copy_from_slice(bias);
                for (p, &a) in x_row.iter().enumerate() {
                    let w_row = &w_data[p * n..(p + 1) * n];
                    for (o, &wv) in o_row.iter_mut().zip(w_row.iter()) {
                        *o += a * wv;
                    }
                }
                if *elu {
                    for o in o_row.iter_mut() {
                        *o = crate::tensor::elu_scalar(*o);
                    }
                }
            }
        }
        Op::Elu(a) => {
            let va = &parents[a.0].value;
            for &r in rows {
                let src = va.row(r);
                for (o, &xv) in value.row_mut(r).iter_mut().zip(src.iter()) {
                    *o = if xv < 0.0 { xv.exp() - 1.0 } else { xv };
                }
            }
        }
        Op::Tanh(a) => {
            let va = &parents[a.0].value;
            for &r in rows {
                let src = va.row(r);
                for (o, &xv) in value.row_mut(r).iter_mut().zip(src.iter()) {
                    *o = xv.tanh();
                }
            }
        }
        Op::LayerNorm {
            x,
            gamma,
            beta,
            eps,
        } => {
            let vx = &parents[x.0].value;
            let g = parents[gamma.0].value.data();
            let b = parents[beta.0].value.data();
            let cols = vx.cols();
            let n = cols as f64;
            for &r in rows {
                let xr = vx.row(r);
                let mean = xr.iter().sum::<f64>() / n;
                let var = xr.iter().map(|&u| (u - mean) * (u - mean)).sum::<f64>() / n;
                let inv = 1.0 / (var + eps).sqrt();
                let o_row = value.row_mut(r);
                for c in 0..cols {
                    o_row[c] = g[c] * (xr[c] - mean) * inv + b[c];
                }
            }
        }
        Op::GatherConcat(parts) => {
            for &r in rows {
                let o_row = value.row_mut(r);
                let mut off = 0;
                for p in parts {
                    let t = &parents[p.src.0].value;
                    let src = p.idx.as_ref().map_or(r, |ix| ix[r]);
                    o_row[off..off + p.cols].copy_from_slice(t.row(src));
                    off += p.cols;
                }
            }
        }
        // detlint: allow(unwrap-in-lib, "programming error in the op registry; masked recording is only reachable for row-separable ops")
        _ => panic!("op is not row-separable and cannot be recorded under a row mask"),
    }
}

/// `g * w^T` via an explicit (pooled) transpose of the small weight matrix
/// `w`, so the adjoint product runs through the register-tiled row GEMM.
/// Term order per output element is the `k`-index order — identical to
/// [`Tensor::matmul_nt_into`]'s dot products, bit for bit.
fn times_transposed(pool: &mut BufPool, g: &Tensor, w: &Tensor) -> Tensor {
    let mut wt = pool.uninit(w.cols(), w.rows());
    w.transpose_into(&mut wt);
    let mut out = pool.uninit(g.rows(), w.rows());
    g.matmul_into(&wt, &mut out);
    pool.put(wt.into_vec());
    out
}

/// Column sums of `g` as a `[1, cols]` tensor (bias gradients).
fn col_sums(pool: &mut BufPool, g: &Tensor) -> Tensor {
    let mut out = pool.zeroed(1, g.cols());
    for r in 0..g.rows() {
        let row = g.row(r);
        for (o, &v) in out.data_mut().iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
    out
}

/// Copy the column window `[off, off + w)` of `g` into `out` (`[rows, w]`).
fn slice_cols_into(g: &Tensor, off: usize, w: usize, out: &mut Tensor) {
    debug_assert_eq!(out.shape(), (g.rows(), w));
    for_row_chunks(out.data_mut(), w, |first_row, nrows, chunk| {
        for i in 0..nrows {
            let src = &g.row(first_row + i)[off..off + w];
            for (o, &v) in chunk[i * w..(i + 1) * w].iter_mut().zip(src.iter()) {
                *o = v;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_matmul_chain() {
        // f = sum(A * B); df/dA = 1 * B^T rows, df/dB = A^T * 1
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = tape.leaf(Tensor::from_vec(2, 2, vec![5., 6., 7., 8.]));
        let c = tape.matmul(a, b);
        let s = tape.sum(c);
        let g = tape.backward(s);
        // dA[i,k] = sum_j B[k,j]
        assert_eq!(g.get(a).unwrap().data(), &[11., 15., 11., 15.]);
        // dB[k,j] = sum_i A[i,k]
        assert_eq!(g.get(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn gather_then_scatter_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        let idx = Arc::new(vec![0usize, 0, 2]);
        let gth = tape.gather_rows(x, idx.clone());
        let sct = tape.scatter_add_rows(gth, Arc::new(vec![1usize, 1, 0]), 2);
        let s = tape.sum(sct);
        let g = tape.backward(s);
        // Every gathered copy contributes 1 to its source row.
        assert_eq!(g.get(x).unwrap().data(), &[2., 0., 1.]);
    }

    #[test]
    fn custom_op_identity_backward() {
        struct Identity;
        impl CustomOp for Identity {
            fn name(&self) -> &'static str {
                "identity"
            }
            fn backward(&self, grad_out: &Tensor, _inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
                vec![Some(grad_out.clone())]
            }
        }
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 3, vec![1., -2., 3.]));
        let v = tape.value(x).clone();
        let y = tape.custom(vec![x], v, Box::new(Identity));
        let sq = tape.mul(y, y);
        let s = tape.sum(sq);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[2., -4., 6.]);
    }

    #[test]
    fn grad_accumulates_over_multiple_uses() {
        // f = sum(x + x) => df/dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 2, vec![1., 2.]));
        let y = tape.add(x, x);
        let s = tape.sum(y);
        let g = tape.backward(s);
        assert_eq!(g.get(x).unwrap().data(), &[2., 2.]);
    }

    #[test]
    fn unused_leaf_has_no_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(1.0));
        let y = tape.leaf(Tensor::scalar(2.0));
        let s = tape.sum(x);
        let g = tape.backward(s);
        assert!(g.get(y).is_none());
    }

    #[test]
    fn linear_matches_matmul_plus_bias_values_and_grads() {
        let xv = Tensor::from_fn(5, 3, |r, c| ((r * 3 + c) as f64 * 0.31).sin());
        let wv = Tensor::from_fn(3, 4, |r, c| ((r + 2 * c) as f64 * 0.17).cos());
        let bv = Tensor::from_fn(1, 4, |_, c| 0.05 * c as f64 - 0.1);

        let mut fused = Tape::new();
        let (x, w, b) = (
            fused.leaf(xv.clone()),
            fused.leaf(wv.clone()),
            fused.leaf(bv.clone()),
        );
        let y = fused.linear(x, w, b);
        let s = fused.sum(y);
        let gf = fused.backward(s);

        let mut split = Tape::new();
        let (x2, w2, b2) = (split.leaf(xv), split.leaf(wv), split.leaf(bv));
        let mm = split.matmul(x2, w2);
        let y2 = split.add_row(mm, b2);
        let s2 = split.sum(y2);
        let gs = split.backward(s2);

        assert!(fused.value(y).max_rel_diff(split.value(y2)) < 1e-15);
        for (a, b) in [(x, x2), (w, w2), (b, b2)] {
            assert_eq!(gf.get(a).unwrap().data(), gs.get(b).unwrap().data());
        }
    }

    #[test]
    fn gather_concat_matches_gather_then_concat() {
        let xv = Tensor::from_fn(6, 2, |r, c| (r * 2 + c) as f64);
        let ev = Tensor::from_fn(4, 3, |r, c| 100.0 + (r * 3 + c) as f64);
        let src = Arc::new(vec![0usize, 2, 4, 5]);
        let dst = Arc::new(vec![1usize, 3, 5, 0]);

        let mut fused = Tape::new();
        let (x, e) = (fused.leaf(xv.clone()), fused.leaf(ev.clone()));
        let cat = fused.gather_concat(&[
            (x, Some(Arc::clone(&src))),
            (x, Some(Arc::clone(&dst))),
            (e, None),
        ]);
        let sq = fused.mul(cat, cat);
        let s = fused.sum(sq);
        let gf = fused.backward(s);

        let mut split = Tape::new();
        let (x2, e2) = (split.leaf(xv), split.leaf(ev));
        let xi = split.gather_rows(x2, Arc::clone(&src));
        let xj = split.gather_rows(x2, Arc::clone(&dst));
        let cat2 = split.concat_cols(&[xi, xj, e2]);
        let sq2 = split.mul(cat2, cat2);
        let s2 = split.sum(sq2);
        let gs = split.backward(s2);

        assert_eq!(fused.value(cat).data(), split.value(cat2).data());
        assert_eq!(gf.get(x).unwrap().data(), gs.get(x2).unwrap().data());
        assert_eq!(gf.get(e).unwrap().data(), gs.get(e2).unwrap().data());
    }

    #[test]
    fn merge_rows_inverts_gather_split() {
        let xv = Tensor::from_fn(7, 2, |r, c| (10 * r + c) as f64);
        let lo = Arc::new(vec![0usize, 2, 4, 6]);
        let hi = Arc::new(vec![1usize, 3, 5]);
        let mut tape = Tape::new();
        let x = tape.leaf(xv.clone());
        let a = tape.gather_rows(x, Arc::clone(&lo));
        let b = tape.gather_rows(x, Arc::clone(&hi));
        let merged = tape.merge_rows(&[(a, Arc::clone(&lo)), (b, Arc::clone(&hi))], 7);
        assert_eq!(tape.value(merged).data(), xv.data());
        let sq = tape.mul(merged, merged);
        let s = tape.sum(sq);
        let g = tape.backward(s);
        let expect: Vec<f64> = xv.data().iter().map(|&v| 2.0 * v).collect();
        assert_eq!(g.get(x).unwrap().data(), expect.as_slice());
    }

    #[test]
    fn reset_tape_replays_bit_identically() {
        let run = |tape: &mut Tape| -> (Vec<f64>, Vec<f64>) {
            let x = tape.leaf(Tensor::from_fn(9, 4, |r, c| {
                ((r * 4 + c) as f64 * 0.3).sin()
            }));
            let w = tape.leaf(Tensor::from_fn(4, 4, |r, c| ((r + c) as f64 * 0.21).cos()));
            let b = tape.leaf(Tensor::zeros(1, 4));
            let h = tape.linear(x, w, b);
            let h = tape.elu(h);
            let sq = tape.mul(h, h);
            let s = tape.sum(sq);
            let out = tape.value(h).data().to_vec();
            let grads = tape.backward(s);
            let gx = grads.get(x).unwrap().data().to_vec();
            tape.recycle(grads);
            (out, gx)
        };
        let mut tape = Tape::new();
        let first = run(&mut tape);
        tape.reset();
        let second = run(&mut tape);
        assert_eq!(first, second);
        // And the pool actually retained buffers.
        tape.reset();
        assert!(tape.is_empty());
    }
}
