//! # cgnn-tensor
//!
//! Dense `f64` tensors and tape-based reverse-mode automatic differentiation
//! — the from-scratch replacement for the PyTorch autodiff stack used by the
//! paper *Scalable and Consistent Graph Neural Networks for Distributed
//! Mesh-based Data-driven Modeling* (SC24-W).
//!
//! The engine is deliberately small but complete for the paper's needs:
//!
//! * rank-2 tensors with fused-transpose matrix products,
//! * a [`Tape`] recording ops and replaying adjoints in reverse,
//! * gather / scatter-add / row-scale ops for neural message passing,
//! * ELU + LayerNorm + residual [`nn::Mlp`] blocks matching the paper's
//!   architecture description,
//! * a [`tape::CustomOp`] escape hatch through which `cgnn-core` implements
//!   **differentiable halo exchanges and all-reduces** (the Rust analogue of
//!   `torch.distributed.nn`),
//! * deterministic initializers and optimizers so all ranks hold identical
//!   parameters without broadcasts.

pub mod check;
pub mod init;
pub mod nn;
pub mod optim;
pub(crate) mod par;
pub mod serialize;
pub mod tape;
pub mod tensor;

pub use nn::{Activation, BoundParams, Linear, Mlp, ParamId, ParamSet};
pub use optim::{Adam, AdamState, Sgd};
pub use serialize::{load_checkpoint, load_params, restore_into, save_checkpoint, save_params};
pub use tape::{CustomOp, Gradients, Tape, VarId};
pub use tensor::Tensor;
