//! Dense row-major `f64` matrices.
//!
//! Everything flowing through the GNN is a rank-2 tensor: node attribute
//! matrices `[N, F]`, edge attribute matrices `[E, F]`, weight matrices
//! `[in, out]`, and `[1, 1]` scalars. A single concrete 2-D type keeps the
//! autodiff tape simple and the hot loops free of shape-polymorphism.
//!
//! The dominant kernels come in two forms: an allocating convenience
//! (`matmul`, `gather_rows`, ...) and a `*_into` variant writing into a
//! caller-provided tensor, which is what the [`crate::Tape`] workspace uses
//! to recycle buffers across training steps. All `*_into` kernels
//! parallelize over row chunks with the determinism rules of `par.rs`:
//! the result is bit-identical to the serial path at any worker count.

use std::fmt;

use crate::par::for_row_chunks;

/// A dense, row-major, heap-allocated `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Zero-filled `rows x cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { data, rows, cols }
    }

    /// Reshape a recycled buffer into a `rows x cols` tensor **without**
    /// clearing it: entries carry stale values from the buffer's previous
    /// life, so the caller must overwrite every element. The buffer's
    /// capacity is reused; it only reallocates when it grew too small.
    pub(crate) fn from_pool_uninit(rows: usize, cols: usize, mut buf: Vec<f64>) -> Self {
        let len = rows * cols;
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        Tensor {
            data: buf,
            rows,
            cols,
        }
    }

    /// Reshape a recycled buffer into a zero-filled `rows x cols` tensor.
    pub(crate) fn from_pool_zeroed(rows: usize, cols: usize, buf: Vec<f64>) -> Self {
        let mut t = Self::from_pool_uninit(rows, cols, buf);
        t.data.fill(0.0);
        t
    }

    /// 1x1 scalar tensor.
    pub fn scalar(value: f64) -> Self {
        Tensor {
            data: vec![value],
            rows: 1,
            cols: 1,
        }
    }

    /// Build row-by-row from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { data, rows, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Value of a 1x1 tensor.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// `self += other` elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// New tensor `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Tensor {
        let mut out = self.clone();
        out.scale_inplace(alpha);
        out
    }

    /// Overwrite `out` with a copy of `self` (shapes must already match).
    pub fn copy_into(&self, out: &mut Tensor) {
        assert_eq!(self.shape(), out.shape(), "copy_into shape mismatch");
        out.data.copy_from_slice(&self.data);
    }

    /// Elementwise sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute entry (0 for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Matrix product `self * rhs` (`[m,k] x [k,n] -> [m,n]`).
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::from_pool_uninit(self.rows, rhs.cols, Vec::new());
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into `out` (must be `[m, n]`).
    ///
    /// Register-blocked microkernel: output tiles of up to `4 x 8` are
    /// accumulated in stack registers across the whole inner dimension,
    /// then stored once — the matrices here are tall-skinny (`N x F` with
    /// small `F`), so the tile accumulators give the FMA units independent
    /// chains while each output element still sums its `k` terms in the
    /// serial order (bit-identical at any chunking or worker count). Rows
    /// are chunk-parallel per `par.rs`.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dims: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.shape(), (m, n), "matmul_into output shape");
        let a_data = &self.data;
        let b_data = &rhs.data;
        for_row_chunks(&mut out.data, n, |first_row, nrows, chunk| {
            gemm_rows(a_data, b_data, chunk, first_row, nrows, k, n, None, false);
        });
    }

    /// `self * rhs^T` (`[m,k] x [n,k] -> [m,n]`), without materializing the
    /// transpose. Used by matmul backward: `dA = dC * B^T`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::from_pool_uninit(self.rows, rhs.rows, Vec::new());
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] writing into `out` (must be `[m, n]`).
    ///
    /// Each output element is a length-`k` dot product accumulated in the
    /// serial order; four dots run as independent chains per iteration so
    /// the FMA pipeline stays full without reassociating any sum.
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt inner dims: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        assert_eq!(out.shape(), (m, n), "matmul_nt_into output shape");
        let a_data = &self.data;
        let b_data = &rhs.data;
        for_row_chunks(&mut out.data, n, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let a_row = &a_data[(first_row + i) * k..(first_row + i + 1) * k];
                let o_row = &mut chunk[i * n..(i + 1) * n];
                let mut j = 0;
                while j + 4 <= n {
                    let b0 = &b_data[j * k..(j + 1) * k];
                    let b1 = &b_data[(j + 1) * k..(j + 2) * k];
                    let b2 = &b_data[(j + 2) * k..(j + 3) * k];
                    let b3 = &b_data[(j + 3) * k..(j + 4) * k];
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                    for (p, &a) in a_row.iter().enumerate() {
                        s0 += a * b0[p];
                        s1 += a * b1[p];
                        s2 += a * b2[p];
                        s3 += a * b3[p];
                    }
                    o_row[j] = s0;
                    o_row[j + 1] = s1;
                    o_row[j + 2] = s2;
                    o_row[j + 3] = s3;
                    j += 4;
                }
                for (jj, o) in o_row.iter_mut().enumerate().skip(j) {
                    let b_row = &b_data[jj * k..(jj + 1) * k];
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
    }

    /// `self^T * rhs` (`[k,m]^T x [k,n] -> [m,n]`), without materializing the
    /// transpose. Used by matmul backward: `dB = A^T * dC`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::from_pool_uninit(self.cols, rhs.cols, Vec::new());
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] writing into `out` (must be `[m, n]`).
    ///
    /// The reduction runs over the shared `k` rows (`k` is the tall
    /// dimension here). Output tiles of up to `4 x 8` stay in registers
    /// across the **entire** `k` loop, so the huge operands stream through
    /// once per tile column-band while each output element still sums its
    /// `k` terms in the serial order — per-chunk (and per-tile) sequential
    /// accumulation, no atomics.
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn inner dims: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(out.shape(), (m, n), "matmul_tn_into output shape");
        let a_data = &self.data;
        let b_data = &rhs.data;
        for_row_chunks(&mut out.data, n, |first_row, nrows, chunk| {
            if k == 0 {
                chunk.fill(0.0);
                return;
            }
            let mut i0 = 0;
            while i0 + 4 <= nrows {
                let mut j0 = 0;
                while j0 + 8 <= n {
                    gemm_tn_tile_4x8(a_data, b_data, chunk, first_row, i0, j0, k, m, n);
                    j0 += 8;
                }
                while j0 < n {
                    for r in 0..4 {
                        gemm_tn_elem(a_data, b_data, chunk, first_row, i0 + r, j0, k, m, n);
                    }
                    j0 += 1;
                }
                i0 += 4;
            }
            while i0 < nrows {
                for j0 in 0..n {
                    gemm_tn_elem(a_data, b_data, chunk, first_row, i0, j0, k, m, n);
                }
                i0 += 1;
            }
        });
    }

    /// Explicit transpose. The backward pass materializes transposes of the
    /// *small* weight matrices (cheap) so the adjoint products run through
    /// the register-tiled [`Tensor::matmul_into`] kernel.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// [`Tensor::transpose`] writing into `out` (must be `[cols, rows]`).
    pub fn transpose_into(&self, out: &mut Tensor) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into output shape"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Concatenate tensors along columns; all must have the same row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::from_pool_uninit(rows, cols, Vec::new());
        for_row_chunks(&mut out.data, cols, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let o_row = &mut chunk[i * cols..(i + 1) * cols];
                let mut off = 0;
                for p in parts {
                    o_row[off..off + p.cols].copy_from_slice(p.row(first_row + i));
                    off += p.cols;
                }
            }
        });
        out
    }

    /// Gather rows: `out[i] = self[idx[i]]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut out = Tensor::from_pool_uninit(idx.len(), self.cols, Vec::new());
        self.gather_rows_into(idx, &mut out);
        out
    }

    /// [`Tensor::gather_rows`] writing into `out` (must be `[idx.len(), cols]`).
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Tensor) {
        assert_eq!(
            out.shape(),
            (idx.len(), self.cols),
            "gather_rows_into output shape"
        );
        let cols = self.cols;
        for_row_chunks(&mut out.data, cols, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let src = idx[first_row + i];
                debug_assert!(
                    src < self.rows,
                    "gather index {src} out of {} rows",
                    self.rows
                );
                // Element loop, not copy_from_slice: a per-row memcpy call
                // dominates these narrow (~8-wide) copies.
                for (o, &v) in chunk[i * cols..(i + 1) * cols]
                    .iter_mut()
                    .zip(self.row(src).iter())
                {
                    *o = v;
                }
            }
        });
    }

    /// Scatter-add rows: `out[idx[i]] += self[i]`, with `out` having
    /// `out_rows` rows.
    pub fn scatter_add_rows(&self, idx: &[usize], out_rows: usize) -> Tensor {
        let mut out = Tensor::from_pool_uninit(out_rows, self.cols, Vec::new());
        self.scatter_add_rows_into(idx, &mut out);
        out
    }

    /// [`Tensor::scatter_add_rows`] overwriting `out` (must be
    /// `[out_rows, cols]`; it is zeroed first, previous contents ignored).
    ///
    /// Parallel path: output rows are split into one contiguous range per
    /// worker; each range scans the input **in order** and accumulates the
    /// entries addressed to it. Every destination row therefore receives
    /// its contributions in exactly the serial input order — no atomics —
    /// which makes the result identical at any worker count.
    pub fn scatter_add_rows_into(&self, idx: &[usize], out: &mut Tensor) {
        assert_eq!(idx.len(), self.rows, "scatter index length mismatch");
        assert_eq!(out.cols, self.cols, "scatter_add_rows_into column mismatch");
        let cols = self.cols;
        let out_rows = out.rows;
        // Validate up front so serial and parallel paths fail identically
        // (the parallel range scan would otherwise silently drop an
        // out-of-range destination instead of panicking).
        assert!(
            idx.iter().all(|&d| d < out_rows),
            "scatter index out of {out_rows} rows"
        );
        let workers = rayon::current_num_threads();
        if workers <= 1 || out_rows < 2 * workers || cols == 0 {
            out.data.fill(0.0);
            for (i, &dst) in idx.iter().enumerate() {
                let src = self.row(i);
                let d = &mut out.data[dst * cols..(dst + 1) * cols];
                for (o, &s) in d.iter_mut().zip(src.iter()) {
                    *o += s;
                }
            }
            return;
        }
        use rayon::ParallelSliceMut;
        let range_rows = out_rows.div_ceil(workers);
        let src_data = &self.data;
        out.data
            .par_chunks_mut(range_rows * cols)
            .enumerate()
            .for_each(|(ci, chunk)| {
                chunk.fill(0.0);
                let lo = ci * range_rows;
                let hi = lo + chunk.len() / cols;
                for (i, &dst) in idx.iter().enumerate() {
                    if dst >= lo && dst < hi {
                        let src = &src_data[i * cols..(i + 1) * cols];
                        let d = &mut chunk[(dst - lo) * cols..(dst - lo + 1) * cols];
                        for (o, &s) in d.iter_mut().zip(src.iter()) {
                            *o += s;
                        }
                    }
                }
            });
    }

    /// Multiply row `i` by `weights[i]`.
    pub fn row_scale(&self, weights: &[f64]) -> Tensor {
        let mut out = Tensor::from_pool_uninit(self.rows, self.cols, Vec::new());
        self.row_scale_into(weights, &mut out);
        out
    }

    /// [`Tensor::row_scale`] writing into `out` (must match `self`'s shape).
    pub fn row_scale_into(&self, weights: &[f64], out: &mut Tensor) {
        assert_eq!(weights.len(), self.rows, "row_scale weight length mismatch");
        assert_eq!(self.shape(), out.shape(), "row_scale_into output shape");
        let cols = self.cols;
        for_row_chunks(&mut out.data, cols, |first_row, nrows, chunk| {
            for i in 0..nrows {
                let w = weights[first_row + i];
                let src = self.row(first_row + i);
                for (o, &s) in chunk[i * cols..(i + 1) * cols].iter_mut().zip(src.iter()) {
                    *o = w * s;
                }
            }
        });
    }

    /// Maximum relative difference against another tensor, where the
    /// denominator floors at 1 to keep near-zero entries well behaved.
    pub fn max_rel_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_rel_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs() / a.abs().max(b.abs()).max(1.0))
            .fold(0.0_f64, f64::max)
    }
}

/// Register-blocked row-band GEMM shared by [`Tensor::matmul_into`] and the
/// tape's fused linear kernel: computes `nrows` rows of `A * B` (rows
/// `first_row..` of `A`, `[k, n]` `B`) into `chunk`, with accumulator tiles
/// of up to `4 x 8` initialized to `bias` (or zero) and held in registers
/// across the whole `k` loop. Every output element accumulates its `k`
/// terms in the serial order, so tiling never changes a bit.
/// ELU with alpha = 1, the store-time post-op of the fused linear kernel.
#[inline(always)]
pub(crate) fn elu_scalar(x: f64) -> f64 {
    if x < 0.0 {
        x.exp() - 1.0
    } else {
        x
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_rows(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    first_row: usize,
    nrows: usize,
    k: usize,
    n: usize,
    bias: Option<&[f64]>,
    elu: bool,
) {
    if k == 0 {
        match bias {
            Some(bias) => {
                for i in 0..nrows {
                    chunk[i * n..(i + 1) * n].copy_from_slice(bias);
                }
            }
            None => chunk.fill(0.0),
        }
        if elu {
            for v in chunk[..nrows * n].iter_mut() {
                *v = elu_scalar(*v);
            }
        }
        return;
    }
    let mut i0 = 0;
    // Full 4-row bands go through the fixed-shape tile kernel (constant
    // loop bounds keep the accumulators in SIMD registers); the remainder
    // rows fall back to the generic row loop with identical per-element
    // arithmetic order.
    while i0 + 4 <= nrows {
        let mut j0 = 0;
        while j0 + 8 <= n {
            gemm_tile_4x8(a, b, chunk, first_row, i0, j0, k, n, bias, elu);
            j0 += 8;
        }
        if j0 < n {
            for r in 0..4 {
                gemm_row_generic(a, b, chunk, first_row, i0 + r, j0, n - j0, k, n, bias, elu);
            }
        }
        i0 += 4;
    }
    while i0 < nrows {
        gemm_row_generic(a, b, chunk, first_row, i0, 0, n, k, n, bias, elu);
        i0 += 1;
    }
}

/// Fixed `4 x 8` register tile of [`gemm_rows`]: accumulates 32 outputs in
/// registers over the whole `k` loop, each in serial term order.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_tile_4x8(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    first_row: usize,
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
    bias: Option<&[f64]>,
    elu: bool,
) {
    let mut acc = [[0.0f64; 8]; 4];
    if let Some(bias) = bias {
        let init: &[f64; 8] = bias[j0..j0 + 8].try_into().expect("bias tile");
        acc.fill(*init);
    }
    let a0 = (first_row + i0) * k;
    for p in 0..k {
        let b_row: &[f64; 8] = b[p * n + j0..p * n + j0 + 8]
            .try_into()
            .expect("j0 + 8 <= n: caller tiles n in full 8-wide blocks");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let a_val = a[a0 + r * k + p];
            for t in 0..8 {
                acc_row[t] += a_val * b_row[t];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let o = &mut chunk[(i0 + r) * n + j0..(i0 + r) * n + j0 + 8];
        if elu {
            for (ov, &av) in o.iter_mut().zip(acc_row.iter()) {
                *ov = elu_scalar(av);
            }
        } else {
            o.copy_from_slice(acc_row);
        }
    }
}

/// Fixed `4 x 8` register tile of [`Tensor::matmul_tn_into`]: the tile
/// stays in registers across the whole `k` reduction, each output element
/// accumulating its terms in the serial `p` order.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_tn_tile_4x8(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    first_row: usize,
    i0: usize,
    j0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    let mut acc = [[0.0f64; 8]; 4];
    let col = first_row + i0;
    for p in 0..k {
        let a_col: &[f64; 4] = a[p * m + col..p * m + col + 4]
            .try_into()
            .expect("col + 4 <= m: caller tiles m in full 4-high blocks");
        let b_row: &[f64; 8] = b[p * n + j0..p * n + j0 + 8]
            .try_into()
            .expect("j0 + 8 <= n: caller tiles n in full 8-wide blocks");
        for (acc_row, &a_val) in acc.iter_mut().zip(a_col.iter()) {
            for t in 0..8 {
                acc_row[t] += a_val * b_row[t];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        chunk[(i0 + r) * n + j0..(i0 + r) * n + j0 + 8].copy_from_slice(acc_row);
    }
}

/// Scalar edge element of [`Tensor::matmul_tn_into`], same term order.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_tn_elem(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    first_row: usize,
    i: usize,
    j: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    let mut acc = 0.0;
    for p in 0..k {
        acc += a[p * m + first_row + i] * b[p * n + j];
    }
    chunk[i * n + j] = acc;
}

/// Generic edge path of [`gemm_rows`]: one output row, columns
/// `[j0, j0 + width)`, same per-element accumulation order as the tiles.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_row_generic(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    first_row: usize,
    i: usize,
    j0: usize,
    width: usize,
    k: usize,
    n: usize,
    bias: Option<&[f64]>,
    elu: bool,
) {
    let o_row = &mut chunk[i * n + j0..i * n + j0 + width];
    match bias {
        Some(bias) => o_row.copy_from_slice(&bias[j0..j0 + width]),
        None => o_row.fill(0.0),
    }
    let a_row = &a[(first_row + i) * k..(first_row + i + 1) * k];
    for (p, &a_val) in a_row.iter().enumerate() {
        let b_row = &b[p * n + j0..p * n + j0 + width];
        for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
            *o += a_val * bv;
        }
    }
    if elu {
        for o in o_row.iter_mut() {
            *o = elu_scalar(*o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 1.0);
        let b = Tensor::from_fn(5, 3, |r, c| (r as f64 - c as f64) * 0.25);
        let nt = a.matmul_nt(&b);
        let reference = a.matmul(&b.transpose());
        assert!(nt.max_rel_diff(&reference) < 1e-14);

        let c = Tensor::from_fn(4, 5, |r, c| ((r + c) as f64).sin());
        let tn = a.matmul_tn(&c);
        let reference = a.transpose().matmul(&c);
        assert!(tn.max_rel_diff(&reference) < 1e-14);
    }

    #[test]
    fn gather_scatter_roundtrip_sums() {
        // scatter_add(gather(x, idx), idx) multiplies each row by its
        // multiplicity in idx.
        let x = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let idx = vec![0, 1, 1, 2, 2, 2];
        let g = x.gather_rows(&idx);
        let s = g.scatter_add_rows(&idx, 3);
        for r in 0..3 {
            let mult = (r + 1) as f64;
            for c in 0..2 {
                assert_eq!(s.get(r, c), mult * x.get(r, c));
            }
        }
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(2, 1, vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.data(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn row_scale_scales_rows() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let s = a.row_scale(&[2.0, 0.5]);
        assert_eq!(s.data(), &[2., 4., 1.5, 2.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }

    #[test]
    fn into_variants_reuse_capacity_and_match() {
        let a = Tensor::from_fn(37, 5, |r, c| ((r * 5 + c) as f64 * 0.3).sin());
        let b = Tensor::from_fn(5, 9, |r, c| ((r + 2 * c) as f64 * 0.17).cos());
        let fresh = a.matmul(&b);
        let mut out = Tensor::from_pool_uninit(37, 9, vec![7.0; 1000]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn scatter_parallel_matches_serial_order() {
        let x = Tensor::from_fn(101, 3, |r, c| ((r * 3 + c) as f64 * 0.71).sin());
        let idx: Vec<usize> = (0..101).map(|i| (i * 13) % 17).collect();
        let serial = rayon::with_num_threads(1, || x.scatter_add_rows(&idx, 17));
        for threads in [2, 3, 8] {
            let par = rayon::with_num_threads(threads, || x.scatter_add_rows(&idx, 17));
            assert_eq!(par, serial, "threads={threads}");
        }
    }
}
