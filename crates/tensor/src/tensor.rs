//! Dense row-major `f64` matrices.
//!
//! Everything flowing through the GNN is a rank-2 tensor: node attribute
//! matrices `[N, F]`, edge attribute matrices `[E, F]`, weight matrices
//! `[in, out]`, and `[1, 1]` scalars. A single concrete 2-D type keeps the
//! autodiff tape simple and the hot loops free of shape-polymorphism.

use std::fmt;

/// A dense, row-major, heap-allocated `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Zero-filled `rows x cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Tensor {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { data, rows, cols }
    }

    /// 1x1 scalar tensor.
    pub fn scalar(value: f64) -> Self {
        Tensor {
            data: vec![value],
            rows: 1,
            cols: 1,
        }
    }

    /// Build row-by-row from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { data, rows, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Value of a 1x1 tensor.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// `self += other` elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// New tensor `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Tensor {
        let mut out = self.clone();
        out.scale_inplace(alpha);
        out
    }

    /// Elementwise sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute entry (0 for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Matrix product `self * rhs` (`[m,k] x [k,n] -> [m,n]`).
    ///
    /// Plain ikj loop: the inner dimension stays cache-resident and the
    /// compiler auto-vectorizes the row updates. Matrix sizes in this code
    /// base are tall-skinny (`N x F` with small `F`), where this ordering is
    /// near-optimal without blocking.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dims: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                let b_row = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            data: out,
            rows: m,
            cols: n,
        }
    }

    /// `self * rhs^T` (`[m,k] x [n,k] -> [m,n]`), without materializing the
    /// transpose. Used by matmul backward: `dA = dC * B^T`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt inner dims: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Tensor {
            data: out,
            rows: m,
            cols: n,
        }
    }

    /// `self^T * rhs` (`[k,m]^T x [k,n] -> [m,n]`), without materializing the
    /// transpose. Used by matmul backward: `dB = A^T * dC`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn inner dims: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &rhs.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            data: out,
            rows: m,
            cols: n,
        }
    }

    /// Explicit transpose (rarely needed; backward passes use the fused
    /// `matmul_nt`/`matmul_tn` variants instead).
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Concatenate tensors along columns; all must have the same row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let o_row = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                o_row[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Gather rows: `out[i] = self[idx[i]]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (i, &src) in idx.iter().enumerate() {
            debug_assert!(
                src < self.rows,
                "gather index {src} out of {} rows",
                self.rows
            );
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-add rows: `out[idx[i]] += self[i]`, with `out` having
    /// `out_rows` rows.
    pub fn scatter_add_rows(&self, idx: &[usize], out_rows: usize) -> Tensor {
        assert_eq!(idx.len(), self.rows, "scatter index length mismatch");
        let mut out = Tensor::zeros(out_rows, self.cols);
        for (i, &dst) in idx.iter().enumerate() {
            debug_assert!(dst < out_rows, "scatter index {dst} out of {out_rows} rows");
            let src = self.row(i);
            let d = out.row_mut(dst);
            for (o, &s) in d.iter_mut().zip(src.iter()) {
                *o += s;
            }
        }
        out
    }

    /// Multiply row `i` by `weights[i]`.
    pub fn row_scale(&self, weights: &[f64]) -> Tensor {
        assert_eq!(weights.len(), self.rows, "row_scale weight length mismatch");
        let mut out = self.clone();
        for (r, &w) in weights.iter().enumerate() {
            for v in out.row_mut(r) {
                *v *= w;
            }
        }
        out
    }

    /// Maximum relative difference against another tensor, where the
    /// denominator floors at 1 to keep near-zero entries well behaved.
    pub fn max_rel_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_rel_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs() / a.abs().max(b.abs()).max(1.0))
            .fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 1.0);
        let b = Tensor::from_fn(5, 3, |r, c| (r as f64 - c as f64) * 0.25);
        let nt = a.matmul_nt(&b);
        let reference = a.matmul(&b.transpose());
        assert!(nt.max_rel_diff(&reference) < 1e-14);

        let c = Tensor::from_fn(4, 5, |r, c| ((r + c) as f64).sin());
        let tn = a.matmul_tn(&c);
        let reference = a.transpose().matmul(&c);
        assert!(tn.max_rel_diff(&reference) < 1e-14);
    }

    #[test]
    fn gather_scatter_roundtrip_sums() {
        // scatter_add(gather(x, idx), idx) multiplies each row by its
        // multiplicity in idx.
        let x = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let idx = vec![0, 1, 1, 2, 2, 2];
        let g = x.gather_rows(&idx);
        let s = g.scatter_add_rows(&idx, 3);
        for r in 0..3 {
            let mult = (r + 1) as f64;
            for c in 0..2 {
                assert_eq!(s.get(r, c), mult * x.get(r, c));
            }
        }
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(2, 1, vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.data(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn row_scale_scales_rows() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let s = a.row_scale(&[2.0, 0.5]);
        assert_eq!(s.data(), &[2., 4., 1.5, 2.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }
}
