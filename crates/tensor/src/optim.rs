//! First-order optimizers operating on a [`ParamSet`].
//!
//! Because the consistent formulation makes gradients identical on every
//! rank (paper Eq. 3), running the same deterministic optimizer step on each
//! rank keeps parameters bit-identical without a broadcast.

use crate::nn::ParamSet;
use crate::tensor::Tensor;

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f64,
    pub momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update; `grads[i]` must match `params.tensors()[i]`.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "sgd grad count mismatch");
        if self.velocity.is_empty() && self.momentum != 0.0 {
            self.velocity = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
        }
        for (i, t) in params.tensors_mut().iter_mut().enumerate() {
            if self.momentum != 0.0 {
                let v = &mut self.velocity[i];
                v.scale_inplace(self.momentum);
                v.add_assign(&grads[i]);
                t.axpy(-self.lr, v);
            } else {
                t.axpy(-self.lr, &grads[i]);
            }
        }
    }
}

/// The mutable state of an [`Adam`] optimizer: step counter and first/second
/// moment estimates. Snapshot with [`Adam::state`], reinstall with
/// [`Adam::set_state`] — together with the parameters this is everything a
/// training run needs to resume *bit-for-bit* (see `cgnn-tensor::serialize`
/// checkpointing).
#[derive(Debug, Clone, Default)]
pub struct AdamState {
    /// Number of steps taken (drives bias correction).
    pub t: u64,
    /// First-moment estimates, one per parameter tensor.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, one per parameter tensor.
    pub v: Vec<Tensor>,
}

impl AdamState {
    /// Check that this state can drive an optimizer over `params`: either
    /// fresh (no moments yet) or exactly one moment pair per parameter
    /// tensor, each with the parameter's shape. A state that fails this
    /// would panic (count mismatch) or silently truncate updates (shape
    /// mismatch) inside [`Adam::step`]; callers restoring untrusted
    /// checkpoints validate here first.
    pub fn validate_for(&self, params: &ParamSet) -> Result<(), String> {
        if self.m.len() != self.v.len() {
            return Err(format!(
                "adam state has {} first moments but {} second moments",
                self.m.len(),
                self.v.len()
            ));
        }
        if self.m.is_empty() {
            return Ok(());
        }
        if self.m.len() != params.len() {
            return Err(format!(
                "adam state has {} moment pairs for {} parameters",
                self.m.len(),
                params.len()
            ));
        }
        for (i, t) in params.tensors().iter().enumerate() {
            for (kind, moment) in [("m", &self.m[i]), ("v", &self.v[i])] {
                if moment.shape() != t.shape() {
                    return Err(format!(
                        "adam {kind}[{i}] shape {:?} does not match parameter shape {:?}",
                        moment.shape(),
                        t.shape()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used for the
/// paper's training consistency demonstration (Fig. 6 right).
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of optimizer steps taken so far (restored along with the
    /// moments by [`Adam::set_state`]). Cheap — no state is cloned.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer state (step count + moment estimates). Before
    /// the first step the moments are empty, which round-trips correctly:
    /// they are lazily initialized on the next step.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Reinstall a snapshot taken by [`Adam::state`]; the next step resumes
    /// exactly where the snapshot left off.
    pub fn set_state(&mut self, state: AdamState) {
        assert_eq!(
            state.m.len(),
            state.v.len(),
            "adam state moment count mismatch"
        );
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    pub fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "adam grad count mismatch");
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
            self.v = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, t) in params.tensors_mut().iter_mut().enumerate() {
            let g = &grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mj, vj), (&gj, tj)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data().iter().zip(t.data_mut().iter_mut()))
            {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
                let mhat = *mj / bc1;
                let vhat = *vj / bc2;
                *tj -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ParamSet;

    fn quadratic_grads(params: &ParamSet) -> Vec<Tensor> {
        // f = 0.5 * |theta|^2 -> grad = theta
        params.tensors().to_vec()
    }

    #[test]
    fn sgd_decays_quadratic() {
        let mut params = ParamSet::new();
        params.register("x", Tensor::from_vec(1, 2, vec![1.0, -2.0]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let g = quadratic_grads(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.tensors()[0].max_abs() < 1e-4);
    }

    #[test]
    fn adam_decays_quadratic() {
        let mut params = ParamSet::new();
        params.register("x", Tensor::from_vec(1, 2, vec![3.0, -1.5]));
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let g = quadratic_grads(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.tensors()[0].max_abs() < 1e-3);
    }

    #[test]
    fn adam_state_roundtrip_resumes_exactly() {
        let mut params = ParamSet::new();
        params.register("x", Tensor::from_vec(1, 3, vec![0.5, 0.25, -0.75]));
        let mut opt = Adam::new(0.01);
        for _ in 0..5 {
            let g = quadratic_grads(&params);
            opt.step(&mut params, &g);
        }
        // Snapshot mid-run, keep training the original.
        let ckpt_params = params.flatten();
        let ckpt_state = opt.state();
        for _ in 0..5 {
            let g = quadratic_grads(&params);
            opt.step(&mut params, &g);
        }
        // Resume a fresh optimizer from the snapshot: bit-identical tail.
        let mut resumed = ParamSet::new();
        resumed.register("x", Tensor::from_vec(1, 3, vec![0.0; 3]));
        resumed.unflatten(&ckpt_params);
        let mut opt2 = Adam::new(0.01);
        opt2.set_state(ckpt_state);
        for _ in 0..5 {
            let g = quadratic_grads(&resumed);
            opt2.step(&mut resumed, &g);
        }
        assert_eq!(params.flatten(), resumed.flatten());
    }

    #[test]
    fn adam_is_deterministic() {
        let run = || {
            let mut params = ParamSet::new();
            params.register("x", Tensor::from_vec(1, 3, vec![0.5, 0.25, -0.75]));
            let mut opt = Adam::new(0.01);
            for _ in 0..10 {
                let g = quadratic_grads(&params);
                opt.step(&mut params, &g);
            }
            params.flatten()
        };
        assert_eq!(run(), run());
    }
}
