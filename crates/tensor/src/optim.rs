//! First-order optimizers operating on a [`ParamSet`].
//!
//! Because the consistent formulation makes gradients identical on every
//! rank (paper Eq. 3), running the same deterministic optimizer step on each
//! rank keeps parameters bit-identical without a broadcast.

use crate::nn::ParamSet;
use crate::tensor::Tensor;

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f64,
    pub momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update; `grads[i]` must match `params.tensors()[i]`.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "sgd grad count mismatch");
        if self.velocity.is_empty() && self.momentum != 0.0 {
            self.velocity = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
        }
        for (i, t) in params.tensors_mut().iter_mut().enumerate() {
            if self.momentum != 0.0 {
                let v = &mut self.velocity[i];
                v.scale_inplace(self.momentum);
                v.add_assign(&grads[i]);
                t.axpy(-self.lr, v);
            } else {
                t.axpy(-self.lr, &grads[i]);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used for the
/// paper's training consistency demonstration (Fig. 6 right).
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn step(&mut self, params: &mut ParamSet, grads: &[Tensor]) {
        assert_eq!(grads.len(), params.len(), "adam grad count mismatch");
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
            self.v = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, t) in params.tensors_mut().iter_mut().enumerate() {
            let g = &grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mj, vj), (&gj, tj)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data().iter().zip(t.data_mut().iter_mut()))
            {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
                let mhat = *mj / bc1;
                let vhat = *vj / bc2;
                *tj -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ParamSet;

    fn quadratic_grads(params: &ParamSet) -> Vec<Tensor> {
        // f = 0.5 * |theta|^2 -> grad = theta
        params.tensors().to_vec()
    }

    #[test]
    fn sgd_decays_quadratic() {
        let mut params = ParamSet::new();
        params.register("x", Tensor::from_vec(1, 2, vec![1.0, -2.0]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let g = quadratic_grads(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.tensors()[0].max_abs() < 1e-4);
    }

    #[test]
    fn adam_decays_quadratic() {
        let mut params = ParamSet::new();
        params.register("x", Tensor::from_vec(1, 2, vec![3.0, -1.5]));
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let g = quadratic_grads(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.tensors()[0].max_abs() < 1e-3);
    }

    #[test]
    fn adam_is_deterministic() {
        let run = || {
            let mut params = ParamSet::new();
            params.register("x", Tensor::from_vec(1, 3, vec![0.5, 0.25, -0.75]));
            let mut opt = Adam::new(0.01);
            for _ in 0..10 {
                let g = quadratic_grads(&params);
                opt.step(&mut params, &g);
            }
            params.flatten()
        };
        assert_eq!(run(), run());
    }
}
