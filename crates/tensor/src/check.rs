//! Finite-difference gradient checking utilities.
//!
//! Used by this crate's own op tests and re-used by `cgnn-core` to verify
//! that distributed gradients (Eq. 3 of the paper) match both the R=1 tape
//! and central finite differences.

use crate::nn::ParamSet;

/// Central-difference gradient of `f` with respect to every scalar in
/// `params`, returned flattened in registration order.
pub fn finite_difference_grad(
    params: &mut ParamSet,
    eps: f64,
    mut f: impl FnMut(&ParamSet) -> f64,
) -> Vec<f64> {
    let flat = params.flatten();
    let mut grad = vec![0.0; flat.len()];
    for i in 0..flat.len() {
        let mut plus = flat.clone();
        plus[i] += eps;
        params.unflatten(&plus);
        let fp = f(params);

        let mut minus = flat.clone();
        minus[i] -= eps;
        params.unflatten(&minus);
        let fm = f(params);

        grad[i] = (fp - fm) / (2.0 * eps);
    }
    params.unflatten(&flat);
    grad
}

/// Maximum relative error between two flat gradient vectors, flooring the
/// denominator to avoid blow-ups on tiny entries.
pub fn max_rel_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "gradient length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-6))
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Mlp, ParamSet};
    use crate::tape::Tape;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// End-to-end gradient check of an MLP with ELU + LayerNorm against
    /// central finite differences.
    #[test]
    fn mlp_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(&mut params, "m", 3, 6, 2, 1, true, &mut rng);
        let x = Tensor::from_fn(4, 3, |r, c| ((r * 3 + c) as f64 * 0.37).sin());

        let eval = |p: &ParamSet| {
            let mut tape = Tape::new();
            let bound = p.bind(&mut tape);
            let xv = tape.leaf(x.clone());
            let y = mlp.forward(&mut tape, &bound, xv);
            let sq = tape.mul(y, y);
            let s = tape.sum(sq);
            tape.value(s).item()
        };

        // Autodiff gradient.
        let mut tape = Tape::new();
        let bound = params.bind(&mut tape);
        let xv = tape.leaf(x.clone());
        let y = mlp.forward(&mut tape, &bound, xv);
        let sq = tape.mul(y, y);
        let s = tape.sum(sq);
        let grads = tape.backward(s);
        let mut auto_flat = Vec::new();
        for (i, _) in params.tensors().iter().enumerate() {
            let g = grads
                .get(bound.var(crate::nn::ParamId(i)))
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(1, 1));
            auto_flat.extend_from_slice(g.data());
        }

        let fd = finite_difference_grad(&mut params, 1e-5, eval);
        assert_eq!(auto_flat.len(), fd.len());
        // Central differences carry O(eps^2) truncation error plus
        // cancellation noise through LayerNorm; 5e-4 relative is the
        // expected accuracy floor here.
        let err = max_rel_error(&auto_flat, &fd);
        assert!(err < 5e-4, "max relative error {err}");
    }

    /// Gradient check through gather -> row_scale -> scatter, the skeleton
    /// of the paper's consistent edge aggregation (Eq. 4b).
    #[test]
    fn aggregation_pipeline_gradients() {
        let mut params = ParamSet::new();
        let x0 = Tensor::from_fn(3, 2, |r, c| 0.3 * (r as f64) - 0.2 * (c as f64) + 0.1);
        params.register("x", x0);
        let idx_src = Arc::new(vec![0usize, 1, 2, 0]);
        let idx_dst = Arc::new(vec![1usize, 1, 0, 2]);
        let w = Arc::new(vec![1.0, 0.5, 0.5, 1.0]);

        let eval = |p: &ParamSet| {
            let mut tape = Tape::new();
            let bound = p.bind(&mut tape);
            let x = bound.var(crate::nn::ParamId(0));
            let g = tape.gather_rows(x, idx_src.clone());
            let gs = tape.row_scale(g, w.clone());
            let a = tape.scatter_add_rows(gs, idx_dst.clone(), 3);
            let sq = tape.mul(a, a);
            let s = tape.sum(sq);
            tape.value(s).item()
        };

        let mut tape = Tape::new();
        let bound = params.bind(&mut tape);
        let x = bound.var(crate::nn::ParamId(0));
        let g = tape.gather_rows(x, idx_src.clone());
        let gs = tape.row_scale(g, w.clone());
        let a = tape.scatter_add_rows(gs, idx_dst.clone(), 3);
        let sq = tape.mul(a, a);
        let s = tape.sum(sq);
        let grads = tape.backward(s);
        let auto: Vec<f64> = grads.get(x).unwrap().data().to_vec();

        let fd = finite_difference_grad(&mut params, 1e-6, eval);
        let err = max_rel_error(&auto, &fd);
        assert!(err < 1e-6, "max relative error {err}");
    }
}
