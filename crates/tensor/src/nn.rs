//! Neural-network building blocks: parameter store, linear layers, and the
//! residual MLP used throughout the paper's GNN (ELU activations + layer
//! normalization, per Sec. III of the paper).

use std::sync::Arc;

use rand::Rng;

use crate::init::xavier_uniform;
use crate::tape::{Tape, VarId};
use crate::tensor::Tensor;

/// Index of a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// Owns all trainable tensors of a model.
///
/// Modules hold [`ParamId`]s; before each forward pass the set is bound to a
/// fresh tape with [`ParamSet::bind`], which registers every parameter as a
/// leaf and returns the `VarId` mapping.
#[derive(Default)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter tensor under a diagnostic name.
    pub fn register(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        self.tensors.push(t);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters (the "trainable parameters" count
    /// of the paper's Table I).
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    pub fn tensors_mut(&mut self) -> &mut [Tensor] {
        &mut self.tensors
    }

    /// Register every parameter on `tape` as a leaf; returns the binding.
    /// Parameter values are copied into the tape's recycled buffers, so
    /// re-binding on a [`Tape::reset`] tape allocates nothing.
    pub fn bind(&self, tape: &mut Tape) -> BoundParams {
        let ids = self.tensors.iter().map(|t| tape.leaf_copy(t)).collect();
        BoundParams { ids }
    }

    /// Flatten all parameters into a single vector (for checksums/tests).
    pub fn flatten(&self) -> Vec<f64> {
        // detlint: allow(hotpath-alloc, "checkpoint/diagnostic path, called once per save or assertion — not the per-step training loop")
        let mut out = Vec::with_capacity(self.num_scalars());
        for t in &self.tensors {
            out.extend_from_slice(t.data());
        }
        out
    }

    /// Overwrite all parameters from a flat vector (inverse of `flatten`).
    pub fn unflatten(&mut self, flat: &[f64]) {
        let mut off = 0;
        for t in &mut self.tensors {
            let n = t.len();
            t.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
        assert_eq!(off, flat.len(), "unflatten length mismatch");
    }
}

/// Per-pass mapping from [`ParamId`] to tape [`VarId`].
pub struct BoundParams {
    ids: Vec<VarId>,
}

impl BoundParams {
    pub fn var(&self, id: ParamId) -> VarId {
        self.ids[id.0]
    }

    pub fn vars(&self) -> &[VarId] {
        &self.ids
    }
}

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.register(format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = params.register(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, tape: &mut Tape, bound: &BoundParams, x: VarId) -> VarId {
        tape.linear(x, bound.var(self.w), bound.var(self.b))
    }

    pub fn num_scalars(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }
}

/// Activation function selector for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// ELU with alpha = 1 (the paper's choice).
    #[default]
    Elu,
    Tanh,
}

/// Multi-layer perceptron: `in -> h -> ... -> h -> out` with an activation
/// after every linear except the last, optional layer normalization on the
/// output, and an optional residual connection (applied by the caller when
/// `in_dim == out_dim`, matching the paper's "MLPs leverage residual
/// connections with layer normalization and ELU activation functions").
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    layer_norm: Option<(ParamId, ParamId)>,
    activation: Activation,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Mlp {
    /// `n_hidden` is the number of `h -> h` interior linears, so the MLP has
    /// `n_hidden + 2` linear layers in total.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        n_hidden: usize,
        layer_norm: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let mut layers = Vec::with_capacity(n_hidden + 2);
        layers.push(Linear::new(
            params,
            &format!("{name}.lin0"),
            in_dim,
            hidden,
            rng,
        ));
        for i in 0..n_hidden {
            layers.push(Linear::new(
                params,
                &format!("{name}.lin{}", i + 1),
                hidden,
                hidden,
                rng,
            ));
        }
        layers.push(Linear::new(
            params,
            &format!("{name}.lin{}", n_hidden + 1),
            hidden,
            out_dim,
            rng,
        ));
        let ln = layer_norm.then(|| {
            let gamma = params.register(format!("{name}.ln.gamma"), Tensor::full(1, out_dim, 1.0));
            let beta = params.register(format!("{name}.ln.beta"), Tensor::zeros(1, out_dim));
            (gamma, beta)
        });
        Mlp {
            layers,
            layer_norm: ln,
            activation: Activation::Elu,
            in_dim,
            out_dim,
        }
    }

    pub fn with_activation(mut self, act: Activation) -> Self {
        self.activation = act;
        self
    }

    pub fn forward(&self, tape: &mut Tape, bound: &BoundParams, x: VarId) -> VarId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            if i != last && self.activation == Activation::Elu {
                // Hidden ELU layers run as the fused linear+ELU kernel.
                h = tape.linear_elu(h, bound.var(layer.w), bound.var(layer.b));
                continue;
            }
            h = layer.forward(tape, bound, h);
            if i != last {
                h = match self.activation {
                    Activation::Elu => tape.elu(h),
                    Activation::Tanh => tape.tanh(h),
                };
            }
        }
        if let Some((gamma, beta)) = self.layer_norm {
            h = tape.layer_norm(h, bound.var(gamma), bound.var(beta), 1e-5);
        }
        h
    }

    pub fn num_scalars(&self) -> usize {
        let lin: usize = self.layers.iter().map(Linear::num_scalars).sum();
        lin + if self.layer_norm.is_some() {
            2 * self.out_dim
        } else {
            0
        }
    }
}

/// Convenience: build a constant row-index vector shared across passes.
pub fn shared_indices(idx: Vec<usize>) -> Arc<Vec<usize>> {
    Arc::new(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_param_count() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut params, "l", 3, 8, &mut rng);
        assert_eq!(lin.num_scalars(), 3 * 8 + 8);
        assert_eq!(params.num_scalars(), 32);
    }

    #[test]
    fn mlp_param_count_matches_registration() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut params, "m", 7, 8, 8, 2, true, &mut rng);
        // 8*(7+1) + 2*(8*9) + 8*9 + 2*8 = 64 + 144 + 72 + 16
        assert_eq!(
            mlp.num_scalars(),
            8 * 7 + 8 + 2 * (8 * 8 + 8) + (8 * 8 + 8) + 16
        );
        assert_eq!(params.num_scalars(), mlp.num_scalars());
    }

    #[test]
    fn mlp_forward_shapes() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut params, "m", 4, 16, 2, 1, true, &mut rng);
        let mut tape = Tape::new();
        let bound = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(5, 4, |r, c| (r + c) as f64 * 0.1));
        let y = mlp.forward(&mut tape, &bound, x);
        assert_eq!(tape.value(y).shape(), (5, 2));
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Mlp::new(&mut params, "m", 3, 4, 3, 0, false, &mut rng);
        let flat = params.flatten();
        let mut params2 = ParamSet::new();
        let mut rng2 = StdRng::seed_from_u64(3);
        let _ = Mlp::new(&mut params2, "m", 3, 4, 3, 0, false, &mut rng2);
        params2.unflatten(&flat);
        assert_eq!(params2.flatten(), flat);
    }
}
