//! Parameter and training-state checkpointing: a small self-describing
//! binary format for [`ParamSet`]s (and, for exact resume, the Adam
//! optimizer state) so trained models can be saved and restored. Since all
//! ranks hold bit-identical replicas, rank 0 saving once is a complete
//! checkpoint of a distributed run.
//!
//! Two container kinds:
//! * **params** (`save_params`/`load_params`): magic `CGNN`, version u32,
//!   tensor count u32, then per tensor: name length + UTF-8 name, rows
//!   u64, cols u64, little-endian f64 data.
//! * **training checkpoint** (`save_checkpoint`/`load_checkpoint`): magic
//!   `CGNC`, version u32, an embedded params container, then the Adam
//!   state — step count u64, moment count u32, and the first/second moment
//!   tensors (rows u64, cols u64, f64 data each), then (version ≥ 2) a
//!   trailing FNV-1a-64 checksum of every preceding byte. Restoring both
//!   makes a resumed run **bit-identical** to the uninterrupted one.
//!
//! Corruption is a *typed* failure, never a panic: a truncated file
//! surfaces as `UnexpectedEof`, a flipped bit as a checksum mismatch
//! (`InvalidData`), and implausible length fields (a flipped bit in a
//! count) are bounds-checked before any allocation. Version-1 training
//! checkpoints (no trailing checksum) remain readable.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::nn::ParamSet;
use crate::optim::AdamState;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"CGNN";
const VERSION: u32 = 1;
const CKPT_MAGIC: &[u8; 4] = b"CGNC";
const CKPT_VERSION: u32 = 2;
/// Oldest training-checkpoint version still readable (pre-checksum).
const CKPT_MIN_VERSION: u32 = 1;

/// Bounds on length fields, enforced *before* allocating: a corrupted
/// count must become an `InvalidData` error, not an OOM abort.
const MAX_TENSOR_ELEMS: u64 = 1 << 26;
const MAX_NAME_LEN: u32 = 1 << 16;
const MAX_ITEM_COUNT: u32 = 1 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A writer that FNV-1a-hashes every byte passing through it.
struct HashingWriter<W: Write> {
    inner: W,
    digest: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            digest: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.digest = fnv1a(self.digest, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that FNV-1a-hashes every byte passing through it.
struct HashingReader<R: Read> {
    inner: R,
    digest: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            digest: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest = fnv1a(self.digest, &buf[..n]);
        Ok(n)
    }
}

/// Serialize a parameter set to a writer.
pub fn write_params<W: Write>(params: &ParamSet, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for i in 0..params.len() {
        let id = crate::nn::ParamId(i);
        let name = params.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        write_tensor(params.get(id), &mut w)?;
    }
    Ok(())
}

fn write_tensor<W: Write>(t: &Tensor, w: &mut W) -> io::Result<()> {
    w.write_all(&(t.rows() as u64).to_le_bytes())?;
    w.write_all(&(t.cols() as u64).to_le_bytes())?;
    for v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_tensor<R: Read>(r: &mut R) -> io::Result<Tensor> {
    let rows = read_u64(r)?;
    let cols = read_u64(r)?;
    let elems = rows
        .checked_mul(cols)
        .filter(|&n| n <= MAX_TENSOR_ELEMS)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible tensor shape {rows}x{cols} (corrupted checkpoint?)"),
            )
        })?;
    let mut data = Vec::with_capacity(elems as usize);
    let mut buf = [0u8; 8];
    for _ in 0..elems {
        r.read_exact(&mut buf)?;
        data.push(f64::from_le_bytes(buf));
    }
    Ok(Tensor::from_vec(rows as usize, cols as usize, data))
}

/// Deserialize a parameter set from a reader.
pub fn read_params<R: Read>(mut r: R) -> io::Result<ParamSet> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a cgnn checkpoint",
        ));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = bounded(read_u32(&mut r)?, MAX_ITEM_COUNT, "parameter count")? as usize;
    let mut params = ParamSet::new();
    for _ in 0..count {
        let name_len = bounded(read_u32(&mut r)?, MAX_NAME_LEN, "parameter name length")? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        params.register(name, read_tensor(&mut r)?);
    }
    Ok(params)
}

/// Serialize a full training checkpoint (parameters + Adam state) to a
/// writer, appending an FNV-1a-64 checksum of every preceding byte so
/// torn writes and flipped bits are detectable at load time.
pub fn write_checkpoint<W: Write>(params: &ParamSet, opt: &AdamState, w: W) -> io::Result<()> {
    assert_eq!(opt.m.len(), opt.v.len(), "adam state moment count mismatch");
    let mut w = HashingWriter::new(w);
    w.write_all(CKPT_MAGIC)?;
    w.write_all(&CKPT_VERSION.to_le_bytes())?;
    write_params(params, &mut w)?;
    w.write_all(&opt.t.to_le_bytes())?;
    w.write_all(&(opt.m.len() as u32).to_le_bytes())?;
    for t in opt.m.iter().chain(opt.v.iter()) {
        write_tensor(t, &mut w)?;
    }
    let digest = w.digest;
    w.write_all(&digest.to_le_bytes())?;
    w.flush()
}

/// Deserialize a full training checkpoint from a reader, verifying the
/// trailing checksum (containers written at version ≥ 2). Any corruption
/// — truncation, flipped bits, implausible lengths — is an `Err`, never a
/// panic.
pub fn read_checkpoint<R: Read>(r: R) -> io::Result<(ParamSet, AdamState)> {
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != CKPT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a cgnn training checkpoint",
        ));
    }
    let version = read_u32(&mut r)?;
    if !(CKPT_MIN_VERSION..=CKPT_VERSION).contains(&version) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let params = read_params(&mut r)?;
    let t = read_u64(&mut r)?;
    let count = bounded(read_u32(&mut r)?, MAX_ITEM_COUNT, "moment count")? as usize;
    let mut moments = Vec::with_capacity(2 * count);
    for _ in 0..2 * count {
        moments.push(read_tensor(&mut r)?);
    }
    let v = moments.split_off(count);
    if version >= 2 {
        // Snapshot the digest before consuming the trailer: the checksum
        // covers exactly the bytes that precede it.
        let computed = r.digest;
        let stored = read_u64(&mut r)?;
        if stored != computed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint checksum mismatch: stored {stored:#018x}, \
                     computed {computed:#018x} (corrupted file)"
                ),
            ));
        }
    }
    Ok((params, AdamState { t, m: moments, v }))
}

/// Reject a length field exceeding `max` with a typed error naming `what`.
fn bounded(value: u32, max: u32, what: &str) -> io::Result<u32> {
    if value > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible {what} {value} (corrupted checkpoint?)"),
        ));
    }
    Ok(value)
}

/// Write `bytes` to `path` atomically: serialize-to-buffer callers stage
/// the payload in a dot-prefixed sibling temp file, then `rename` it over
/// the target. Readers (and concurrent writers producing identical bytes,
/// as replayed rank processes do) never observe a half-written file.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(".{}.tmp{}", name.to_string_lossy(), std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Save a full training checkpoint to a file path, atomically (temp
/// sibling + rename): a crash mid-write leaves the previous checkpoint
/// intact, and concurrent identical writers cannot corrupt each other.
pub fn save_checkpoint(
    params: &ParamSet,
    opt: &AdamState,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut buf = Vec::new();
    write_checkpoint(params, opt, &mut buf)?;
    atomic_write(path.as_ref(), &buf)
}

/// Load a full training checkpoint from a file path. The caller is
/// responsible for checking the architecture matches (e.g. via
/// [`restore_into`]).
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<(ParamSet, AdamState)> {
    let file = std::fs::File::open(path)?;
    read_checkpoint(io::BufReader::new(file))
}

/// Save to a file path, atomically (temp sibling + rename).
pub fn save_params(params: &ParamSet, path: impl AsRef<Path>) -> io::Result<()> {
    let mut buf = Vec::new();
    write_params(params, &mut buf)?;
    atomic_write(path.as_ref(), &buf)
}

/// Load from a file path. The caller is responsible for checking that the
/// architecture matches (e.g. via [`restore_into`]).
pub fn load_params(path: impl AsRef<Path>) -> io::Result<ParamSet> {
    let file = std::fs::File::open(path)?;
    read_params(io::BufReader::new(file))
}

/// Restore checkpointed values into an existing (architecture-defining)
/// parameter set, verifying names and shapes match exactly.
pub fn restore_into(target: &mut ParamSet, source: &ParamSet) -> io::Result<()> {
    if target.len() != source.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: {} vs {}",
                target.len(),
                source.len()
            ),
        ));
    }
    for i in 0..target.len() {
        let id = crate::nn::ParamId(i);
        if target.name(id) != source.name(id) || target.get(id).shape() != source.get(id).shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter {i} mismatch: {}:{:?} vs {}:{:?}",
                    target.name(id),
                    target.get(id).shape(),
                    source.name(id),
                    source.get(id).shape()
                ),
            ));
        }
    }
    let flat = source.flatten();
    target.unflatten(&flat);
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params(seed: u64) -> ParamSet {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = Mlp::new(&mut params, "m", 3, 8, 2, 1, true, &mut rng);
        params
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let params = sample_params(1);
        let mut buf = Vec::new();
        write_params(&params, &mut buf).expect("write");
        let restored = read_params(buf.as_slice()).expect("read");
        assert_eq!(restored.len(), params.len());
        assert_eq!(restored.flatten(), params.flatten());
        for i in 0..params.len() {
            let id = crate::nn::ParamId(i);
            assert_eq!(restored.name(id), params.name(id));
            assert_eq!(restored.get(id).shape(), params.get(id).shape());
        }
    }

    #[test]
    fn restore_into_checks_architecture() {
        let a = sample_params(1);
        let mut b = sample_params(2);
        assert_ne!(a.flatten(), b.flatten());
        restore_into(&mut b, &a).expect("compatible restore");
        assert_eq!(a.flatten(), b.flatten());

        // Mismatched architecture is rejected.
        let mut small = ParamSet::new();
        small.register("x", Tensor::zeros(1, 1));
        assert!(restore_into(&mut small, &a).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_params(&b"NOPE"[..]).is_err());
        assert!(read_params(&b"CG"[..]).is_err());
        assert!(read_checkpoint(&b"NOPE"[..]).is_err());
        // A bare params container is not a training checkpoint.
        let mut buf = Vec::new();
        write_params(&sample_params(1), &mut buf).expect("write");
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }

    #[test]
    fn checkpoint_roundtrip_preserves_params_and_adam_state() {
        use crate::optim::Adam;

        let mut params = sample_params(3);
        let mut opt = Adam::new(0.01);
        for _ in 0..4 {
            let grads: Vec<Tensor> = params.tensors().to_vec(); // grad = theta
            opt.step(&mut params, &grads);
        }
        let mut buf = Vec::new();
        write_checkpoint(&params, &opt.state(), &mut buf).expect("write");
        let (rp, rs) = read_checkpoint(buf.as_slice()).expect("read");
        assert_eq!(rp.flatten(), params.flatten());
        let s = opt.state();
        assert_eq!(rs.t, s.t);
        assert_eq!(rs.m.len(), s.m.len());
        assert_eq!(rs.v.len(), s.v.len());
        for (a, b) in rs.m.iter().zip(s.m.iter()) {
            assert_eq!(a.data(), b.data());
        }
        for (a, b) in rs.v.iter().zip(s.v.iter()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn fresh_optimizer_checkpoint_roundtrips_empty_moments() {
        use crate::optim::Adam;

        let params = sample_params(5);
        let opt = Adam::new(0.01);
        let mut buf = Vec::new();
        write_checkpoint(&params, &opt.state(), &mut buf).expect("write");
        let (_, rs) = read_checkpoint(buf.as_slice()).expect("read");
        assert_eq!(rs.t, 0);
        assert!(rs.m.is_empty() && rs.v.is_empty());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let params = sample_params(11);
        let opt = crate::optim::Adam::new(0.01);
        let mut buf = Vec::new();
        write_checkpoint(&params, &opt.state(), &mut buf).expect("write");
        // Cutting the container anywhere must yield Err, never a panic.
        for cut in (0..buf.len()).step_by(7).chain([buf.len() - 1]) {
            assert!(
                read_checkpoint(&buf[..cut]).is_err(),
                "truncation at {cut}/{} must be rejected",
                buf.len()
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected_by_the_checksum() {
        let params = sample_params(13);
        let opt = crate::optim::Adam::new(0.01);
        let mut buf = Vec::new();
        write_checkpoint(&params, &opt.state(), &mut buf).expect("write");
        assert!(read_checkpoint(buf.as_slice()).is_ok(), "pristine loads");
        // Flip one bit at a spread of positions, covering the header, the
        // payload, and the trailing checksum itself.
        for pos in (0..buf.len()).step_by(97) {
            let mut evil = buf.clone();
            evil[pos] ^= 0x10;
            assert!(
                read_checkpoint(evil.as_slice()).is_err(),
                "bit flip at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn version_1_checkpoints_without_checksum_still_load() {
        let params = sample_params(17);
        let opt = crate::optim::Adam::new(0.01);
        let mut buf = Vec::new();
        write_checkpoint(&params, &opt.state(), &mut buf).expect("write");
        // Rewrite the version field to 1 and drop the 8-byte trailer:
        // byte-for-byte what a pre-checksum writer produced.
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        buf.truncate(buf.len() - 8);
        let (rp, _) = read_checkpoint(buf.as_slice()).expect("v1 loads");
        assert_eq!(rp.flatten(), params.flatten());
    }

    #[test]
    fn file_roundtrip() {
        let params = sample_params(7);
        let dir = std::env::temp_dir().join(format!("cgnn_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.cgnn");
        save_params(&params, &path).expect("save");
        let loaded = load_params(&path).expect("load");
        assert_eq!(loaded.flatten(), params.flatten());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
