//! Training-data generation: pair the solver with the graph builder so the
//! GNN can learn from simulation snapshots — the "NekRS as data generator"
//! workflow the paper's Fig. 1 describes.

use cgnn_graph::LocalGraph;
use cgnn_mesh::{BoxMesh, TaylorGreen};

use crate::stepper::DiffusionSolver;

/// A pair of node-feature snapshots `(t0, t1)` defined on the unique global
/// nodes of a mesh: the supervised input/target of a forecasting GNN.
pub struct SnapshotPair {
    /// Per-component state at `t0`, each of length `n_dofs`.
    pub input: [Vec<f64>; 3],
    /// Per-component state at `t1`.
    pub target: [Vec<f64>; 3],
    solver: DiffusionSolver,
    mesh_nodes: u64,
}

impl SnapshotPair {
    /// Initialize the three velocity components from the Taylor-Green
    /// vortex, diffuse each component for `steps` RK4 steps of `dt`
    /// (a Stokes-flow style decay — pressure coupling is out of scope for a
    /// data generator), and capture input/target snapshots.
    pub fn tgv_diffusion(mesh: &BoxMesh, nu: f64, dt: f64, steps: usize) -> Self {
        let solver = DiffusionSolver::new(mesh, nu);
        let field = TaylorGreen::new(nu);
        let n = solver.n_dofs();
        let mut input: [Vec<f64>; 3] = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        for gid in 0..mesh.num_global_nodes() as u64 {
            let v = field.velocity(mesh.node_pos(gid), 0.0);
            let row = solver.row_of(gid);
            for c in 0..3 {
                input[c][row] = v[c];
            }
        }
        let target = [
            solver.integrate(&input[0], dt, steps),
            solver.integrate(&input[1], dt, steps),
            solver.integrate(&input[2], dt, steps),
        ];
        SnapshotPair {
            input,
            target,
            solver,
            mesh_nodes: mesh.num_global_nodes() as u64,
        }
    }

    /// Total simulated nodes.
    pub fn n_nodes(&self) -> u64 {
        self.mesh_nodes
    }

    /// Extract the row-major `[n_local, 3]` input buffer for one rank's
    /// local graph.
    pub fn rank_input(&self, g: &LocalGraph) -> Vec<f64> {
        self.extract(&self.input, g)
    }

    /// Extract the row-major `[n_local, 3]` target buffer for one rank.
    pub fn rank_target(&self, g: &LocalGraph) -> Vec<f64> {
        self.extract(&self.target, g)
    }

    fn extract(&self, state: &[Vec<f64>; 3], g: &LocalGraph) -> Vec<f64> {
        let mut out = Vec::with_capacity(g.n_local() * 3);
        for &gid in &g.gids {
            let row = self.solver.row_of(gid);
            for comp in state {
                out.push(comp[row]);
            }
        }
        out
    }
}

/// A stream of consecutive snapshot pairs captured from **one continuous
/// solver trajectory**: sample `k` is `(u(t_k), u(t_{k+1}))` with
/// `t_{k+1} - t_k = steps_per_pair * dt`. This is the multi-snapshot
/// training set a surrogate needs — the "NekRS as data generator" loop of
/// the paper's Fig. 1 run for many dumps instead of one.
///
/// Buffers are stored **gid-major** (`n_nodes * 3`, components interleaved
/// per node, indexed by global node id), the layout the session layer's
/// `Dataset` consumes directly; no solver internals leak out.
pub struct SnapshotStream {
    n_nodes: usize,
    pairs: Vec<(Vec<f64>, Vec<f64>)>,
}

impl SnapshotStream {
    /// Generate `n_pairs` consecutive training pairs by diffusing the
    /// Taylor-Green velocity field: initialize at `t = 0`, advance
    /// `steps_per_pair` RK4 steps of `dt` between captures, and pair each
    /// snapshot with its successor. The trajectory is continuous — pair
    /// `k`'s target is pair `k+1`'s input — so the stream samples one
    /// physical decay at `n_pairs + 1` distinct times.
    pub fn tgv_diffusion(
        mesh: &BoxMesh,
        nu: f64,
        dt: f64,
        steps_per_pair: usize,
        n_pairs: usize,
    ) -> Self {
        assert!(n_pairs > 0, "a stream needs at least one snapshot pair");
        let solver = DiffusionSolver::new(mesh, nu);
        let field = TaylorGreen::new(nu);
        let n_rows = solver.n_dofs();
        let n_nodes = mesh.num_global_nodes();
        let mut state: [Vec<f64>; 3] = [vec![0.0; n_rows], vec![0.0; n_rows], vec![0.0; n_rows]];
        for gid in 0..n_nodes as u64 {
            let v = field.velocity(mesh.node_pos(gid), 0.0);
            let row = solver.row_of(gid);
            for c in 0..3 {
                state[c][row] = v[c];
            }
        }
        let capture = |state: &[Vec<f64>; 3]| -> Vec<f64> {
            let mut out = Vec::with_capacity(n_nodes * 3);
            for gid in 0..n_nodes as u64 {
                let row = solver.row_of(gid);
                for comp in state {
                    out.push(comp[row]);
                }
            }
            out
        };
        let mut pairs = Vec::with_capacity(n_pairs);
        let mut input = capture(&state);
        for _ in 0..n_pairs {
            for comp in &mut state {
                *comp = solver.integrate(comp, dt, steps_per_pair);
            }
            let target = capture(&state);
            pairs.push((input, target.clone()));
            input = target;
        }
        SnapshotStream { n_nodes, pairs }
    }

    /// Wrap hand-built gid-major snapshot pairs (each buffer `n_nodes * 3`).
    ///
    /// # Panics
    /// If `pairs` is empty or any buffer has the wrong length.
    pub fn from_pairs(n_nodes: usize, pairs: Vec<(Vec<f64>, Vec<f64>)>) -> Self {
        assert!(!pairs.is_empty(), "a stream needs at least one pair");
        for (i, (x, y)) in pairs.iter().enumerate() {
            assert_eq!(x.len(), n_nodes * 3, "pair {i}: input buffer length");
            assert_eq!(y.len(), n_nodes * 3, "pair {i}: target buffer length");
        }
        SnapshotStream { n_nodes, pairs }
    }

    /// Number of `(input, target)` samples in the stream.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the stream holds no samples (constructors forbid this, so
    /// only reachable through `Default`-less manual surgery — provided for
    /// clippy's `len_without_is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Unique global nodes each snapshot covers.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Sample `i` as gid-major `(input, target)` buffer slices.
    pub fn pair(&self, i: usize) -> (&[f64], &[f64]) {
        let (x, y) = &self.pairs[i];
        (x, y)
    }

    /// Consume the stream into its raw gid-major pairs (what
    /// `cgnn-session`'s `Dataset::from_pairs` ingests).
    pub fn into_pairs(self) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_graph::{build_distributed_graph, build_global_graph};
    use cgnn_partition::{Partition, Strategy};

    #[test]
    fn snapshot_pair_decays() {
        let mesh = BoxMesh::tgv_cube(2, 3);
        let pair = SnapshotPair::tgv_diffusion(&mesh, 0.5, 1e-4, 50);
        let energy =
            |s: &[Vec<f64>; 3]| -> f64 { s.iter().flat_map(|c| c.iter()).map(|v| v * v).sum() };
        assert!(energy(&pair.target) < energy(&pair.input));
        assert!(energy(&pair.target) > 0.0);
    }

    #[test]
    fn stream_pairs_chain_one_continuous_trajectory() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let stream = SnapshotStream::tgv_diffusion(&mesh, 0.5, 1e-4, 20, 4);
        assert_eq!(stream.len(), 4);
        assert_eq!(stream.n_nodes(), mesh.num_global_nodes());
        let energy = |s: &[f64]| -> f64 { s.iter().map(|v| v * v).sum() };
        for k in 0..stream.len() {
            let (x, y) = stream.pair(k);
            assert_eq!(x.len(), mesh.num_global_nodes() * 3);
            assert!(energy(y) < energy(x), "diffusion must decay pair {k}");
            if k + 1 < stream.len() {
                assert_eq!(y, stream.pair(k + 1).0, "pairs must chain");
            }
        }
    }

    #[test]
    fn stream_first_pair_matches_snapshot_pair_generator() {
        // Same solver, same schedule: the stream's first sample must be
        // the single-pair generator's sample, gid for gid.
        let mesh = BoxMesh::tgv_cube(2, 2);
        let single = SnapshotPair::tgv_diffusion(&mesh, 0.3, 1e-4, 15);
        let stream = SnapshotStream::tgv_diffusion(&mesh, 0.3, 1e-4, 15, 2);
        let global = build_global_graph(&mesh);
        let (x, y) = stream.pair(0);
        // SnapshotPair extracts per-graph rows; the stream stores gid-major
        // buffers — compare through the graph's gid list.
        let ref_in = single.rank_input(&global);
        let ref_tg = single.rank_target(&global);
        for (i, &gid) in global.gids.iter().enumerate() {
            for c in 0..3 {
                assert_eq!(x[gid as usize * 3 + c], ref_in[i * 3 + c], "gid {gid}");
                assert_eq!(y[gid as usize * 3 + c], ref_tg[i * 3 + c], "gid {gid}");
            }
        }
    }

    #[test]
    fn from_pairs_validates_buffer_lengths() {
        let ok = SnapshotStream::from_pairs(2, vec![(vec![0.0; 6], vec![1.0; 6])]);
        assert_eq!(ok.len(), 1);
        assert!(!ok.is_empty());
        let bad = std::panic::catch_unwind(|| {
            SnapshotStream::from_pairs(2, vec![(vec![0.0; 5], vec![1.0; 6])])
        });
        assert!(bad.is_err(), "short input buffer must be rejected");
    }

    #[test]
    fn rank_extraction_is_partition_consistent() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let pair = SnapshotPair::tgv_diffusion(&mesh, 0.1, 1e-4, 10);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = build_distributed_graph(&mesh, &part);
        let ref_in = pair.rank_input(&global);
        for g in &graphs {
            let xin = pair.rank_input(g);
            for (i, &gid) in g.gids.iter().enumerate() {
                let gr = global.local_of_gid(gid).expect("gid in global");
                for c in 0..3 {
                    assert_eq!(xin[i * 3 + c], ref_in[gr * 3 + c], "gid {gid} comp {c}");
                }
            }
        }
    }
}
