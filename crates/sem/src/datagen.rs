//! Training-data generation: pair the solver with the graph builder so the
//! GNN can learn from simulation snapshots — the "NekRS as data generator"
//! workflow the paper's Fig. 1 describes.

use cgnn_graph::LocalGraph;
use cgnn_mesh::{BoxMesh, TaylorGreen};

use crate::stepper::DiffusionSolver;

/// A pair of node-feature snapshots `(t0, t1)` defined on the unique global
/// nodes of a mesh: the supervised input/target of a forecasting GNN.
pub struct SnapshotPair {
    /// Per-component state at `t0`, each of length `n_dofs`.
    pub input: [Vec<f64>; 3],
    /// Per-component state at `t1`.
    pub target: [Vec<f64>; 3],
    solver: DiffusionSolver,
    mesh_nodes: u64,
}

impl SnapshotPair {
    /// Initialize the three velocity components from the Taylor-Green
    /// vortex, diffuse each component for `steps` RK4 steps of `dt`
    /// (a Stokes-flow style decay — pressure coupling is out of scope for a
    /// data generator), and capture input/target snapshots.
    pub fn tgv_diffusion(mesh: &BoxMesh, nu: f64, dt: f64, steps: usize) -> Self {
        let solver = DiffusionSolver::new(mesh, nu);
        let field = TaylorGreen::new(nu);
        let n = solver.n_dofs();
        let mut input: [Vec<f64>; 3] = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        for gid in 0..mesh.num_global_nodes() as u64 {
            let v = field.velocity(mesh.node_pos(gid), 0.0);
            let row = solver.row_of(gid);
            for c in 0..3 {
                input[c][row] = v[c];
            }
        }
        let target = [
            solver.integrate(&input[0], dt, steps),
            solver.integrate(&input[1], dt, steps),
            solver.integrate(&input[2], dt, steps),
        ];
        SnapshotPair {
            input,
            target,
            solver,
            mesh_nodes: mesh.num_global_nodes() as u64,
        }
    }

    /// Total simulated nodes.
    pub fn n_nodes(&self) -> u64 {
        self.mesh_nodes
    }

    /// Extract the row-major `[n_local, 3]` input buffer for one rank's
    /// local graph.
    pub fn rank_input(&self, g: &LocalGraph) -> Vec<f64> {
        self.extract(&self.input, g)
    }

    /// Extract the row-major `[n_local, 3]` target buffer for one rank.
    pub fn rank_target(&self, g: &LocalGraph) -> Vec<f64> {
        self.extract(&self.target, g)
    }

    fn extract(&self, state: &[Vec<f64>; 3], g: &LocalGraph) -> Vec<f64> {
        let mut out = Vec::with_capacity(g.n_local() * 3);
        for &gid in &g.gids {
            let row = self.solver.row_of(gid);
            for comp in state {
                out.push(comp[row]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_graph::{build_distributed_graph, build_global_graph};
    use cgnn_partition::{Partition, Strategy};

    #[test]
    fn snapshot_pair_decays() {
        let mesh = BoxMesh::tgv_cube(2, 3);
        let pair = SnapshotPair::tgv_diffusion(&mesh, 0.5, 1e-4, 50);
        let energy =
            |s: &[Vec<f64>; 3]| -> f64 { s.iter().flat_map(|c| c.iter()).map(|v| v * v).sum() };
        assert!(energy(&pair.target) < energy(&pair.input));
        assert!(energy(&pair.target) > 0.0);
    }

    #[test]
    fn rank_extraction_is_partition_consistent() {
        let mesh = BoxMesh::tgv_cube(2, 2);
        let pair = SnapshotPair::tgv_diffusion(&mesh, 0.1, 1e-4, 10);
        let global = build_global_graph(&mesh);
        let part = Partition::new(&mesh, 2, Strategy::Slab);
        let graphs = build_distributed_graph(&mesh, &part);
        let ref_in = pair.rank_input(&global);
        for g in &graphs {
            let xin = pair.rank_input(g);
            for (i, &gid) in g.gids.iter().enumerate() {
                let gr = global.local_of_gid(gid).expect("gid in global");
                for c in 0..3 {
                    assert_eq!(xin[i * 3 + c], ref_in[gr * 3 + c], "gid {gid} comp {c}");
                }
            }
        }
    }
}
