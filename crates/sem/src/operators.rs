//! Per-element spectral operators on the GLL lattice.
//!
//! Box elements are affine images of the reference cube `[-1,1]^3`, so the
//! Jacobian is constant per element and the stiffness/mass actions reduce to
//! tensor-product applications of the 1-D differentiation matrix — the same
//! sum-factorization structure NekRS's kernels exploit.

use cgnn_mesh::BoxMesh;

/// Precomputed per-element operator data for a (uniform) box mesh.
#[derive(Debug, Clone)]
pub struct ElementOps {
    /// Points per direction, `p + 1`.
    pub n: usize,
    /// 1-D differentiation matrix, row-major `n x n`.
    pub d: Vec<f64>,
    /// 1-D GLL weights.
    pub w: Vec<f64>,
    /// Physical element extents `(hx, hy, hz)`.
    pub h: (f64, f64, f64),
}

impl ElementOps {
    pub fn new(mesh: &BoxMesh) -> Self {
        let gll = mesh.gll();
        let (ex, ey, ez) = mesh.elem_counts();
        let (lx, ly, lz) = mesh.lengths();
        ElementOps {
            n: gll.len(),
            d: gll.diff_matrix(),
            w: gll.weights.clone(),
            h: (lx / ex as f64, ly / ey as f64, lz / ez as f64),
        }
    }

    #[inline]
    fn idx(&self, a: usize, b: usize, c: usize) -> usize {
        a + self.n * (b + self.n * c)
    }

    /// Apply the reference-space derivative along axis `axis` to the local
    /// field `u` (`n^3` values), writing into `out`.
    ///
    /// # Panics
    ///
    /// If `axis >= 3`. Callers iterate the fixed `0..3` axes; a typed
    /// error would force fallible signatures through every kernel.
    pub fn apply_d(&self, axis: usize, u: &[f64], out: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(u.len(), n * n * n);
        debug_assert_eq!(out.len(), n * n * n);
        out.fill(0.0);
        match axis {
            0 => {
                for c in 0..n {
                    for b in 0..n {
                        for a in 0..n {
                            let mut acc = 0.0;
                            for ap in 0..n {
                                acc += self.d[a * n + ap] * u[self.idx(ap, b, c)];
                            }
                            out[self.idx(a, b, c)] = acc;
                        }
                    }
                }
            }
            1 => {
                for c in 0..n {
                    for b in 0..n {
                        for a in 0..n {
                            let mut acc = 0.0;
                            for bp in 0..n {
                                acc += self.d[b * n + bp] * u[self.idx(a, bp, c)];
                            }
                            out[self.idx(a, b, c)] = acc;
                        }
                    }
                }
            }
            2 => {
                for c in 0..n {
                    for b in 0..n {
                        for a in 0..n {
                            let mut acc = 0.0;
                            for cp in 0..n {
                                acc += self.d[c * n + cp] * u[self.idx(a, b, cp)];
                            }
                            out[self.idx(a, b, c)] = acc;
                        }
                    }
                }
            }
            // detlint: allow(unwrap-in-lib, "axis comes from internal 0..3 loops; a typed error would force fallible signatures through every kernel")
            _ => panic!("axis must be 0..3"),
        }
    }

    /// Apply the transpose derivative along `axis` and *accumulate* into
    /// `out` (the `D^T W` half of the weak Laplacian).
    ///
    /// # Panics
    ///
    /// If `axis >= 3`. Callers iterate the fixed `0..3` axes; a typed
    /// error would force fallible signatures through every kernel.
    pub fn apply_dt_accumulate(&self, axis: usize, u: &[f64], out: &mut [f64]) {
        let n = self.n;
        match axis {
            0 => {
                for c in 0..n {
                    for b in 0..n {
                        for a in 0..n {
                            let mut acc = 0.0;
                            for ap in 0..n {
                                acc += self.d[ap * n + a] * u[self.idx(ap, b, c)];
                            }
                            out[self.idx(a, b, c)] += acc;
                        }
                    }
                }
            }
            1 => {
                for c in 0..n {
                    for b in 0..n {
                        for a in 0..n {
                            let mut acc = 0.0;
                            for bp in 0..n {
                                acc += self.d[bp * n + b] * u[self.idx(a, bp, c)];
                            }
                            out[self.idx(a, b, c)] += acc;
                        }
                    }
                }
            }
            2 => {
                for c in 0..n {
                    for b in 0..n {
                        for a in 0..n {
                            let mut acc = 0.0;
                            for cp in 0..n {
                                acc += self.d[cp * n + c] * u[self.idx(a, b, cp)];
                            }
                            out[self.idx(a, b, c)] += acc;
                        }
                    }
                }
            }
            // detlint: allow(unwrap-in-lib, "axis comes from internal 0..3 loops; a typed error would force fallible signatures through every kernel")
            _ => panic!("axis must be 0..3"),
        }
    }

    /// Element Jacobian determinant (constant for affine boxes).
    pub fn jacobian(&self) -> f64 {
        (self.h.0 * 0.5) * (self.h.1 * 0.5) * (self.h.2 * 0.5)
    }

    /// Diagonal (collocation) mass values `w_a w_b w_c * J` for each local
    /// node.
    pub fn local_mass(&self) -> Vec<f64> {
        let n = self.n;
        let j = self.jacobian();
        let mut m = Vec::with_capacity(n * n * n);
        for c in 0..n {
            for b in 0..n {
                for a in 0..n {
                    m.push(self.w[a] * self.w[b] * self.w[c] * j);
                }
            }
        }
        m
    }

    /// Local weak-Laplacian (stiffness) action: `out = K^e u` with
    /// `K^e = sum_axis D_a^T W G_a D_a`, `G_a = (2/h_a)^2`.
    pub fn apply_stiffness(&self, u: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let n3 = self.n * self.n * self.n;
        debug_assert_eq!(u.len(), n3);
        out.fill(0.0);
        let j = self.jacobian();
        let g = [
            (2.0 / self.h.0) * (2.0 / self.h.0),
            (2.0 / self.h.1) * (2.0 / self.h.1),
            (2.0 / self.h.2) * (2.0 / self.h.2),
        ];
        let n = self.n;
        let mut weighted = vec![0.0; n3];
        for axis in 0..3 {
            self.apply_d(axis, u, scratch);
            // Multiply by quadrature weights, Jacobian, and metric factor.
            let mut k = 0;
            for c in 0..n {
                for b in 0..n {
                    for a in 0..n {
                        weighted[k] = scratch[k] * self.w[a] * self.w[b] * self.w[c] * j * g[axis];
                        k += 1;
                    }
                }
            }
            self.apply_dt_accumulate(axis, &weighted, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_linear_field_is_constant() {
        let mesh = BoxMesh::new((2, 2, 2), 4, (2.0, 2.0, 2.0), false);
        let ops = ElementOps::new(&mesh);
        let n = ops.n;
        // u = xi (reference coordinate along axis 0).
        let gll = mesh.gll().nodes.clone();
        let mut u = vec![0.0; n * n * n];
        for c in 0..n {
            for b in 0..n {
                for a in 0..n {
                    u[a + n * (b + n * c)] = gll[a];
                }
            }
        }
        let mut out = vec![0.0; n * n * n];
        ops.apply_d(0, &u, &mut out);
        for &v in &out {
            assert!((v - 1.0).abs() < 1e-10, "{v}");
        }
        ops.apply_d(1, &u, &mut out);
        for &v in &out {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn stiffness_annihilates_constants() {
        let mesh = BoxMesh::new((2, 2, 2), 3, (1.0, 1.0, 1.0), false);
        let ops = ElementOps::new(&mesh);
        let n3 = ops.n * ops.n * ops.n;
        let u = vec![5.0; n3];
        let mut out = vec![0.0; n3];
        let mut scratch = vec![0.0; n3];
        ops.apply_stiffness(&u, &mut out, &mut scratch);
        for &v in &out {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn stiffness_is_symmetric_positive_semidefinite() {
        let mesh = BoxMesh::new((2, 2, 2), 2, (1.0, 1.0, 1.0), false);
        let ops = ElementOps::new(&mesh);
        let n3 = ops.n * ops.n * ops.n;
        let mut scratch = vec![0.0; n3];
        // <K u, v> == <u, K v> and <K u, u> >= 0 for a few random-ish vectors.
        let u: Vec<f64> = (0..n3)
            .map(|i| ((i * 37 % 17) as f64 - 8.0) / 8.0)
            .collect();
        let v: Vec<f64> = (0..n3)
            .map(|i| ((i * 53 % 23) as f64 - 11.0) / 11.0)
            .collect();
        let mut ku = vec![0.0; n3];
        let mut kv = vec![0.0; n3];
        ops.apply_stiffness(&u, &mut ku, &mut scratch);
        ops.apply_stiffness(&v, &mut kv, &mut scratch);
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        assert!((dot(&ku, &v) - dot(&u, &kv)).abs() < 1e-10);
        assert!(dot(&ku, &u) >= -1e-12);
    }

    #[test]
    fn mass_integrates_unity_to_element_volume() {
        let mesh = BoxMesh::new((4, 2, 2), 5, (2.0, 1.0, 1.0), false);
        let ops = ElementOps::new(&mesh);
        let vol: f64 = ops.local_mass().iter().sum();
        assert!((vol - 0.5 * 0.5 * 0.5).abs() < 1e-12, "{vol}");
    }
}
