//! Explicit spectral-element diffusion stepper — the "NekRS as data
//! generator" role: it evolves nodal fields on the same meshes the GNN
//! trains on, using the same gather-scatter synchronization.
//!
//! Solves `du/dt = -nu * Laplacian(u)`... more precisely the method-of-lines
//! weak form `M du/dt = -nu K u` with diagonal (collocation) mass `M`,
//! per-element stiffness `K`, direct stiffness summation, and RK4 in time.
//! On the periodic box, Fourier modes decay at exactly `nu |k|^2`, giving a
//! sharp validation target.

use cgnn_mesh::BoxMesh;

use crate::gather_scatter::GatherScatter;
use crate::operators::ElementOps;

/// Serial (R=1) diffusion solver on a [`BoxMesh`].
pub struct DiffusionSolver {
    mesh_elems: usize,
    n3: usize,
    ops: ElementOps,
    gs: GatherScatter,
    /// Assembled diagonal mass, one entry per unique global node row.
    inv_mass: Vec<f64>,
    pub nu: f64,
}

impl DiffusionSolver {
    pub fn new(mesh: &BoxMesh, nu: f64) -> Self {
        let ops = ElementOps::new(mesh);
        let gs = GatherScatter::new(mesh);
        let n3 = mesh.nodes_per_element();
        let local_mass = ops.local_mass();
        let all_local: Vec<f64> = (0..mesh.num_elements())
            .flat_map(|_| local_mass.iter().copied())
            .collect();
        let mass = gs.assemble_diagonal(&all_local);
        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        DiffusionSolver {
            mesh_elems: mesh.num_elements(),
            n3,
            ops,
            gs,
            inv_mass,
            nu,
        }
    }

    /// Number of unique global nodes (state vector length).
    pub fn n_dofs(&self) -> usize {
        self.gs.n_global
    }

    /// Dense state row for a gid.
    pub fn row_of(&self, gid: u64) -> usize {
        self.gs.row_of(gid)
    }

    /// Right-hand side `f(u) = -nu * M^{-1} (Q^T K^e Q u)`.
    pub fn rhs(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.gs.n_global);
        let local = self.gs.scatter(u);
        let mut k_local = vec![0.0; local.len()];
        let mut scratch = vec![0.0; self.n3];
        let mut out_e = vec![0.0; self.n3];
        for e in 0..self.mesh_elems {
            let u_e = &local[e * self.n3..(e + 1) * self.n3];
            self.ops.apply_stiffness(u_e, &mut out_e, &mut scratch);
            k_local[e * self.n3..(e + 1) * self.n3].copy_from_slice(&out_e);
        }
        let assembled = self.gs.gather_sum(&k_local);
        assembled
            .iter()
            .zip(&self.inv_mass)
            .map(|(&k, &im)| -self.nu * k * im)
            .collect()
    }

    /// One classical RK4 step of size `dt`, in place.
    pub fn rk4_step(&self, u: &mut [f64], dt: f64) {
        let k1 = self.rhs(u);
        let u2: Vec<f64> = u.iter().zip(&k1).map(|(&x, &k)| x + 0.5 * dt * k).collect();
        let k2 = self.rhs(&u2);
        let u3: Vec<f64> = u.iter().zip(&k2).map(|(&x, &k)| x + 0.5 * dt * k).collect();
        let k3 = self.rhs(&u3);
        let u4: Vec<f64> = u.iter().zip(&k3).map(|(&x, &k)| x + dt * k).collect();
        let k4 = self.rhs(&u4);
        for i in 0..u.len() {
            u[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    /// Integrate from `t=0` over `steps` RK4 steps of size `dt`.
    pub fn integrate(&self, u0: &[f64], dt: f64, steps: usize) -> Vec<f64> {
        let mut u = u0.to_vec();
        for _ in 0..steps {
            self.rk4_step(&mut u, dt);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_mesh::SineProduct;

    /// On the periodic box, u0 = sin(x) sin(y) sin(z) decays at e^{-3 nu t}.
    #[test]
    fn sine_mode_decays_at_analytic_rate() {
        let tau = 2.0 * std::f64::consts::PI;
        let mesh = BoxMesh::new((3, 3, 3), 4, (tau, tau, tau), true);
        let nu = 0.5;
        let solver = DiffusionSolver::new(&mesh, nu);
        let mode = SineProduct { k: [1.0, 1.0, 1.0] };

        // Initial condition sampled at the unique global nodes.
        let mut u0 = vec![0.0; solver.n_dofs()];
        for gid in 0..mesh.num_global_nodes() as u64 {
            u0[solver.row_of(gid)] = mode.eval(mesh.node_pos(gid));
        }
        let dt = 1e-3;
        let steps = 100;
        let t = dt * steps as f64;
        let u = solver.integrate(&u0, dt, steps);

        let decay = (-mode.decay_rate(nu) * t).exp();
        let mut max_err = 0.0f64;
        for gid in 0..mesh.num_global_nodes() as u64 {
            let exact = mode.eval(mesh.node_pos(gid)) * decay;
            let got = u[solver.row_of(gid)];
            max_err = max_err.max((got - exact).abs());
        }
        assert!(max_err < 2e-3, "max error {max_err} (decay {decay})");
    }

    #[test]
    fn constant_field_is_steady_state() {
        let mesh = BoxMesh::new((2, 2, 2), 3, (1.0, 1.0, 1.0), true);
        let solver = DiffusionSolver::new(&mesh, 1.0);
        let u0 = vec![3.5; solver.n_dofs()];
        let u = solver.integrate(&u0, 1e-5, 50);
        for &v in &u {
            assert!((v - 3.5).abs() < 1e-10);
        }
    }

    #[test]
    fn diffusion_monotonically_dissipates_energy() {
        let tau = 2.0 * std::f64::consts::PI;
        let mesh = BoxMesh::new((3, 3, 3), 3, (tau, tau, tau), true);
        let solver = DiffusionSolver::new(&mesh, 0.2);
        let mut u: Vec<f64> = (0..solver.n_dofs())
            .map(|i| ((i * 7919) % 13) as f64 - 6.0)
            .collect();
        // Remove the mean so the invariant state is zero.
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        for v in &mut u {
            *v -= mean;
        }
        let mut prev = f64::INFINITY;
        for _ in 0..5 {
            solver.rk4_step(&mut u, 1e-5);
            let energy: f64 = u.iter().map(|v| v * v).sum();
            assert!(
                energy <= prev * (1.0 + 1e-12),
                "energy grew: {energy} > {prev}"
            );
            prev = energy;
        }
    }
}
