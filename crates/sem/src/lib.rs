//! # cgnn-sem
//!
//! A miniature spectral-element method (SEM) solver standing in for NekRS:
//! tensor-product GLL operators on hexahedral elements ([`operators`]),
//! direct-stiffness gather-scatter over coincident nodes
//! ([`gather_scatter`] — the solver-side twin of the paper's consistent NMP
//! synchronization), an explicit RK4 diffusion stepper validated against
//! analytic decay rates ([`stepper`]), and snapshot generation feeding the
//! GNN training loop ([`datagen`]): single [`SnapshotPair`]s and
//! multi-dump [`SnapshotStream`]s captured from one continuous trajectory.

pub mod advection;
pub mod datagen;
pub mod gather_scatter;
pub mod operators;
pub mod stepper;

pub use advection::AdvectionDiffusionSolver;
pub use datagen::{SnapshotPair, SnapshotStream};
pub use gather_scatter::{distributed_dssum, GatherScatter};
pub use operators::ElementOps;
pub use stepper::DiffusionSolver;
