//! Advection-diffusion stepper: `du/dt + (c . grad) u = nu Laplacian(u)`
//! with a constant advecting velocity `c` on the periodic box — the
//! transport physics NekRS's data would carry, exercised here so generated
//! training snapshots contain both decay *and* translation.
//!
//! Advection uses the collocation (strong-form) derivative, diffusion the
//! weak form of [`crate::stepper`]; both are assembled with the same
//! gather-scatter. On a periodic box, `u0(x) -> u0(x - c t) * decay`, which
//! gives a sharp two-sided validation target.

use cgnn_mesh::BoxMesh;

use crate::gather_scatter::GatherScatter;
use crate::operators::ElementOps;

/// Serial advection-diffusion solver on a periodic [`BoxMesh`].
pub struct AdvectionDiffusionSolver {
    n_elems: usize,
    n3: usize,
    ops: ElementOps,
    gs: GatherScatter,
    /// Assembled diagonal mass (per unique node).
    inv_mass: Vec<f64>,
    /// Node multiplicities (for averaging collocation quantities).
    multiplicity: Vec<f64>,
    pub nu: f64,
    pub c: [f64; 3],
}

impl AdvectionDiffusionSolver {
    pub fn new(mesh: &BoxMesh, nu: f64, c: [f64; 3]) -> Self {
        assert!(
            mesh.is_periodic(),
            "advection test problem assumes a periodic box"
        );
        let ops = ElementOps::new(mesh);
        let gs = GatherScatter::new(mesh);
        let n3 = mesh.nodes_per_element();
        let local_mass = ops.local_mass();
        let all_local: Vec<f64> = (0..mesh.num_elements())
            .flat_map(|_| local_mass.iter().copied())
            .collect();
        let mass = gs.assemble_diagonal(&all_local);
        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        let multiplicity = gs.gather_sum(&vec![1.0; gs.slot_gid.len()]);
        AdvectionDiffusionSolver {
            n_elems: mesh.num_elements(),
            n3,
            ops,
            gs,
            inv_mass,
            multiplicity,
            nu,
            c,
        }
    }

    pub fn n_dofs(&self) -> usize {
        self.gs.n_global
    }

    pub fn row_of(&self, gid: u64) -> usize {
        self.gs.row_of(gid)
    }

    /// `f(u) = -(c . grad) u + nu * M^{-1} Q^T K Q u`.
    pub fn rhs(&self, u: &[f64]) -> Vec<f64> {
        let local = self.gs.scatter(u);
        let mut k_local = vec![0.0; local.len()];
        let mut adv_local = vec![0.0; local.len()];
        let mut scratch = vec![0.0; self.n3];
        let mut du = vec![0.0; self.n3];
        let mut out_e = vec![0.0; self.n3];
        let metric = [2.0 / self.ops.h.0, 2.0 / self.ops.h.1, 2.0 / self.ops.h.2];
        for e in 0..self.n_elems {
            let u_e = &local[e * self.n3..(e + 1) * self.n3];
            // Weak diffusion.
            self.ops.apply_stiffness(u_e, &mut out_e, &mut scratch);
            k_local[e * self.n3..(e + 1) * self.n3].copy_from_slice(&out_e);
            // Strong advection: c . grad u, chain-ruled to physical space.
            let adv = &mut adv_local[e * self.n3..(e + 1) * self.n3];
            for (axis, m) in metric.iter().enumerate() {
                if self.c[axis] == 0.0 {
                    continue;
                }
                self.ops.apply_d(axis, u_e, &mut du);
                for (a, &d) in adv.iter_mut().zip(du.iter()) {
                    *a += self.c[axis] * m * d;
                }
            }
        }
        // Diffusion: weak form, assembled then mass-inverted.
        let k = self.gs.gather_sum(&k_local);
        // Advection: collocation values agree on coincident nodes for a
        // continuous field up to rounding; average the copies.
        let adv = self.gs.gather_sum(&adv_local);
        (0..self.n_dofs())
            .map(|i| -adv[i] / self.multiplicity[i] - self.nu * k[i] * self.inv_mass[i])
            .collect()
    }

    /// One RK4 step of size `dt`, in place.
    pub fn rk4_step(&self, u: &mut [f64], dt: f64) {
        let k1 = self.rhs(u);
        let u2: Vec<f64> = u.iter().zip(&k1).map(|(&x, &k)| x + 0.5 * dt * k).collect();
        let k2 = self.rhs(&u2);
        let u3: Vec<f64> = u.iter().zip(&k2).map(|(&x, &k)| x + 0.5 * dt * k).collect();
        let k3 = self.rhs(&u3);
        let u4: Vec<f64> = u.iter().zip(&k3).map(|(&x, &k)| x + dt * k).collect();
        let k4 = self.rhs(&u4);
        for i in 0..u.len() {
            u[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    /// Integrate over `steps` steps of `dt`.
    pub fn integrate(&self, u0: &[f64], dt: f64, steps: usize) -> Vec<f64> {
        let mut u = u0.to_vec();
        for _ in 0..steps {
            self.rk4_step(&mut u, dt);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pure advection of a smooth wave translates it: u(x,t) = u0(x - ct).
    #[test]
    fn pure_advection_translates_wave() {
        let tau = 2.0 * std::f64::consts::PI;
        let mesh = BoxMesh::new((4, 2, 2), 6, (tau, tau, tau), true);
        let c = [1.0, 0.0, 0.0];
        let solver = AdvectionDiffusionSolver::new(&mesh, 0.0, c);
        let mut u0 = vec![0.0; solver.n_dofs()];
        for gid in 0..mesh.num_global_nodes() as u64 {
            u0[solver.row_of(gid)] = mesh.node_pos(gid)[0].sin();
        }
        let dt = 2e-3;
        let steps = 150;
        let t = dt * steps as f64; // t = 0.3
        let u = solver.integrate(&u0, dt, steps);
        let mut max_err = 0.0f64;
        for gid in 0..mesh.num_global_nodes() as u64 {
            let exact = (mesh.node_pos(gid)[0] - t).sin();
            max_err = max_err.max((u[solver.row_of(gid)] - exact).abs());
        }
        assert!(max_err < 1e-4, "max error {max_err}");
    }

    /// Advection-diffusion of sin(x): translated and damped at nu k^2.
    #[test]
    fn advection_diffusion_translates_and_decays() {
        let tau = 2.0 * std::f64::consts::PI;
        let mesh = BoxMesh::new((4, 2, 2), 6, (tau, tau, tau), true);
        let nu = 0.2;
        let c = [1.0, 0.0, 0.0];
        let solver = AdvectionDiffusionSolver::new(&mesh, nu, c);
        let mut u0 = vec![0.0; solver.n_dofs()];
        for gid in 0..mesh.num_global_nodes() as u64 {
            u0[solver.row_of(gid)] = mesh.node_pos(gid)[0].sin();
        }
        let dt = 1.5e-3;
        let steps = 200;
        let t = dt * steps as f64;
        let u = solver.integrate(&u0, dt, steps);
        let decay = (-nu * t).exp(); // k = 1
        let mut max_err = 0.0f64;
        for gid in 0..mesh.num_global_nodes() as u64 {
            let exact = (mesh.node_pos(gid)[0] - t).sin() * decay;
            max_err = max_err.max((u[solver.row_of(gid)] - exact).abs());
        }
        assert!(max_err < 1e-4, "max error {max_err}");
    }

    /// Advection conserves the field mean (periodic transport theorem).
    #[test]
    fn advection_conserves_mean() {
        let tau = 2.0 * std::f64::consts::PI;
        let mesh = BoxMesh::new((3, 3, 2), 3, (tau, tau, tau), true);
        let solver = AdvectionDiffusionSolver::new(&mesh, 0.0, [0.7, -0.3, 0.1]);
        let mut u: Vec<f64> = (0..solver.n_dofs())
            .map(|i| 1.0 + 0.3 * ((i as f64) * 0.11).sin())
            .collect();
        let mean0: f64 = u.iter().sum::<f64>();
        for _ in 0..20 {
            solver.rk4_step(&mut u, 1e-3);
        }
        let mean1: f64 = u.iter().sum::<f64>();
        // Nodal mean is only approximately conserved (quadrature-weighted
        // mean is the exact invariant); loose bound suffices here.
        assert!((mean1 - mean0).abs() / mean0.abs() < 1e-3);
    }
}
