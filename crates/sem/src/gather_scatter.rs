//! Direct stiffness summation (NekRS's `gs` / QQ^T gather-scatter).
//!
//! Element-based discretizations duplicate values at coincident nodes;
//! assembling a continuous operator requires summing every copy and writing
//! the sum back — exactly the coincident-node synchronization the paper's
//! consistent NMP layer performs over graph aggregates. The serial version
//! here works on the full mesh; the distributed version reuses the
//! [`cgnn_graph::HaloPlan`] and an all-to-all, demonstrating that the GNN
//! halo machinery is the solver's gather-scatter in disguise.

use cgnn_comm::Comm;
use cgnn_graph::LocalGraph;
use cgnn_mesh::BoxMesh;

/// Serial gather-scatter over a full mesh: element-local storage
/// (`n_elements * (p+1)^3` values) <-> unique global vector.
#[derive(Debug, Clone)]
pub struct GatherScatter {
    /// `gid` of each element-local slot, element-major.
    pub slot_gid: Vec<u64>,
    /// Number of unique global nodes.
    pub n_global: usize,
    /// Local index lookup: sorted unique gids (dense meshes have dense gids,
    /// but we stay general).
    gids: Vec<u64>,
}

impl GatherScatter {
    pub fn new(mesh: &BoxMesh) -> Self {
        let locals: Vec<_> = mesh.local_nodes().collect();
        let mut slot_gid = Vec::with_capacity(mesh.num_elements() * locals.len());
        for e in 0..mesh.num_elements() {
            for &l in &locals {
                slot_gid.push(mesh.elem_node_gid(e, l));
            }
        }
        let mut gids = slot_gid.clone();
        gids.sort_unstable();
        gids.dedup();
        GatherScatter {
            slot_gid,
            n_global: gids.len(),
            gids,
        }
    }

    /// Dense row index of a gid.
    #[inline]
    pub fn row_of(&self, gid: u64) -> usize {
        self.gids.binary_search(&gid).expect("gid in mesh")
    }

    /// Sum all element-local copies into a global vector (`Q^T`).
    pub fn gather_sum(&self, local: &[f64]) -> Vec<f64> {
        assert_eq!(local.len(), self.slot_gid.len());
        let mut global = vec![0.0; self.n_global];
        for (slot, &gid) in self.slot_gid.iter().enumerate() {
            global[self.row_of(gid)] += local[slot];
        }
        global
    }

    /// Copy a global vector out to every element-local slot (`Q`).
    pub fn scatter(&self, global: &[f64]) -> Vec<f64> {
        assert_eq!(global.len(), self.n_global);
        self.slot_gid
            .iter()
            .map(|&gid| global[self.row_of(gid)])
            .collect()
    }

    /// Direct stiffness summation `QQ^T`: replace each local copy by the sum
    /// over all coincident copies.
    pub fn dssum(&self, local: &mut [f64]) {
        let global = self.gather_sum(local);
        for (slot, &gid) in self.slot_gid.iter().enumerate() {
            local[slot] = global[self.row_of(gid)];
        }
    }

    /// Assembled diagonal of a local-diagonal operator (e.g. the mass
    /// matrix): gather-sum of per-element diagonals.
    pub fn assemble_diagonal(&self, local_diag_per_element: &[f64]) -> Vec<f64> {
        self.gather_sum(local_diag_per_element)
    }
}

/// Distributed coincident-node summation on a [`LocalGraph`]'s *local node*
/// vector: adds neighbouring ranks' values at shared nodes via one
/// neighbour all-to-all. After the call, every coincident copy across ranks
/// holds the identical global sum — the solver-side twin of the consistent
/// NMP synchronization (paper Eq. 4d).
pub fn distributed_dssum(values: &mut [f64], graph: &LocalGraph, comm: &Comm) {
    assert_eq!(values.len(), graph.n_local());
    let world = comm.size();
    let mut send: Vec<Vec<f64>> = vec![Vec::new(); world];
    for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
        send[s] = graph.halo.send_ids[ni].iter().map(|&l| values[l]).collect();
    }
    let recv = comm.all_to_all(send);
    for (ni, &s) in graph.halo.neighbors.iter().enumerate() {
        for (k, &l) in graph.halo.send_ids[ni].iter().enumerate() {
            values[l] += recv[s][k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgnn_comm::World;
    use cgnn_graph::build_distributed_graph;
    use cgnn_partition::{Partition, Strategy};
    use std::sync::Arc;

    #[test]
    fn dssum_multiplies_by_multiplicity() {
        let mesh = BoxMesh::new((2, 2, 2), 1, (1.0, 1.0, 1.0), false);
        let gs = GatherScatter::new(&mesh);
        let mut local = vec![1.0; gs.slot_gid.len()];
        gs.dssum(&mut local);
        // After dssum of all-ones, each slot holds its node's multiplicity;
        // center corner node is shared by 8 elements.
        let max = local.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max, 8.0);
        // Domain corners remain 1.
        let min = local.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(min, 1.0);
    }

    #[test]
    fn gather_scatter_roundtrip_preserves_continuous_fields() {
        let mesh = BoxMesh::new((3, 2, 2), 2, (1.0, 1.0, 1.0), false);
        let gs = GatherScatter::new(&mesh);
        let global: Vec<f64> = (0..gs.n_global).map(|i| (i as f64 * 0.13).sin()).collect();
        let local = gs.scatter(&global);
        // A scattered (continuous) field gathered with averaging-by-count
        // must reproduce itself; here we check Q^T Q = diag(multiplicity).
        let summed = gs.gather_sum(&local);
        let ones = gs.gather_sum(&vec![1.0; local.len()]);
        for i in 0..gs.n_global {
            assert!((summed[i] - global[i] * ones[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn distributed_dssum_matches_serial() {
        let mesh = BoxMesh::new((4, 2, 2), 2, (1.0, 1.0, 1.0), false);
        let part = Partition::new(&mesh, 4, Strategy::Slab);
        let graphs = Arc::new(build_distributed_graph(&mesh, &part));

        // Serial reference: per-gid sum of per-rank values.
        let value_of = |rank: usize, gid: u64| (gid as f64 * 0.31).sin() + rank as f64 * 0.05;
        let mut reference: std::collections::HashMap<u64, f64> = Default::default();
        for g in graphs.iter() {
            for &gid in &g.gids {
                *reference.entry(gid).or_insert(0.0) += value_of(g.rank, gid);
            }
        }

        let results = World::run(4, |comm| {
            let g = &graphs[comm.rank()];
            let mut v: Vec<f64> = g
                .gids
                .iter()
                .map(|&gid| value_of(comm.rank(), gid))
                .collect();
            distributed_dssum(&mut v, g, comm);
            (g.gids.clone(), v)
        });
        for (gids, v) in &results {
            for (i, &gid) in gids.iter().enumerate() {
                let copies = graphs
                    .iter()
                    .filter(|g| g.local_of_gid(gid).is_some())
                    .count();
                let expect = if copies > 1 {
                    reference[&gid]
                } else {
                    v[i] // interior: unchanged
                };
                assert!((v[i] - expect).abs() < 1e-12, "gid {gid}");
            }
        }
    }
}
