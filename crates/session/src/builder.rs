//! The typed builder assembling a [`Session`].

use std::sync::Arc;

use cgnn_comm::{Backend, Comm, FaultPlan};
use cgnn_core::{GnnConfig, HaloContext, HaloExchange, HaloExchangeMode};
use cgnn_graph::{build_distributed_graph, build_global_graph, LocalGraph};
use cgnn_mesh::BoxMesh;
use cgnn_partition::{PartitionStrategy, Strategy};

use crate::checkpoint::CheckpointPolicy;
use crate::dataset::Dataset;
use crate::session::Session;

/// Factory producing a per-rank exchange strategy. Runs inside the SPMD
/// region, once per rank, so its body may issue collective setup.
type ExchangeFactory = Arc<dyn Fn(&Comm, &LocalGraph) -> Arc<dyn HaloExchange> + Send + Sync>;

/// How a session realizes its halo exchanges: a built-in mode, or a custom
/// strategy factory (the trait-object extension point).
#[derive(Clone)]
pub enum ExchangeSpec {
    /// One of the built-in [`HaloExchangeMode`] strategies.
    Mode(HaloExchangeMode),
    /// A custom strategy factory with a display label.
    Custom {
        /// Label reported by `Session::exchange_label` and traffic sweeps.
        label: &'static str,
        /// Per-rank factory invoked inside the SPMD region.
        factory: ExchangeFactory,
    },
}

impl ExchangeSpec {
    /// Display label of the configured exchange.
    pub fn label(&self) -> &'static str {
        match self {
            ExchangeSpec::Mode(m) => m.label(),
            ExchangeSpec::Custom { label, .. } => label,
        }
    }

    /// Build the per-rank halo context. Collective (strategy constructors
    /// may all-reduce/all-gather their communication plans). The configured
    /// strategy is built even at R = 1 — the halo sync itself is an identity
    /// there (`halo_sync` short-circuits single-rank worlds), so arithmetic
    /// matches hand-wired `HaloContext::single` code while label and traffic
    /// introspection still see the strategy the user asked for.
    pub(crate) fn context(&self, comm: &Comm, graph: &LocalGraph) -> HaloContext {
        match self {
            ExchangeSpec::Mode(m) => HaloContext::new(comm.clone(), graph, *m),
            ExchangeSpec::Custom { factory, .. } => {
                HaloContext::with_strategy(comm.clone(), factory(comm, graph))
            }
        }
    }
}

impl std::fmt::Debug for ExchangeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExchangeSpec({})", self.label())
    }
}

/// What can go wrong assembling a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No mesh was supplied.
    MissingMesh,
    /// `ranks` was zero.
    ZeroRanks,
    /// More ranks than mesh elements: some rank would own nothing.
    TooManyRanks {
        /// The requested rank count.
        ranks: usize,
        /// Elements the mesh actually has.
        elements: usize,
    },
    /// The dataset's snapshots cover a different node count than the mesh.
    DatasetMeshMismatch {
        /// Nodes each dataset snapshot covers.
        dataset_nodes: usize,
        /// Unique global nodes of the session mesh.
        mesh_nodes: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingMesh => write!(f, "Session::builder() needs .mesh(...)"),
            SessionError::ZeroRanks => write!(f, "a session needs at least one rank"),
            SessionError::TooManyRanks { ranks, elements } => write!(
                f,
                "cannot give {ranks} ranks at least one of {elements} elements"
            ),
            SessionError::DatasetMeshMismatch {
                dataset_nodes,
                mesh_nodes,
            } => write!(
                f,
                "dataset snapshots cover {dataset_nodes} nodes but the mesh has {mesh_nodes}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Typed builder for [`Session`]: supply the mesh, choose the partition
/// strategy, rank count, exchange strategy, model configuration, seed, and
/// learning rate; `build()` does the mesh → partition → graph wiring once.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    mesh: Option<BoxMesh>,
    strategy: Arc<dyn PartitionStrategy>,
    ranks: usize,
    exchange: ExchangeSpec,
    /// `None` = resolve from the environment at `build()` time, so an
    /// explicit [`SessionBuilder::backend`] choice never even reads (or
    /// panics on) `CGNN_BACKEND`.
    backend: Option<Backend>,
    config: GnnConfig,
    seed: u64,
    lr: f64,
    dataset: Option<Dataset>,
    checkpoint: Option<CheckpointPolicy>,
    fault_plan: Option<FaultPlan>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            mesh: None,
            strategy: Strategy::Block.object(),
            ranks: 1,
            exchange: ExchangeSpec::Mode(HaloExchangeMode::NeighborAllToAll),
            backend: None,
            config: GnnConfig::small(),
            seed: 0,
            lr: 1e-3,
            dataset: None,
            checkpoint: None,
            fault_plan: None,
        }
    }
}

impl SessionBuilder {
    /// The spectral-element mesh driving everything downstream. Required.
    pub fn mesh(mut self, mesh: BoxMesh) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Element-to-rank decomposition strategy (default [`Strategy::Block`]).
    pub fn partition(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy.object();
        self
    }

    /// Custom element-to-rank decomposition: any object-safe
    /// [`PartitionStrategy`] implementation. The session *stores* the
    /// strategy object and replays it whenever it must re-decompose the
    /// mesh — in particular when elastic recovery rebuilds the world at a
    /// smaller rank count after a failure.
    pub fn partition_with(mut self, strategy: Arc<dyn PartitionStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Arm a deterministic fault-injection plan: every run of the built
    /// session wraps each rank's transport in a
    /// [`FaultInjector`](cgnn_comm::FaultInjector) executing `plan` (for
    /// the session's current recovery attempt). This is the chaos-testing
    /// entry point; sessions without a plan pay nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Number of SPMD thread-ranks (default 1 = un-partitioned).
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Built-in halo exchange strategy (default
    /// [`HaloExchangeMode::NeighborAllToAll`], the paper's efficient
    /// variant).
    pub fn exchange(mut self, mode: HaloExchangeMode) -> Self {
        self.exchange = ExchangeSpec::Mode(mode);
        self
    }

    /// Custom halo exchange strategy: `factory` runs once per rank inside
    /// the SPMD region (so it may issue collective setup) and returns the
    /// strategy object driving that rank's exchanges.
    pub fn exchange_with<F>(mut self, label: &'static str, factory: F) -> Self
    where
        F: Fn(&Comm, &LocalGraph) -> Arc<dyn HaloExchange> + Send + Sync + 'static,
    {
        self.exchange = ExchangeSpec::Custom {
            label,
            factory: Arc::new(factory),
        };
        self
    }

    /// Communication transport carrying the session's SPMD execution
    /// (default: whatever `CGNN_BACKEND` selects via
    /// [`Backend::from_env`], i.e. the thread world unless overridden).
    /// All backends produce bit-identical training trajectories; they
    /// differ only in scheduling — [`Backend::Serial`] single-steps the
    /// ranks deterministically for debugging and CI reference runs.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// GNN architecture (default [`GnnConfig::small`], paper Table I).
    pub fn model(mut self, config: GnnConfig) -> Self {
        self.config = config;
        self
    }

    /// Parameter initialization seed — identical on every rank, which is
    /// how the DDP replicas share their initial state (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adam learning rate (default `1e-3`).
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.lr = lr;
        self
    }

    /// The snapshot-stream training set this session's epoch methods
    /// (`RankHandle::train_epochs`, `Session::train_epochs`,
    /// `RankHandle::eval_dataset`) run over. The dataset carries its own
    /// batching policy ([`Dataset::batch_size`], [`Dataset::sequential`],
    /// [`Dataset::shuffle_seed`]); its snapshots must cover exactly the
    /// mesh's global nodes (validated at `build()`).
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Opt into periodic checkpointing: during `train_epochs`, rank 0
    /// writes a full training checkpoint every
    /// [`CheckpointPolicy::every_steps`] optimizer steps and prunes old
    /// files beyond the retention count. Any retained file restores
    /// bit-exactly through `Session::restore`.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Assemble the session: validate, partition the mesh, and build every
    /// rank's reduced distributed graph (or the global R = 1 graph).
    pub fn build(self) -> Result<Session, SessionError> {
        let mesh = self.mesh.ok_or(SessionError::MissingMesh)?;
        if self.ranks == 0 {
            return Err(SessionError::ZeroRanks);
        }
        if mesh.num_elements() < self.ranks {
            return Err(SessionError::TooManyRanks {
                ranks: self.ranks,
                elements: mesh.num_elements(),
            });
        }
        if let Some(ds) = &self.dataset {
            if ds.n_nodes() != mesh.num_global_nodes() {
                return Err(SessionError::DatasetMeshMismatch {
                    dataset_nodes: ds.n_nodes(),
                    mesh_nodes: mesh.num_global_nodes(),
                });
            }
        }
        let (partition, graphs) = if self.ranks == 1 {
            (None, vec![Arc::new(build_global_graph(&mesh))])
        } else {
            let part = self.strategy.partition(&mesh, self.ranks);
            let graphs = build_distributed_graph(&mesh, &part)
                .into_iter()
                .map(Arc::new)
                .collect();
            (Some(part), graphs)
        };
        Ok(Session::assembled(
            Arc::new(mesh),
            partition,
            graphs,
            self.strategy,
            self.exchange,
            self.backend.unwrap_or_else(Backend::from_env),
            self.config,
            self.seed,
            self.lr,
            self.dataset.map(Arc::new),
            self.checkpoint,
            self.fault_plan,
        ))
    }
}
