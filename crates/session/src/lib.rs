//! # cgnn-session
//!
//! The composable front-end for the whole pipeline of the paper (SEM mesh →
//! partition → local graphs → halo-consistent NMP → DDP training): a typed
//! [`SessionBuilder`] owns the wiring that every example and benchmark used
//! to repeat by hand, and a [`Session`] drives SPMD execution through
//! per-rank [`RankHandle`]s.
//!
//! ```
//! use cgnn_core::HaloExchangeMode;
//! use cgnn_mesh::{BoxMesh, TaylorGreen};
//! use cgnn_partition::Strategy;
//! use cgnn_session::Session;
//!
//! let session = Session::builder()
//!     .mesh(BoxMesh::tgv_cube(2, 2))
//!     .partition(Strategy::Block)
//!     .ranks(2)
//!     .exchange(HaloExchangeMode::NeighborAllToAll)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let field = TaylorGreen::new(0.01);
//! let histories = session.run(|h| {
//!     let data = h.autoencode_data(&field, 0.0);
//!     h.train(&data, 3)
//! });
//! assert_eq!(histories[0], histories[1], "replicas stay in lockstep");
//! ```
//!
//! Exchange strategies are pluggable: the builder accepts either a
//! [`HaloExchangeMode`](cgnn_core::HaloExchangeMode) (the built-ins of
//! paper Sec. III plus the coalesced and overlapped extensions) or, via
//! [`SessionBuilder::exchange_with`], any custom
//! [`HaloExchange`](cgnn_core::HaloExchange) factory.
//!
//! Communication transports are pluggable one layer further down:
//! [`SessionBuilder::backend`] selects the
//! [`CommBackend`](cgnn_comm::CommBackend) implementation carrying the SPMD
//! execution (threads by default, the deterministic serial world for
//! debugging; `CGNN_BACKEND` switches the default) — training trajectories
//! are bit-identical across backends. Sessions also checkpoint:
//! [`RankHandle::save_params`] writes parameters + optimizer state, and
//! [`Session::restore`] resumes a run **bit-identically**.
//!
//! Realistic surrogate training runs over a snapshot stream rather than a
//! single time pair: [`SessionBuilder::dataset`] attaches a [`Dataset`]
//! (solver-generated, hand-built, or analytic) whose mini-batch epochs
//! are driven by [`RankHandle::train_epochs`] under a deterministic
//! seeded shuffle, with opt-in every-k-step checkpointing via
//! [`SessionBuilder::checkpoint`] and [`CheckpointPolicy`]. See
//! `docs/TRAINING.md` at the repository root for the end-to-end guide.
//!
//! Training is also **elastic**: when a rank dies mid-run (detected
//! through the comm layer's liveness probe, or injected by a
//! [`FaultPlan`](cgnn_comm::FaultPlan) via [`SessionBuilder::fault_plan`]),
//! [`Session::train_epochs_elastic`] re-partitions the mesh over the
//! survivors with the session's stored
//! [`PartitionStrategy`](cgnn_partition::PartitionStrategy), restores
//! parameters + optimizer state from the newest valid checkpoint
//! ([`CheckpointPolicy::latest`], which skips corrupt files), and resumes
//! the deterministic `(seed, epoch)` schedule — producing the same
//! post-recovery loss trajectory as a fresh run restored from that
//! checkpoint at the smaller world size. See `docs/FAULT_TOLERANCE.md`
//! and the [`recovery`] module docs.

#![warn(missing_docs)]

pub mod builder;
pub mod checkpoint;
pub mod dataset;
pub mod handle;
pub mod recovery;
pub mod session;

pub use builder::{ExchangeSpec, SessionBuilder, SessionError};
pub use checkpoint::{CheckpointPolicy, CorruptCheckpoint, LatestReport};
pub use dataset::Dataset;
pub use handle::RankHandle;
pub use recovery::{ElasticError, ElasticReport, FaultTolerance, RecoveryEvent, WorldFailure};
pub use session::Session;
