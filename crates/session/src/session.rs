//! The assembled [`Session`]: owns the wired pipeline and drives SPMD
//! execution through per-rank [`RankHandle`]s.

use std::sync::Arc;

use cgnn_comm::World;
use cgnn_core::{GnnConfig, Trainer};
use cgnn_graph::LocalGraph;
use cgnn_mesh::{BoxMesh, TaylorGreen};
use cgnn_partition::Partition;

use crate::builder::{ExchangeSpec, SessionBuilder};
use crate::handle::RankHandle;

/// A fully wired pipeline instance: mesh, partition, per-rank graphs, and
/// the recipe (exchange strategy, model config, seed, learning rate) for
/// constructing each rank's trainer. Cheap to clone-per-run: the expensive
/// graph construction happened once in [`SessionBuilder::build`].
///
/// [`Session::run`] spawns one OS thread per rank (the in-process "MPI"
/// world), hands each a [`RankHandle`], and returns the per-rank results in
/// rank order. Repeated `run` calls reuse the same graphs but build fresh
/// trainers, so every run starts from the same seeded state — which is what
/// makes builder sessions reproduce hand-wired loss trajectories bit for
/// bit.
pub struct Session {
    mesh: Arc<BoxMesh>,
    partition: Option<Partition>,
    graphs: Vec<Arc<LocalGraph>>,
    exchange: ExchangeSpec,
    config: GnnConfig,
    seed: u64,
    lr: f64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("ranks", &self.ranks())
            .field("elements", &self.mesh.num_elements())
            .field("exchange", &self.exchange.label())
            .field("hidden", &self.config.hidden)
            .field("seed", &self.seed)
            .field("lr", &self.lr)
            .finish()
    }
}

impl Session {
    /// Entry point: a default-configured [`SessionBuilder`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    pub(crate) fn assembled(
        mesh: Arc<BoxMesh>,
        partition: Option<Partition>,
        graphs: Vec<Arc<LocalGraph>>,
        exchange: ExchangeSpec,
        config: GnnConfig,
        seed: u64,
        lr: f64,
    ) -> Self {
        Session {
            mesh,
            partition,
            graphs,
            exchange,
            config,
            seed,
            lr,
        }
    }

    /// Number of SPMD ranks this session drives.
    pub fn ranks(&self) -> usize {
        self.graphs.len()
    }

    /// The mesh everything was derived from.
    pub fn mesh(&self) -> &Arc<BoxMesh> {
        &self.mesh
    }

    /// The element decomposition (`None` for un-partitioned R = 1).
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Rank `rank`'s reduced distributed graph.
    pub fn graph(&self, rank: usize) -> &Arc<LocalGraph> {
        &self.graphs[rank]
    }

    /// All per-rank graphs, in rank order.
    pub fn graphs(&self) -> &[Arc<LocalGraph>] {
        &self.graphs
    }

    /// The model configuration each rank trains.
    pub fn config(&self) -> GnnConfig {
        self.config
    }

    /// Display label of the configured halo exchange.
    pub fn exchange_label(&self) -> &'static str {
        self.exchange.label()
    }

    /// A sibling session differing only in its exchange strategy. The
    /// expensive state (mesh, partition, per-rank graphs) is shared, not
    /// rebuilt — this is how mode-comparison sweeps (Fig. 6, traffic
    /// tables) price several strategies against one wiring.
    pub fn with_exchange(&self, mode: cgnn_core::HaloExchangeMode) -> Session {
        Session {
            mesh: Arc::clone(&self.mesh),
            partition: self.partition.clone(),
            graphs: self.graphs.clone(),
            exchange: ExchangeSpec::Mode(mode),
            config: self.config,
            seed: self.seed,
            lr: self.lr,
        }
    }

    /// Run `f` on every rank (one OS thread each), returning the per-rank
    /// results in rank order. Each rank's [`RankHandle`] arrives with its
    /// graph, halo context, and freshly seeded trainer already wired.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut RankHandle) -> T + Sync,
    {
        World::run(self.ranks(), |comm| {
            let graph = Arc::clone(&self.graphs[comm.rank()]);
            let ctx = self.exchange.context(comm, &graph);
            let trainer = Trainer::new(self.config, self.seed, self.lr, ctx);
            let mut handle = RankHandle::new(comm.clone(), graph, trainer, self.exchange.label());
            f(&mut handle)
        })
    }

    /// Convenience: train every rank on the Taylor-Green autoencoding task
    /// (the paper's demonstration protocol) and return the per-rank loss
    /// histories. With a consistent exchange all histories are identical.
    pub fn train_autoencode(
        &self,
        field: &TaylorGreen,
        t: f64,
        iterations: usize,
    ) -> Vec<Vec<f64>> {
        self.run(|h| {
            let data = h.autoencode_data(field, t);
            h.train(&data, iterations)
        })
    }

    /// Convenience: evaluate the consistent loss of the freshly seeded
    /// (untrained) model on the autoencoding task — the quantity swept in
    /// the paper's Fig. 6 (left). Identical on every rank; rank 0's value
    /// is returned.
    pub fn initial_loss(&self, field: &TaylorGreen, t: f64) -> f64 {
        self.run(|h| {
            let data = h.autoencode_data(field, t);
            h.eval_loss(&data)
        })[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SessionError;
    use cgnn_core::HaloExchangeMode;
    use cgnn_partition::Strategy;

    fn mesh() -> BoxMesh {
        BoxMesh::tgv_cube(2, 2)
    }

    #[test]
    fn builder_validates_inputs() {
        assert_eq!(
            Session::builder().build().unwrap_err(),
            SessionError::MissingMesh
        );
        assert_eq!(
            Session::builder()
                .mesh(mesh())
                .ranks(0)
                .build()
                .unwrap_err(),
            SessionError::ZeroRanks
        );
        assert_eq!(
            Session::builder()
                .mesh(mesh())
                .ranks(99)
                .build()
                .unwrap_err(),
            SessionError::TooManyRanks {
                ranks: 99,
                elements: 8
            }
        );
    }

    #[test]
    fn single_rank_session_covers_global_graph() {
        let s = Session::builder().mesh(mesh()).build().unwrap();
        assert_eq!(s.ranks(), 1);
        assert!(s.partition().is_none());
        assert_eq!(s.graph(0).n_local(), s.mesh().num_global_nodes());
    }

    #[test]
    fn distributed_session_trains_in_lockstep() {
        let s = Session::builder()
            .mesh(mesh())
            .ranks(2)
            .partition(Strategy::Slab)
            .exchange(HaloExchangeMode::NeighborAllToAll)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(s.exchange_label(), "N-A2A");
        let field = TaylorGreen::new(0.01);
        let histories = s.train_autoencode(&field, 0.0, 5);
        assert_eq!(histories.len(), 2);
        assert_eq!(histories[0], histories[1], "replicas diverged");
        assert!(histories[0][4] < histories[0][0], "loss did not drop");
    }

    #[test]
    fn repeated_runs_restart_from_the_same_seed() {
        let s = Session::builder().mesh(mesh()).seed(3).build().unwrap();
        let field = TaylorGreen::new(0.01);
        let a = s.train_autoencode(&field, 0.0, 4);
        let b = s.train_autoencode(&field, 0.0, 4);
        assert_eq!(a, b, "runs must be independent and reproducible");
    }

    #[test]
    fn handles_expose_traffic_stats() {
        let s = Session::builder()
            .mesh(mesh())
            .ranks(2)
            .exchange(HaloExchangeMode::Coalesced)
            .build()
            .unwrap();
        let field = TaylorGreen::new(0.01);
        let stats = s.run(|h| {
            let data = h.autoencode_data(&field, 0.0);
            h.traffic_reset();
            h.step(&data);
            h.traffic()
        });
        // 4 MP layers, forward + backward, one fused collective each.
        assert_eq!(stats[0].all_gathers, 8);
        assert!(stats[0].all_gather_bytes > 0);
    }
}
